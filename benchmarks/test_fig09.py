"""Figure 9 — MH normalized energy vs number of senders (simulation).

Expected shape: the one-hop advantage makes the dual-radio model match or
beat even the *ideal* sensor accounting; even DualRadio-10 improves on the
header-overhearing sensor baseline.
"""

from conftest import BENCH_SCALE, cached_sweep

from repro.models.sweeps import energy_rows
from repro.report.figures import fig9


def test_fig09(benchmark, print_artifact):
    def regenerate():
        sweep = cached_sweep("MH", BENCH_SCALE, rate_bps=2000.0)
        return fig9(sweep=sweep), sweep

    (text, sweep) = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_artifact(text)
    rows = energy_rows(sweep)
    heavy = max(sweep.sender_counts())
    assert rows["DualRadio-100"][heavy] < rows["Sensor-ideal"][heavy]
    assert rows["DualRadio-10"][heavy] < 1.05 * rows["Sensor-header"][heavy]
