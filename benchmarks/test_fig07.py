"""Figure 7 — SH normalized energy vs delay at 0.2 kb/s (simulation).

Expected shape: along each sender-count line, growing the burst size
moves points right (more buffering delay) and down (less energy per bit),
with diminishing energy returns.
"""

from conftest import DELAY_SCALE, cached_sweep

from repro.models.sweeps import energy_delay_points
from repro.report.figures import fig7


def test_fig07(benchmark, print_artifact):
    def regenerate():
        sweep = cached_sweep(
            "SH",
            DELAY_SCALE,
            rate_bps=200.0,
            include_wifi=False,
            include_sensor=False,
        )
        return fig7(sweep=sweep), sweep

    (text, sweep) = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_artifact(text)
    points = energy_delay_points(sweep)
    for n_senders, line in points.items():
        delays = [delay for _burst, delay, _energy in line]
        assert delays == sorted(delays), f"delay not monotone for {n_senders}"
        energies = [e for _b, _d, e in line if e != float("inf")]
        # Burst 100 must beat burst 10 on energy (10 is below s*).
        assert energies[1] < energies[0]
