"""Figure 8 — MH goodput vs number of senders (simulation).

Expected shape: with Cabletron reaching the sink in one hop, the
dual-radio model avoids multi-hop contention entirely for data and keeps
high goodput where the pure sensor model collapses.
"""

from conftest import BENCH_SCALE, cached_sweep

from repro.models.sweeps import LABEL_SENSOR, goodput_rows
from repro.report.figures import fig8


def test_fig08(benchmark, print_artifact):
    def regenerate():
        sweep = cached_sweep("MH", BENCH_SCALE, rate_bps=2000.0)
        return fig8(sweep=sweep), sweep

    (text, sweep) = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_artifact(text)
    rows = goodput_rows(sweep)
    heavy = max(sweep.sender_counts())
    assert rows[LABEL_SENSOR][heavy] < 0.6
    assert rows["DualRadio-100"][heavy] > rows[LABEL_SENSOR][heavy] + 0.2
    assert rows["DualRadio-10"][heavy] > rows[LABEL_SENSOR][heavy] + 0.2
