"""Figure 10 — MH normalized energy vs delay at 0.2 kb/s (simulation).

Expected shape: as in Fig. 7, larger bursts trade delay for energy; the
absolute energies sit below the SH case thanks to the one-hop advantage.
"""

from conftest import DELAY_SCALE, cached_sweep

from repro.models.sweeps import energy_delay_points
from repro.report.figures import fig10


def test_fig10(benchmark, print_artifact):
    def regenerate():
        sweep = cached_sweep(
            "MH",
            DELAY_SCALE,
            rate_bps=200.0,
            include_wifi=False,
            include_sensor=False,
        )
        return fig10(sweep=sweep), sweep

    (text, sweep) = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_artifact(text)
    points = energy_delay_points(sweep)
    for _n_senders, line in points.items():
        delays = [delay for _burst, delay, _energy in line]
        assert delays == sorted(delays)
        energies = [e for _b, _d, e in line if e != float("inf")]
        assert energies[1] < energies[0]
