"""Figure 2 — break-even size vs high-radio idle time (analytic).

Expected shape: s* grows with idle time, reaching tens-to-hundreds of KB
around 1 s of idling (the paper reports 66-480 KB).
"""

from repro.analysis.feasibility import fig2_breakeven_vs_idle
from repro.report.figures import fig2


def test_fig02(benchmark, print_artifact):
    text = benchmark(fig2)
    print_artifact(text)
    for series in fig2_breakeven_vs_idle(idle_times_s=[0.01, 0.1, 1.0]):
        finite = [y for y in series.y if y != float("inf")]
        assert finite == sorted(finite)  # monotone growth
    at_1s = [s.y[0] for s in fig2_breakeven_vs_idle(idle_times_s=[1.0])]
    assert all(10 < v < 1000 for v in at_1s)
