"""Figure 1 — energy consumption vs data size (single hop, analytic).

Expected shape: Micaz dominates the 2 Mb/s cards at every size; the
Lucent 11 Mb/s + Micaz pairing crosses below Micaz near 1 KB and reaches
~50% savings by ~4 KB.
"""

from repro.analysis.feasibility import crossover_table, fig1_energy_vs_size
from repro.report.figures import fig1
from repro.units import kb_to_bits


def test_fig01(benchmark, print_artifact):
    text = benchmark(fig1)
    print_artifact(text)
    series = {s.label: s for s in fig1_energy_vs_size()}
    micaz, dual = series["Micaz"], series["Lucent (11Mbps)-Micaz"]
    # The crossover exists and sits below 1 KB.
    crossings = crossover_table()
    assert 0 < crossings["Lucent (11Mbps)-Micaz"] < 1.0
    assert crossings["Cabletron-Micaz"] == float("inf")
    # ~50% savings at 4 KB.
    from repro.energy import DualRadioLink, LUCENT_11, MICAZ
    from repro.energy import energy_high, energy_low

    link = DualRadioLink(low=MICAZ, high=LUCENT_11)
    savings = 1 - energy_high(kb_to_bits(4), link) / energy_low(
        kb_to_bits(4), MICAZ
    )
    assert 0.4 < savings < 0.65
