"""Ablation — the buffering threshold α·s* (BCP's one protocol knob).

Sweeps α around the analytic break-even point on the prototype testbed:
below α = 1 the dual radio must lose to the sensor baseline; above it,
gains grow with diminishing returns (Fig. 11's mechanism, viewed as an
α-sweep as Section 3 parameterizes it).
"""

from repro.core.config import BcpConfig
from repro.energy.breakeven import DualRadioLink, breakeven_bits
from repro.energy.radio_specs import LUCENT_11, MICAZ
from repro.testbed.experiment import PrototypeConfig, run_prototype

ALPHAS = (0.5, 1.0, 2.0, 4.0, 8.0)


def run_alpha_sweep():
    link = DualRadioLink(low=MICAZ, high=LUCENT_11)
    s_star_bytes = breakeven_bits(link) / 8
    results = {}
    for alpha in ALPHAS:
        config = PrototypeConfig(threshold_bytes=max(64.0, alpha * s_star_bytes))
        results[alpha] = run_prototype(config)
    return s_star_bytes, results


def test_alpha_sweep(benchmark, print_artifact):
    s_star_bytes, results = benchmark.pedantic(
        run_alpha_sweep, rounds=1, iterations=1
    )
    lines = [f"alpha sweep around s* = {s_star_bytes:.0f} B:"]
    for alpha, result in results.items():
        lines.append(
            f"  alpha={alpha:4.1f}  threshold={result.threshold_bytes:6.0f} B"
            f"  dual={result.dual_energy_per_packet_uj:7.1f} uJ/pkt"
            f"  sensor={result.sensor_energy_per_packet_uj:7.1f} uJ/pkt"
            f"  delay={result.mean_delay_per_packet_ms:8.0f} ms"
        )
    print_artifact("\n".join(lines))
    # Below the break-even point the high radio must lose.
    assert (
        results[0.5].dual_energy_per_packet_uj
        > results[0.5].sensor_energy_per_packet_uj
    )
    # Well above it, it must win.
    assert (
        results[4.0].dual_energy_per_packet_uj
        < results[4.0].sensor_energy_per_packet_uj
    )
    # Diminishing returns: the 4->8 improvement is smaller than 1->2.
    gain_low = (
        results[1.0].dual_energy_per_packet_uj
        - results[2.0].dual_energy_per_packet_uj
    )
    gain_high = (
        results[4.0].dual_energy_per_packet_uj
        - results[8.0].dual_energy_per_packet_uj
    )
    assert gain_low > gain_high
    # BcpConfig.from_breakeven encodes the same sweep.
    assert BcpConfig.from_breakeven(
        DualRadioLink(low=MICAZ, high=LUCENT_11), alpha=2.0
    ).threshold_bytes < BcpConfig.from_breakeven(
        DualRadioLink(low=MICAZ, high=LUCENT_11), alpha=4.0
    ).threshold_bytes
