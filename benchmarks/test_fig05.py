"""Figure 5 — SH goodput vs number of senders (simulation).

Expected shape: the pure 802.11 model and the small/medium-burst dual
configurations hold high goodput as senders grow, while the pure sensor
model collapses under contention at 2 kb/s.
"""

from conftest import BENCH_SCALE, cached_sweep

from repro.models.sweeps import LABEL_SENSOR, LABEL_WIFI, goodput_rows
from repro.report.figures import fig5


def test_fig05(benchmark, print_artifact):
    def regenerate():
        sweep = cached_sweep("SH", BENCH_SCALE, rate_bps=2000.0)
        return fig5(sweep=sweep), sweep

    (text, sweep) = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_artifact(text)
    rows = goodput_rows(sweep)
    heavy = max(sweep.sender_counts())
    assert rows[LABEL_SENSOR][heavy] < 0.6
    assert rows[LABEL_WIFI][heavy] > 0.85
    assert rows["DualRadio-100"][heavy] > 0.85 * rows[LABEL_WIFI][heavy]
    assert rows["DualRadio-100"][heavy] > rows[LABEL_SENSOR][heavy] + 0.2
