"""Figure 3 — break-even size vs forward progress (analytic).

Expected shape: s* falls with forward progress; the Micaz pairings are
infeasible at one hop and become feasible within a few hops (the paper
reports 3-4); s* for the feasible 2 Mb/s pairings stays sub-KB multi-hop.
"""

from repro.analysis.feasibility import fig3_breakeven_vs_forward_progress
from repro.report.figures import fig3


def test_fig03(benchmark, print_artifact):
    text = benchmark(fig3)
    print_artifact(text)
    for series in fig3_breakeven_vs_forward_progress():
        finite = [y for y in series.y if y != float("inf")]
        assert finite == sorted(finite, reverse=True)
        if series.label.endswith("Micaz"):
            assert series.y[0] == float("inf")
            first = next(
                fp
                for fp, y in zip(range(1, 7), series.y)
                if y != float("inf")
            )
            assert 2 <= first <= 4
        if series.label.endswith("-Mica"):
            assert series.y[4] < 1.0  # sub-KB at 5 hops
