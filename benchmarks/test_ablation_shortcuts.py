"""Ablation — DSR-style route shortcut learning (Section 3).

Three arms, with a high-power radio whose range covers two sensor hops
(80 m):

* **oracle** — a precomputed high-power routing table (what full route
  discovery over the 802.11 radios would cost to obtain);
* **static-low** — "use the existing routes over the low-power radios"
  and never adapt: every bulk hop is a 40 m sensor hop;
* **learned** — start from the low routes and adopt overheard forwarders
  (the paper's optimization).

The paper's claim: learning recovers (most of) the oracle's shorter
routes without any high-power route discovery.  Measured as mean bulk
hops per delivered packet.
"""

from repro.energy.radio_specs import LUCENT_11
from repro.models.scenario import ScenarioConfig, run_scenario

MID_RANGE_SPEC = LUCENT_11.replace(range_m=80.0)


def run_arms():
    base = ScenarioConfig(
        model="dual",
        high_spec=MID_RANGE_SPEC,
        n_senders=10,
        rate_bps=2000.0,
        sim_time_s=90.0,
        burst_packets=100,
        seed=13,
    )
    return {
        "oracle": run_scenario(base),
        "static-low": run_scenario(
            base.replace(shortcut_learning=True, shortcut_observation=False)
        ),
        "learned": run_scenario(base.replace(shortcut_learning=True)),
    }


def test_shortcut_learning(benchmark, print_artifact):
    arms = benchmark.pedantic(run_arms, rounds=1, iterations=1)
    lines = ["shortcut-learning ablation (80 m high-power range):"]
    for name, result in arms.items():
        lines.append(
            f"  {name:10s} goodput={result.goodput:.3f} "
            f"hops={result.mean_hops:.2f} "
            f"delay={result.mean_delay_s:5.1f}s "
            f"shortcuts={result.counters.get('bcp.shortcuts_learned', 0):.0f}"
        )
    print_artifact("\n".join(lines))
    assert arms["learned"].counters.get("bcp.shortcuts_learned", 0) > 0
    assert arms["static-low"].counters.get("bcp.shortcuts_learned", 0) == 0
    # Learning shortens routes relative to the static low-power baseline
    # and lands between it and the oracle.
    assert arms["learned"].mean_hops < arms["static-low"].mean_hops
    assert arms["oracle"].mean_hops <= arms["learned"].mean_hops + 0.1
    for result in arms.values():
        assert result.goodput > 0.7
