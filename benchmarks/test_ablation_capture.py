"""Ablation — physical capture at the receiver.

Compares the pessimistic any-overlap-kills collision model against the
distance-ratio capture model on a hidden-interferer layout:

    J(-80,0) <-- I(-40,0)      R(0,0) <-- S(30,0)

``S -> R`` (signal 30 m) runs concurrently with ``I -> J``; I is audible
at R (40 m, within I's range) but hidden from S (70 m), so carrier sense
cannot prevent the overlap.  A real DSSS receiver (CC2420 co-channel
rejection ~3 dB ⇒ distance ratio 1.25) decodes S through I's weaker
signal (40 m > 1.25 x 30 m); the pessimistic model corrupts every
overlapped frame and burns retransmissions.
"""

from repro.channel.medium import Medium
from repro.energy.meter import EnergyMeter
from repro.energy.radio_specs import MICAZ
from repro.mac.csma import SensorCsmaMac
from repro.mac.frames import Frame, FrameKind
from repro.radio.radio import LowPowerRadio
from repro.sim import Simulator
from repro.topology import Layout, Position

#: Node ids: 0 = S (sender), 1 = R (receiver), 2 = I (interferer), 3 = J.
LAYOUT = Layout(
    {
        0: Position(30.0, 0.0),
        1: Position(0.0, 0.0),
        2: Position(-40.0, 0.0),
        3: Position(-80.0, 0.0),
    }
)


def run_parallel_flows(capture_ratio):
    sim = Simulator(seed=17)
    medium = Medium(sim, LAYOUT, "m", capture_ratio=capture_ratio)
    meters = {n: EnergyMeter(str(n)) for n in LAYOUT.node_ids}
    radios = {
        n: LowPowerRadio(sim, n, MICAZ, medium, meters[n])
        for n in LAYOUT.node_ids
    }
    macs = {n: SensorCsmaMac(sim, radios[n]) for n in LAYOUT.node_ids}
    delivered = {1: 0, 3: 0}
    macs[1].set_data_handler(lambda f: delivered.__setitem__(1, delivered[1] + 1))
    macs[3].set_data_handler(lambda f: delivered.__setitem__(3, delivered[3] + 1))

    def pump(src, dst, count):
        for _ in range(count):
            frame = Frame(FrameKind.DATA, src, dst, payload_bits=256,
                          header_bits=64)
            yield macs[src].send(frame)

    sim.process(pump(0, 1, 200))
    sim.process(pump(2, 3, 200))
    sim.run(until=60.0)
    retx = macs[0].retransmissions + macs[2].retransmissions
    return delivered[1] + delivered[3], retx


def test_capture_model(benchmark, print_artifact):
    def run_both():
        return {
            "pessimistic": run_parallel_flows(None),
            "cc2420": run_parallel_flows(Medium.CC2420_CAPTURE_RATIO),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_artifact(
        "capture ablation (hidden interferer at 1.33x signal distance,"
        " 400 frames offered):\n"
        f"  any-overlap-kills : delivered={results['pessimistic'][0]} "
        f"retransmissions={results['pessimistic'][1]}\n"
        f"  CC2420 capture    : delivered={results['cc2420'][0]} "
        f"retransmissions={results['cc2420'][1]}"
    )
    delivered_pess, retx_pess = results["pessimistic"]
    delivered_capture, retx_capture = results["cc2420"]
    assert delivered_capture == 400
    assert retx_capture < retx_pess
    assert delivered_pess <= delivered_capture
