"""Figure 6 — SH normalized energy vs number of senders (simulation).

Expected shape: DualRadio-100/500 sit several-fold below the
header-overhearing sensor baseline and approach (here: beat, because the
sensor still pays contention losses) the ideal sensor accounting, while
DualRadio-10 — below the break-even point — wastes energy.
"""

from conftest import BENCH_SCALE, cached_sweep

from repro.models.sweeps import energy_rows
from repro.report.figures import fig6


def test_fig06(benchmark, print_artifact):
    def regenerate():
        sweep = cached_sweep("SH", BENCH_SCALE, rate_bps=2000.0)
        return fig6(sweep=sweep), sweep

    (text, sweep) = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_artifact(text)
    rows = energy_rows(sweep)
    heavy = max(sweep.sender_counts())
    assert rows["Sensor-header"][heavy] > rows["Sensor-ideal"][heavy]
    assert rows["Sensor-header"][heavy] / rows["DualRadio-100"][heavy] > 2.0
    assert rows["DualRadio-10"][heavy] > rows["Sensor-ideal"][heavy]
    assert rows["DualRadio-100"][heavy] < rows["DualRadio-10"][heavy]
