"""Ablation — receiver-side flow control (Section 3).

With flow control, a receiver clamps advertised bursts to its free buffer
and a full receiver stays silent; without it, senders push blindly and
intermediate buffers overflow.  Measured on the SH store-and-forward path
with deliberately small relay buffers.
"""

from conftest import cached_sweep  # noqa: F401  (shared cache warmup only)

from repro.models.scenario import ScenarioConfig, run_scenario


def run_pair():
    base = ScenarioConfig(
        model="dual",
        n_senders=15,
        rate_bps=2000.0,
        sim_time_s=90.0,
        burst_packets=100,
        buffer_packets=150,  # tight relay buffers: 4.8 KB
        seed=11,
    )
    with_fc = run_scenario(base)
    without_fc = run_scenario(base.replace(flow_control=False))
    return with_fc, without_fc


def test_flow_control(benchmark, print_artifact):
    with_fc, without_fc = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print_artifact(
        "flow control ablation (tight 150-packet relay buffers):\n"
        f"  with    : goodput={with_fc.goodput:.3f} "
        f"buffer_drops={with_fc.counters.get('bcp.buffer_drops', 0):.0f}\n"
        f"  without : goodput={without_fc.goodput:.3f} "
        f"buffer_drops={without_fc.counters.get('bcp.buffer_drops', 0):.0f}"
    )
    drops_with = with_fc.counters.get("bcp.buffer_drops", 0)
    drops_without = without_fc.counters.get("bcp.buffer_drops", 0)
    assert drops_without >= drops_with
    assert with_fc.goodput >= without_fc.goodput - 0.05
