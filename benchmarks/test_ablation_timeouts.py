"""Ablation — wake-up handshake timeout vs control-plane stability.

The reproduction's most consequential tuning discovery: when dozens of
flows converge on the low-power CSMA mesh, the loaded control-path RTT is
seconds; a sub-RTT wake-up timeout makes senders re-send WAKEUPs that are
still in flight, and the duplicated multi-hop traffic collapses the
control plane (goodput -> ~0).  A timeout above the loaded RTT keeps the
same protocol stable at the same offered load.
"""

from repro.models.scenario import multi_hop_config, run_scenario


def run_sweep_timeouts():
    base = multi_hop_config(
        n_senders=35, sim_time_s=90.0, seed=3, burst_packets=10
    )
    results = {}
    for timeout in (0.5, 1.0, 3.0):
        config = base.replace(
            wakeup_timeout_s=timeout, receiver_idle_timeout_s=timeout
        )
        results[timeout] = run_scenario(config)
    return results


def test_wakeup_timeout_stability(benchmark, print_artifact):
    results = benchmark.pedantic(run_sweep_timeouts, rounds=1, iterations=1)
    lines = ["wake-up timeout ablation (MH, 35 senders, burst 10):"]
    for timeout, result in results.items():
        lines.append(
            f"  timeout={timeout:3.1f}s goodput={result.goodput:.3f} "
            f"wakeups={result.counters['bcp.wakeups']:.0f} "
            f"bursts={result.counters['bcp.bursts']:.0f} "
            f"failures={result.counters.get('bcp.handshake_failures', 0):.0f}"
        )
    print_artifact("\n".join(lines))
    assert results[3.0].goodput > results[0.5].goodput + 0.3
    # The instability signature: premature timeouts inflate the wakeup
    # count far beyond the burst count.
    ratio_unstable = results[0.5].counters["bcp.wakeups"] / max(
        1.0, results[0.5].counters["bcp.bursts"]
    )
    ratio_stable = results[3.0].counters["bcp.wakeups"] / max(
        1.0, results[3.0].counters["bcp.bursts"]
    )
    assert ratio_unstable > 2.0 * ratio_stable
