"""Figure 11 — prototype energy per packet vs threshold size α·s*.

Expected shape: the sensor-radio baseline is flat; the dual-radio curve
starts above it, drops steeply, crosses below around 1 KB, flattens with
diminishing returns, and is *non-monotonic* (the 1024 B frame
quantization sawtooth).
"""

from repro.report.figures import fig11
from repro.runner import runner_from_env
from repro.testbed.experiment import default_threshold_sweep, sweep_thresholds


def test_fig11(benchmark, print_artifact):
    thresholds = default_threshold_sweep(step_bytes=128)

    def regenerate():
        # Prototype points run through the env-configured runner like the
        # simulation sweeps: REPRO_JOBS fans them out, REPRO_CACHE_DIR
        # persists them (PrototypeResult entries cache like RunResults).
        return (
            fig11(thresholds=thresholds, runner=runner_from_env()),
            sweep_thresholds(thresholds, runner=runner_from_env()),
        )

    (text, results) = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_artifact(text)
    dual = [r.dual_energy_per_packet_uj for r in results]
    sensor = [r.sensor_energy_per_packet_uj for r in results]
    assert len(set(sensor)) == 1  # flat baseline
    assert dual[0] > sensor[0]  # dual loses below s*
    assert dual[-1] < sensor[-1] * 0.7  # and wins well above it
    # Crossover within the sweep, around 1 KB.
    crossover = next(
        t for t, d, s in zip(
            (r.threshold_bytes for r in results), dual, sensor
        ) if d < s
    )
    assert 512 < crossover <= 2048
    # Sawtooth: at least one local increase.
    assert any(b > a + 1e-9 for a, b in zip(dual, dual[1:]))
