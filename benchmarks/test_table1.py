"""Table 1 — radio energy characteristics (exact constants)."""

from repro.report.figures import table1


def test_table1(benchmark, print_artifact):
    text = benchmark(table1)
    print_artifact(text)
    # Spot-check the paper's numbers survived rendering.
    assert "1400" in text and "1.328" in text  # Cabletron
    assert "250Kbps" in text  # Micaz
