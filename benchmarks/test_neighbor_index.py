"""Micro-benchmark: indexed vs scan neighbor computation on 100 nodes.

The medium historically resolved each node's audible set with an O(n)
``in_range`` scan over every registered port (O(n²) to warm all nodes) and
answered "is dst in reach?" with an O(degree) list search per unicast
frame.  The :class:`~repro.channel.index.NeighborIndex` replaces both with
a spatial-hash build plus O(1) set membership.  This benchmark pins the
comparison on a 100-node uniform deployment: both the full build of every
neighborhood and a frame-delivery-like query mix (neighbor list + dst
membership per transmission).

The measured speedup lands in the benchmark JSON artifact via
``extra_info`` so CI runs record it alongside the timings.
"""

import random
import time

from repro.channel.index import NeighborIndex
from repro.channel.propagation import UnitDiscPropagation
from repro.topology.geometry import in_range
from repro.topology.layout import random_layout

N_NODES = 100
RANGE_M = 40.0
FIELD_M = 250.0
QUERY_ROUNDS = 30
#: Nodes "transmitting" during the carrier-sense part of the query mix.
ACTIVE = (0, 17, 45)


class _Port:
    __slots__ = ("node_id", "range_m")

    def __init__(self, node_id, range_m):
        self.node_id = node_id
        self.range_m = range_m


def _make_deployment():
    layout = random_layout(N_NODES, FIELD_M, FIELD_M, random.Random(1234))
    ports = {i: _Port(i, RANGE_M) for i in layout.node_ids}
    return layout, ports


def _scan_all_neighbors(layout, ports):
    """The historical algorithm: per-node O(n) scan with the *sender's*
    range (audibility is from the transmitter's reach), list results."""
    cache = {}
    for node in ports:
        origin = layout.position(node)
        reach = ports[node].range_m
        cache[node] = [
            other
            for other in ports
            if other != node
            and in_range(origin, layout.position(other), reach)
        ]
    return cache


def _query_mix_scan(layout, ports, cache):
    """Per-frame medium work, the historical way.

    Reachability is an O(degree) list search and every carrier-sense
    check recomputes ``in_range`` geometry per active transmission
    (the old ``is_busy_for`` never cached).
    """
    hits = 0
    for node in ports:
        neighbors = cache[node]
        for dst in range(0, N_NODES, 7):
            hits += dst in neighbors  # list membership, O(degree)
        pos = layout.position(node)
        for tx in ACTIVE:
            hits += in_range(layout.position(tx), pos, ports[tx].range_m)
    return hits


def _query_mix_index(ports, index):
    """The same per-frame work against the precomputed index."""
    hits = 0
    for node in ports:
        index.neighbors(node)
        for dst in range(0, N_NODES, 7):
            hits += index.is_neighbor(node, dst)
        for tx in ACTIVE:
            hits += index.is_neighbor(tx, node)
    return hits


def test_scan_baseline(benchmark):
    layout, ports = _make_deployment()

    def run():
        cache = _scan_all_neighbors(layout, ports)
        total = 0
        for _ in range(QUERY_ROUNDS):
            total += _query_mix_scan(layout, ports, cache)
        return total

    assert benchmark(run) > 0


def test_neighbor_index(benchmark):
    layout, ports = _make_deployment()
    propagation = UnitDiscPropagation(layout)

    def run():
        index = NeighborIndex(layout, ports, propagation)
        total = 0
        for _ in range(QUERY_ROUNDS):
            total += _query_mix_index(ports, index)
        return total

    assert benchmark(run) > 0


def test_index_is_faster_and_equivalent(benchmark):
    """Correctness + the acceptance criterion: a measurable speedup.

    Timed manually (not via the benchmark fixture, which times one
    callable) so the ratio of the two implementations lands in
    ``extra_info`` inside the benchmark JSON artifact.
    """
    layout, ports = _make_deployment()
    propagation = UnitDiscPropagation(layout)

    def timed(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def scan_workload():
        cache = _scan_all_neighbors(layout, ports)
        for _ in range(QUERY_ROUNDS):
            _query_mix_scan(layout, ports, cache)
        return cache

    def index_workload():
        index = NeighborIndex(layout, ports, propagation)
        for _ in range(QUERY_ROUNDS):
            _query_mix_index(ports, index)
        return index

    cache = scan_workload()
    index = index_workload()
    for node in ports:
        assert list(index.neighbors(node)) == cache[node]

    scan_s = timed(scan_workload)
    index_s = timed(index_workload)
    speedup = scan_s / index_s
    benchmark.extra_info["scan_s"] = scan_s
    benchmark.extra_info["index_s"] = index_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.pedantic(index_workload, rounds=1, iterations=1)
    # The acceptance bar is deliberately modest (CI machines are noisy);
    # locally the gap is far larger.
    assert speedup > 1.0, f"index ({index_s:.6f}s) not faster than scan ({scan_s:.6f}s)"
