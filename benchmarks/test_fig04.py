"""Figure 4 — energy savings vs burst size (analytic).

Expected shape: savings rise steeply to n~10 then flatten (the paper's
rule of thumb); the 100 ms-idle variants save substantially more,
approaching 0.8-0.95.
"""

from repro.analysis.burst_savings import (
    burst_savings_fraction,
    knee_burst_size,
)
from repro.energy.radio_specs import CABLETRON, LUCENT_2, LUCENT_11
from repro.report.figures import fig4


def test_fig04(benchmark, print_artifact):
    text = benchmark(fig4)
    print_artifact(text)
    for spec in (CABLETRON, LUCENT_2, LUCENT_11):
        assert knee_burst_size(spec) <= 10
        assert burst_savings_fraction(spec, 10) > 0.8 * (
            burst_savings_fraction(spec, 1000)
        )
        idle = burst_savings_fraction(spec, 1000, idle_before_off_s=0.1)
        assert idle > 0.75
        assert idle > burst_savings_fraction(spec, 1000)
