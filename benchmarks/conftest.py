"""Shared infrastructure for the per-figure benchmark suite.

Each ``test_fig*.py`` regenerates one artifact of the paper and prints the
same rows/series the paper reports (deliverable of the reproduction).  The
simulation sweeps are cached per session so figure pairs sharing a sweep
(5/6, 8/9) only pay for it once; timings are taken with
``benchmark.pedantic(rounds=1)`` because a single sweep is already minutes
of work at full fidelity.

Scale: benchmarks run a laptop-scale slice of the paper's matrix —
senders {5, 20, 35}, bursts {10, 100, 500}, one seed, 120 s — chosen so
every mechanism (contention collapse, wake-up amortization, buffering
delay) is active.  ``repro figN --paper`` reproduces the full 5000 s x 20
run matrix.  Setting ``REPRO_BENCH_SCALE=ci`` drops to the CI scale — a
strict subset of the bench matrix (senders {5, 35}, bursts {10, 100},
still 120 s) chosen so every asserted shape survives.

Execution goes through the sweep runner configured from the environment:
``REPRO_JOBS`` fans cells over worker processes (default serial),
``REPRO_BACKEND`` overrides the execution backend (``serial`` or
``process[:N]``), and ``REPRO_CACHE_DIR``, when set,
persists results on disk across sessions — so local benchmark runs get
the parallel speedup by exporting one variable.  Within a session,
sweeps are additionally memoized so figure pairs sharing one (5/6, 8/9)
only pay for it once.
"""

from __future__ import annotations

import os

import pytest

from repro.models.sweeps import SweepData, SweepScale, run_sweep
from repro.perf import collect_phases
from repro.runner import runner_from_env


def _bench_scales() -> tuple[SweepScale, SweepScale]:
    if os.environ.get("REPRO_BENCH_SCALE", "").strip().lower() in ("ci", "smoke"):
        ci = SweepScale.ci()
        # The 0.2 kb/s figures need the buffer to cycle within the run:
        # burst 100 fills in 128 s, so 600 s gives several cycles.
        return ci, ci.replace(sim_time_s=600.0)
    return (
        SweepScale(
            senders=(5, 20, 35), bursts=(10, 100, 500), n_runs=1,
            sim_time_s=120.0,
        ),
        SweepScale(
            senders=(5, 20, 35), bursts=(10, 100, 500), n_runs=1,
            sim_time_s=1500.0,
        ),
    )


#: Benchmark-scale sweep: large bursts (1000+) are excluded because they
#: need thousands of simulated seconds just to fill a buffer at 2 kb/s.
#: Scale for the energy-delay figures (0.2 kb/s needs longer runs for the
#: buffers to cycle; dual-radio-only, so still cheap).
BENCH_SCALE, DELAY_SCALE = _bench_scales()

_sweep_cache: dict[tuple, SweepData] = {}


def cached_sweep(case: str, scale: SweepScale, rate_bps: float,
                 **kwargs) -> SweepData:
    """Run (or fetch) the sweep for ``case`` at ``scale``."""
    key = (case, scale.senders, scale.bursts, scale.n_runs,
           scale.sim_time_s, rate_bps, tuple(sorted(kwargs.items())))
    if key not in _sweep_cache:
        _sweep_cache[key] = run_sweep(
            case, scale, rate_bps=rate_bps, runner=runner_from_env(), **kwargs
        )
    return _sweep_cache[key]


@pytest.fixture(autouse=True)
def record_phase_timings(request):
    """Attach per-phase scenario timings to the benchmark JSON artifact.

    Every cell run in-process during the test accumulates its
    ``routing_build`` / ``network_build`` / ``sim_loop`` wall-clock phases
    (see :mod:`repro.perf.phases`); whatever accumulated lands in the
    test's ``extra_info`` so the artifact records where sweep time went,
    seeding the trajectory ``repro bench`` gates.  Cells fanned out to
    worker processes (``REPRO_JOBS``/``REPRO_BACKEND``) accumulate in the
    workers and are not transported back; cells served from the result
    cache never run at all — both legitimately record nothing.
    """
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    with collect_phases() as timings:
        yield
    if timings and benchmark is not None:
        benchmark.extra_info["phase_timings"] = {
            name: round(seconds, 6) for name, seconds in timings.items()
        }


@pytest.fixture
def print_artifact(capsys):
    """Print a rendered artifact so it lands in the benchmark output."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
            print()

    return _print
