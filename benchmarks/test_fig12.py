"""Figure 12 — prototype energy per packet vs delay per packet.

Expected shape: energy falls sharply as allowed delay grows, then
flattens — "beyond a region, increased delay does not improve the energy
savings much".
"""

from repro.report.figures import fig12
from repro.runner import runner_from_env
from repro.testbed.experiment import default_threshold_sweep, sweep_thresholds


def test_fig12(benchmark, print_artifact):
    thresholds = default_threshold_sweep(step_bytes=256)

    def regenerate():
        return (
            fig12(thresholds=thresholds, runner=runner_from_env()),
            sweep_thresholds(thresholds, runner=runner_from_env()),
        )

    (text, results) = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_artifact(text)
    delays = [r.mean_delay_per_packet_ms for r in results]
    dual = [r.dual_energy_per_packet_uj for r in results]
    assert delays == sorted(delays)
    # Steep early gain, flat tail: first half of the delay range captures
    # most of the total energy drop.
    total_drop = dual[0] - min(dual)
    mid = len(dual) // 2
    early_drop = dual[0] - min(dual[: mid + 1])
    assert early_drop > 0.7 * total_drop
    # Paper's delay scale: hundreds of ms to tens of seconds.
    assert delays[-1] > 10_000
