"""Break-even explorer: when does a second radio pay off? (Section 2 tour)

Walks the paper's entire feasibility analysis for every radio pairing:

* single-hop break-even points (Figure 1's crossings),
* sensitivity to imperfect power management (Figure 2's idle sweep),
* the multi-hop range advantage (Figure 3's forward progress),
* burst-size diminishing returns and the n=10 rule of thumb (Figure 4).

Run:  python examples/breakeven_explorer.py
"""

from repro.analysis import burst_savings_fraction, knee_burst_size
from repro.energy import (
    HIGH_POWER_RADIOS,
    LOW_POWER_RADIOS,
    DualRadioLink,
    breakeven_bits,
    breakeven_bits_multihop,
)
from repro.units import bits_to_kb


def single_hop_matrix() -> None:
    print("Single-hop break-even points s* (KB); '-' = never pays off")
    print(f"{'':18s}" + "".join(f"{low.name:>10s}" for low in LOW_POWER_RADIOS))
    for high in HIGH_POWER_RADIOS:
        cells = []
        for low in LOW_POWER_RADIOS:
            s_star = breakeven_bits(DualRadioLink(low=low, high=high))
            cells.append(
                "         -" if s_star == float("inf")
                else f"{bits_to_kb(s_star):10.2f}"
            )
        print(f"{high.name:18s}" + "".join(cells))


def idle_sensitivity() -> None:
    print("\nEffect of imperfect power management (Micaz + Lucent 11Mbps):")
    for idle_ms in (0, 10, 100, 1000):
        link = DualRadioLink(low=LOW_POWER_RADIOS[2], high=HIGH_POWER_RADIOS[2],
                             idle_s=idle_ms / 1000.0)
        s_star = breakeven_bits(link)
        print(
            f"  {idle_ms:5d} ms idle -> s* = {bits_to_kb(s_star):8.1f} KB"
        )
    print("  every millisecond the 802.11 radio idles must be bought back")
    print("  with more buffered data — why BCP turns it off so eagerly.")


def forward_progress() -> None:
    print("\nMulti-hop advantage (Cabletron, 250 m, vs Micaz hops):")
    link = DualRadioLink(low=LOW_POWER_RADIOS[2], high=HIGH_POWER_RADIOS[0])
    for hops in range(1, 7):
        s_star = breakeven_bits_multihop(link, hops)
        text = (
            "infeasible" if s_star == float("inf")
            else f"s* = {bits_to_kb(s_star):6.2f} KB"
        )
        print(f"  replaces {hops} sensor hop(s): {text}")
    print("  a pairing that is hopeless single-hop becomes attractive once")
    print("  one 802.11 transmission replaces several sensor relays.")


def burst_rule_of_thumb() -> None:
    print("\nBurst-size diminishing returns (1 KB packets):")
    for high in HIGH_POWER_RADIOS:
        knee = knee_burst_size(high)
        at_knee = burst_savings_fraction(high, knee)
        asymptote = burst_savings_fraction(high, 100_000)
        print(
            f"  {high.name:18s}: 90% of max savings at n={knee:2d} "
            f"({at_knee:.2f} of {asymptote:.2f})"
        )
    print("  the paper's rule of thumb — ~10 packets per burst — captures")
    print("  most of the achievable savings for every card.")


if __name__ == "__main__":
    single_hop_matrix()
    idle_sensitivity()
    forward_progress()
    burst_rule_of_thumb()
