"""Quickstart: the paper's core result in two minutes.

1. Compute the break-even point s* for a Micaz + Lucent-11 dual-radio
   platform (Section 2's analysis).
2. Simulate a small dual-radio sensor network running BCP and compare its
   energy per delivered bit against the pure sensor network (Section 4's
   evaluation, pocket sized).

Run:  python examples/quickstart.py
"""

from repro import ScenarioConfig, run_scenario
from repro.energy import (
    LUCENT_11,
    MICAZ,
    DualRadioLink,
    breakeven_bits,
    energy_high,
    energy_low,
)
from repro.units import bits_to_kb, j_to_mj, kb_to_bits


def analyze_breakeven() -> None:
    print("=" * 64)
    print("Step 1 - break-even analysis (paper Section 2.1)")
    print("=" * 64)
    link = DualRadioLink(low=MICAZ, high=LUCENT_11)
    s_star = breakeven_bits(link)
    print(f"radios        : {MICAZ.name} (low) + {LUCENT_11.name} (high)")
    print(f"break-even s* : {s_star:.0f} bits = {bits_to_kb(s_star):.2f} KB")
    print("  -> buffering less than this and waking the 802.11 radio")
    print("     wastes energy; buffering more starts saving it.")
    for kb in (0.25, 1, 4, 16):
        bits = kb_to_bits(kb)
        low = energy_low(bits, MICAZ)
        high = energy_high(bits, link)
        winner = "high-power wins" if high < low else "low-power wins"
        print(
            f"  {kb:5.2f} KB : sensor {j_to_mj(low):7.2f} mJ vs "
            f"dual {j_to_mj(high):7.2f} mJ   ({winner})"
        )


def simulate_small_network() -> None:
    print()
    print("=" * 64)
    print("Step 2 - BCP on the paper's 36-node grid, 20 senders at 2 kb/s")
    print("=" * 64)
    base = ScenarioConfig(
        n_senders=20,
        rate_bps=2000.0,
        sim_time_s=240.0,
        seed=42,
    )
    sensor = run_scenario(base.replace(model="sensor"))
    dual = run_scenario(base.replace(model="dual", burst_packets=100))
    print(f"{'model':15s} {'goodput':>8s} {'J/Kbit':>10s} {'delay':>8s}")
    rows = (
        ("Sensor-ideal", sensor.goodput,
         sensor.normalized_energy_j_per_kbit("sensor_ideal"),
         sensor.mean_delay_s),
        ("Sensor-header", sensor.goodput,
         sensor.normalized_energy_j_per_kbit("sensor_header"),
         sensor.mean_delay_s),
        ("DualRadio-100", dual.goodput,
         dual.normalized_energy_j_per_kbit(),
         dual.mean_delay_s),
    )
    for name, goodput, energy, delay in rows:
        print(f"{name:15s} {goodput:8.3f} {energy:10.5f} {delay:7.1f}s")
    improvement = sensor.normalized_energy(
        "sensor_header"
    ) / dual.normalized_energy()
    print(f"\nAgainst the realistic (overhearing-charged) sensor baseline,")
    print(f"BCP delivers each bit for {improvement:.1f}x less energy — and it")
    print(f"also delivers {dual.goodput - sensor.goodput:+.2f} more of the offered data,")
    print(f"at the price of {dual.mean_delay_s:.0f}s of buffering delay")
    print("(the trade-off of Figures 6-7).")


if __name__ == "__main__":
    analyze_breakeven()
    simulate_small_network()
