"""EnviroMic-style acoustic monitoring: bulk transfer at near-real-time.

The paper's second motivating application: "Recent applications, such as
EnviroMic, where audio is being transmitted through the network,
accumulate data much faster making performance almost real-time despite
data buffering."

Six acoustic stations capture 64 kb/s audio clips when events occur
(on/off bursts) and stream them to a collection point over BCP.  Because
a two-second clip is ~16 KB — far beyond the break-even point — buffers
fill in seconds and the 802.11 radio moves each clip in one bulk session:
high goodput, large energy advantage, and delays of seconds rather than
the minutes/hours of the slow-monitoring case.

Run:  python examples/enviromic_audio.py
"""

from repro import ScenarioConfig, run_scenario

SIM_TIME_S = 900.0


def main() -> None:
    base = ScenarioConfig(
        rows=4,
        cols=4,
        sink=5,
        n_senders=6,
        traffic="audio",
        sim_time_s=SIM_TIME_S,
        seed=21,
    )
    print("EnviroMic-style workload: 6 stations, 64 kb/s audio bursts of")
    print(f"~2 s separated by ~60 s of silence; {SIM_TIME_S:.0f} s simulated.\n")

    sensor = run_scenario(base.replace(model="sensor"))
    dual = run_scenario(base.replace(model="dual", burst_packets=100))

    header = f"{'model':14s} {'goodput':>8s} {'J/Kbit':>9s} {'mean delay':>11s} {'max delay':>10s}"
    print(header)
    print("-" * len(header))
    for label, result in (("Sensor", sensor), ("DualRadio-100", dual)):
        print(
            f"{label:14s} {result.goodput:8.3f} "
            f"{result.normalized_energy_j_per_kbit():9.5f} "
            f"{result.mean_delay_s:10.2f}s "
            f"{result.max_delay_s:9.2f}s"
        )

    print()
    clip_bits = 64_000 * 2.0
    print(f"Each acoustic event produces ~{clip_bits / 8 / 1024:.0f} KB —")
    print("dozens of break-even points' worth — so BCP fills its burst")
    print("threshold within the clip itself and ships it immediately:")
    print("bulk transfer at interactive latency, exactly the paper's")
    print("'almost real-time despite data buffering' observation.")
    print()
    print("The pure sensor network, by contrast, must squeeze 64 kb/s")
    print("bursts through a 250 kb/s shared multi-hop MAC: queues grow,")
    print("frames collide, and clips arrive incomplete (lower goodput).")


if __name__ == "__main__":
    main()
