"""Beyond the paper's grid: composed scenarios, end to end.

The paper evaluates BCP on exactly one deployment — a 6×6 grid with
unit-disc links and one radio pairing.  This example composes the
registry-backed axes into a deployment the paper never ran, then sweeps
burst size over it through the cached runner:

* **topology**   — 24 nodes placed uniformly at random (resampled until
  connected at the sensor range);
* **propagation** — log-normal shadowing, so links near the range edge
  fade in and out per deployment;
* **radios**     — a heterogeneous fleet: every node carries the short-range
  Lucent 11 Mb/s NIC except the sink, which gets a Cabletron;
* **traffic**    — mostly CBR with two Poisson senders mixed in.

Every cell is an ordinary :class:`ScenarioConfig`, so the sweep caches,
shards and parallelizes exactly like the paper figures — same CLI flags,
same cache keys.

Run:  python examples/beyond_the_grid.py
"""

import os

from repro import ScenarioConfig, run_replicated
from repro.channel.propagation import PropagationSpec
from repro.models import RadioAssignment
from repro.runner import runner_from_env
from repro.topology.registry import TopologySpec

#: Smoke mode (CI) trims simulated time so the lint job stays fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def composed_base() -> ScenarioConfig:
    return ScenarioConfig(
        model="dual",
        topology=TopologySpec.of(
            "uniform-random",
            n=24,
            width_m=160.0,
            height_m=160.0,
            connect_range_m=40.0,  # keep within the sensor radio's range
        ),
        propagation=PropagationSpec.of("log-normal", sigma_db=3.0),
        high_radios=RadioAssignment(overrides=((0, "Cabletron"),)),
        traffic_mix=((3, "poisson"), (7, "poisson")),
        sink=0,
        n_senders=8,
        rate_bps=2000.0,
        sim_time_s=30.0 if SMOKE else 120.0,
        burst_packets=100,
    )


def main() -> None:
    base = composed_base()
    runner = runner_from_env()
    print("=" * 64)
    print("Beyond the grid: random layout + shadowing + mixed radios")
    print("=" * 64)
    print(f"deployment  : {base.topology.describe()}")
    print(f"propagation : {base.propagation.describe()}")
    print("high radios : Lucent (11Mbps) fleet, Cabletron at the sink")
    print(f"traffic     : cbr + poisson mix, {base.n_senders} senders")
    print()
    header = f"{'burst':>6s}  {'goodput':>8s}  {'J/Kbit':>8s}  {'delay s':>8s}"
    print(header)
    print("-" * len(header))
    for burst in (10, 100, 500):
        config = base.replace(burst_packets=burst)
        _results, summary = run_replicated(
            config, n_runs=1 if SMOKE else 2, runner=runner
        )
        row = summary.row()
        energy = row["energy_j_per_kbit"]
        print(
            f"{burst:6d}  {row['goodput']:8.3f}  "
            f"{energy:8.3f}  {row['delay_s']:8.2f}"
        )
    print()
    print("Each cell above is cache/shard-addressable; the equivalent CLI:")
    print(
        "  repro run --topology uniform-random:n=24,width_m=160,"
        "height_m=160,connect_range_m=40 \\"
    )
    print(
        "            --propagation log-normal:sigma_db=3 "
        "--high-radio-map 0=Cabletron \\"
    )
    print("            --traffic-mix 3=poisson,7=poisson --senders 8 --burst 100")


if __name__ == "__main__":
    main()
