"""Environmental monitoring: choosing a burst size for a slow deployment.

The paper's motivating application class: "many environmental monitoring
applications measure natural phenomena over long periods of time, a
collection delay of even several days is not detrimental, especially if it
increases system lifetime."

This example deploys a 36-node grid where 12 stations report 0.2 kb/s of
readings to a collection point, sweeps BCP's burst size, and translates
the resulting per-node power draw into battery lifetime — the quantity an
operator actually plans around.

Run:  python examples/environmental_monitoring.py
"""

from repro.energy import Battery
from repro import ScenarioConfig, run_scenario

SIM_TIME_S = 2400.0
N_SENDERS = 12


def main() -> None:
    base = ScenarioConfig(
        model="dual",
        n_senders=N_SENDERS,
        rate_bps=200.0,  # one 32 B reading every 1.28 s
        sim_time_s=SIM_TIME_S,
        seed=7,
    )
    print("Environmental monitoring: 12 stations, 0.2 kb/s each,")
    print(f"{SIM_TIME_S:.0f} s simulated.  Sweeping the BCP burst size:\n")
    header = (
        f"{'burst':>6s} {'goodput':>8s} {'J/Kbit':>9s} {'delay':>9s} "
        f"{'node power':>11s} {'AA lifetime':>12s}"
    )
    print(header)
    print("-" * len(header))

    sensor = run_scenario(base.replace(model="sensor"))
    rows = [("sensor", sensor)]
    for burst in (10, 50, 100, 300):
        result = run_scenario(base.replace(burst_packets=burst))
        rows.append((f"{burst}", result))

    for label, result in rows:
        # Average per-node radio power over the run.
        power_w = result.energy_j["total"] / result.sim_time_s / 36
        days = Battery().lifetime_days(power_w) if power_w > 0 else float("inf")
        print(
            f"{label:>6s} {result.goodput:8.3f} "
            f"{result.normalized_energy_j_per_kbit():9.5f} "
            f"{result.mean_delay_s:8.1f}s "
            f"{power_w * 1e3:9.3f} mW "
            f"{days:10.0f} d"
        )

    print()
    print("Reading the table: small bursts wake the 802.11 radio for tiny")
    print("payloads and lose to the plain sensor network; once the burst")
    print("clears the break-even point the dual-radio deployment delivers")
    print("the same data for less energy, and the only cost is reporting")
    print("latency — which this application class does not care about.")


if __name__ == "__main__":
    main()
