"""Network lifetime under battery depletion: the mortal-fleet sweep.

The paper motivates dual radios with node *lifetime* — weeks versus days
on a pair of AA cells.  This example makes that concrete: every node gets
a finite battery, the fault injector polls real metered energy against
it, and nodes die when their reservoir runs dry.  Sweeping the battery
capacity then answers the question the immortal harness cannot: *when
does the network stop being a network?*

For each capacity the run reports:

* ``first death``   — when the first node exhausts its battery;
* ``deaths``        — how many nodes died within the horizon;
* ``partitioned``   — topology epochs that cut a live sender off from
  the sink;
* ``delivered``     — total bits the sink still collected.

A scripted-churn column runs alongside: the same deployment with 10% of
the fleet killed at fixed times, the schedule the ``churn-1k`` bench
case scales up.  Every cell is an ordinary :class:`ScenarioConfig` with
a :class:`FaultPlan` attached, so faulted cells cache, shard and sweep
exactly like paper figures.

Run:  python examples/network_lifetime.py
"""

import os

from repro import ScenarioConfig, run_scenario
from repro.faults import FaultPlan

#: Smoke mode (CI) trims simulated time so the faults-smoke job stays fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))

SIM_TIME_S = 60.0 if SMOKE else 400.0

#: Battery capacities swept, in joules.  Real AA pairs hold ~30 kJ; these
#: are scaled down so depletion happens inside a short simulation.
CAPACITIES_J = (20.0, 60.0) if SMOKE else (20.0, 60.0, 180.0, 540.0)


def base_config() -> ScenarioConfig:
    return ScenarioConfig(
        model="wifi",  # the always-on radio: the paper's lifetime villain
        n_senders=10,
        rate_bps=2000.0,
        burst_packets=10,
        sim_time_s=SIM_TIME_S,
    )


def scripted_churn_plan(config: ScenarioConfig) -> FaultPlan:
    """Kill 10% of the fleet (never the sink) at evenly spaced times."""
    victims = [
        node for node in range(config.n_nodes) if node != config.sink
    ]
    n_deaths = max(1, config.n_nodes // 10)
    step = config.sim_time_s / (n_deaths + 1)
    return FaultPlan(
        crashes=tuple(
            (step * (i + 1), victims[i * 7 % len(victims)])
            for i in range(n_deaths)
        )
    )


def fmt_first_death(value: float) -> str:
    return "none" if value < 0 else f"{value:7.1f}"


def main() -> None:
    base = base_config()
    print("=" * 66)
    print("Network lifetime: battery depletion on the always-on 802.11 model")
    print("=" * 66)
    print(f"deployment : {base.rows}x{base.cols} grid, sink {base.sink}, "
          f"{base.n_senders} senders, {base.sim_time_s:g} s horizon")
    print()
    header = (
        f"{'battery J':>10s}  {'1st death':>9s}  {'deaths':>6s}  "
        f"{'partitioned':>11s}  {'delivered kb':>12s}"
    )
    print(header)
    print("-" * len(header))
    for capacity in CAPACITIES_J:
        plan = FaultPlan(battery_capacity_j=capacity, battery_poll_s=2.0)
        result = run_scenario(base.replace(faults=plan))
        c = result.counters
        print(
            f"{capacity:10.0f}  {fmt_first_death(c['faults.first_death_s']):>9s}  "
            f"{c['faults.deaths']:6.0f}  {c['faults.partitioned_epochs']:11.0f}  "
            f"{result.delivered_bits / 1000.0:12.1f}"
        )
    print()
    print("scripted churn (10% of the fleet dies at fixed times)")
    print("-" * len(header))
    plan = scripted_churn_plan(base)
    result = run_scenario(base.replace(faults=plan))
    c = result.counters
    print(
        f"{'scripted':>10s}  {fmt_first_death(c['faults.first_death_s']):>9s}  "
        f"{c['faults.deaths']:6.0f}  {c['faults.partitioned_epochs']:11.0f}  "
        f"{result.delivered_bits / 1000.0:12.1f}"
    )
    print()
    print(
        "Reading: smaller reservoirs kill relays sooner; once deaths "
        "partition a sender, its packets drop at ingestion (counted in "
        "faults.unroutable_drops) instead of crashing the run."
    )


if __name__ == "__main__":
    main()
