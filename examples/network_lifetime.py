"""Network lifetime under battery depletion: the mortal-fleet sweep.

The paper motivates dual radios with node *lifetime* — weeks versus days
on a pair of AA cells.  This example makes that concrete: every node gets
a finite battery, the fault injector polls real metered energy against
it, and nodes die when their reservoir runs dry.  Sweeping the battery
capacity then answers the question the immortal harness cannot: *when
does the network stop being a network?*

For each capacity the run reports:

* ``first death``   — when the first node exhausts its battery;
* ``deaths``        — how many nodes died within the horizon;
* ``partitioned``   — topology epochs that cut a live sender off from
  the sink;
* ``delivered``     — total bits the sink still collected.

A scripted-churn column runs alongside: the same deployment with 10% of
the fleet killed at fixed times, the schedule the ``churn-1k`` bench
case scales up.  Every cell is an ordinary :class:`ScenarioConfig` with
a :class:`FaultPlan` attached, so faulted cells cache, shard and sweep
exactly like paper figures.

A routing-policy sweep follows (PR 10): the same mortal fleet on a
relay-bottleneck deployment, once per registered routing policy.  Min-hop
funnels every flow through one long-haul relay until it dies;
``residual-energy`` watches the relay's live battery and shifts load onto
a cheap multi-hop detour *before* the death, buying a strictly later
first-node-death at the price of goodput — the classic max-lifetime
trade.

Run:  python examples/network_lifetime.py
"""

import os

from repro import ScenarioConfig, run_scenario
from repro.energy.radio_specs import MICAZ, TxPowerLevel
from repro.faults import FaultPlan
from repro.net.policy import ROUTING_POLICY_NAMES
from repro.report import render_policy_comparison
from repro.topology.registry import TopologySpec
from repro.units import mw_to_w

#: Smoke mode (CI) trims simulated time so the faults-smoke job stays fast.
SMOKE = bool(os.environ.get("REPRO_SMOKE"))

SIM_TIME_S = 60.0 if SMOKE else 400.0

#: Battery capacities swept, in joules.  Real AA pairs hold ~30 kJ; these
#: are scaled down so depletion happens inside a short simulation.
CAPACITIES_J = (20.0, 60.0) if SMOKE else (20.0, 60.0, 180.0, 540.0)

# -- The routing-policy sweep deployment -----------------------------------
#
# A hand-placed collection field shaped so the policies actually differ:
# three senders two cheap 42 mW hops from the sink via relay A — whose
# second hop is a 30 m long-haul at full 150 mW — and a six-relay detour
# chain of short hops that stays *outside* A's radio range (what A cannot
# overhear costs it nothing).  Min-hop and tx-energy both commit to A;
# residual-energy abandons A as its battery drains.

POLICY_POSITIONS = (
    (0, 0.0, 0.0),      # sink
    (1, 30.0, 0.0),     # relay A: the 150 mW long-haul bottleneck
    (2, 72.0, -12.0),   # detour entry (in the senders' range, not A's)
    (3, 64.0, -32.0),   # detour chain: ~20 m hops at 42 mW
    (4, 46.0, -44.0),
    (5, 26.0, -46.0),
    (6, 6.0, -36.0),
    (7, -8.0, -16.0),
    (8, 52.0, 0.0),     # senders (forced via traffic_mix)
    (9, 54.0, 3.0),
    (10, 50.0, -3.0),
)

#: A long-haul sensor radio: cheap receive (20 mW), a three-step transmit
#: ladder whose full-power 150 mW register covers the nominal 40 m.  The
#: asymmetry makes *forwarding* (not overhearing) the lifetime cost.
LONG_HAUL = MICAZ.replace(
    name="LongHaul",
    p_tx_w=mw_to_w(150.0),
    p_rx_w=mw_to_w(20.0),
    p_idle_w=mw_to_w(20.0),
    tx_power_levels=(
        TxPowerLevel(p_tx_w=mw_to_w(25.5), range_m=12.0),
        TxPowerLevel(p_tx_w=mw_to_w(42.0), range_m=25.0),
        TxPowerLevel(p_tx_w=mw_to_w(150.0), range_m=40.0),
    ),
)

POLICY_SIM_TIME_S = 60.0 if SMOKE else 300.0
POLICY_CAPACITIES_J = (0.3,) if SMOKE else (0.3, 0.6, 1.2)


def base_config() -> ScenarioConfig:
    return ScenarioConfig(
        model="wifi",  # the always-on radio: the paper's lifetime villain
        n_senders=10,
        rate_bps=2000.0,
        burst_packets=10,
        sim_time_s=SIM_TIME_S,
    )


def scripted_churn_plan(config: ScenarioConfig) -> FaultPlan:
    """Kill 10% of the fleet (never the sink) at evenly spaced times."""
    victims = [
        node for node in range(config.n_nodes) if node != config.sink
    ]
    n_deaths = max(1, config.n_nodes // 10)
    step = config.sim_time_s / (n_deaths + 1)
    return FaultPlan(
        crashes=tuple(
            (step * (i + 1), victims[i * 7 % len(victims)])
            for i in range(n_deaths)
        )
    )


def fmt_first_death(value: float) -> str:
    return "none" if value < 0 else f"{value:7.1f}"


def policy_config(policy: str, capacity_j: float) -> ScenarioConfig:
    return ScenarioConfig(
        model="sensor",
        topology=TopologySpec.of("from-file", positions=POLICY_POSITIONS),
        sink=0,
        n_senders=3,
        traffic_mix=((8, "cbr"), (9, "cbr"), (10, "cbr")),
        low_spec=LONG_HAUL,
        rate_bps=4000.0,
        burst_packets=10,
        sim_time_s=POLICY_SIM_TIME_S,
        seed=1,
        routing_policy=policy,
        faults=FaultPlan(battery_capacity_j=capacity_j, battery_poll_s=2.0),
    )


def policy_sweep() -> None:
    print()
    print("=" * 66)
    print("Routing policies on the relay-bottleneck deployment")
    print("=" * 66)
    print(f"deployment : {len(POLICY_POSITIONS)} hand-placed nodes, "
          f"3 senders, {POLICY_SIM_TIME_S:g} s horizon, "
          f"{LONG_HAUL.name} radios")
    print()
    header = (
        f"{'battery J':>10s}  {'policy':>16s}  {'1st death':>9s}  "
        f"{'deaths':>6s}  {'delivered kb':>12s}"
    )
    print(header)
    print("-" * len(header))
    results_at_largest: dict[str, list] = {}
    for capacity in POLICY_CAPACITIES_J:
        first_deaths: dict[str, float] = {}
        for policy in ROUTING_POLICY_NAMES:
            result = run_scenario(policy_config(policy, capacity))
            c = result.counters
            first_deaths[policy] = c["faults.first_death_s"]
            if capacity == POLICY_CAPACITIES_J[-1]:
                results_at_largest[policy] = [result]
            print(
                f"{capacity:10.1f}  {policy:>16s}  "
                f"{fmt_first_death(c['faults.first_death_s']):>9s}  "
                f"{c['faults.deaths']:6.0f}  "
                f"{result.delivered_bits / 1000.0:12.1f}"
            )
        # The demonstrated claim: residual-energy keeps the first node
        # alive strictly longer than min-hop (a never-died horizon counts
        # as infinitely late).  Loud failure keeps CI honest.
        horizon = float("inf")
        hops_death = first_deaths["hops"]
        residual_death = first_deaths["residual-energy"]
        assert hops_death >= 0.0, "expected the bottleneck relay to die"
        residual = horizon if residual_death < 0 else residual_death
        assert residual > hops_death, (
            f"residual-energy first death {residual} is not strictly later "
            f"than min-hop's {hops_death} at capacity {capacity}"
        )
    print()
    print(render_policy_comparison(results_at_largest))
    print()
    print(
        "Reading: min-hop and tx-energy both pin every flow on the "
        "long-haul relay and inherit its death; residual-energy drains it "
        "to ~40%, then shifts load onto the detour chain to keep it "
        "alive — a strictly later first death, paid for in goodput (the "
        "detour is six hops long and its relays are mortal too)."
    )


def main() -> None:
    base = base_config()
    print("=" * 66)
    print("Network lifetime: battery depletion on the always-on 802.11 model")
    print("=" * 66)
    print(f"deployment : {base.rows}x{base.cols} grid, sink {base.sink}, "
          f"{base.n_senders} senders, {base.sim_time_s:g} s horizon")
    print()
    header = (
        f"{'battery J':>10s}  {'1st death':>9s}  {'deaths':>6s}  "
        f"{'partitioned':>11s}  {'delivered kb':>12s}"
    )
    print(header)
    print("-" * len(header))
    for capacity in CAPACITIES_J:
        plan = FaultPlan(battery_capacity_j=capacity, battery_poll_s=2.0)
        result = run_scenario(base.replace(faults=plan))
        c = result.counters
        print(
            f"{capacity:10.0f}  {fmt_first_death(c['faults.first_death_s']):>9s}  "
            f"{c['faults.deaths']:6.0f}  {c['faults.partitioned_epochs']:11.0f}  "
            f"{result.delivered_bits / 1000.0:12.1f}"
        )
    print()
    print("scripted churn (10% of the fleet dies at fixed times)")
    print("-" * len(header))
    plan = scripted_churn_plan(base)
    result = run_scenario(base.replace(faults=plan))
    c = result.counters
    print(
        f"{'scripted':>10s}  {fmt_first_death(c['faults.first_death_s']):>9s}  "
        f"{c['faults.deaths']:6.0f}  {c['faults.partitioned_epochs']:11.0f}  "
        f"{result.delivered_bits / 1000.0:12.1f}"
    )
    print()
    print(
        "Reading: smaller reservoirs kill relays sooner; once deaths "
        "partition a sender, its packets drop at ingestion (counted in "
        "faults.unroutable_drops) instead of crashing the run."
    )
    policy_sweep()


if __name__ == "__main__":
    main()
