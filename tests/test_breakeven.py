"""Equations 1-5 and the Section 2 feasibility claims."""

import math

import pytest

from repro.energy.breakeven import (
    DualRadioLink,
    breakeven_bits,
    breakeven_bits_multihop,
    crossover_bits,
    energy_high,
    energy_high_multihop,
    energy_low,
    energy_low_multihop,
)
from repro.energy.radio_specs import (
    CABLETRON,
    LUCENT_2,
    LUCENT_11,
    MICA,
    MICA2,
    MICAZ,
)
from repro.units import kb_to_bits


@pytest.fixture
def lucent11_micaz():
    return DualRadioLink(low=MICAZ, high=LUCENT_11)


class TestEquation1:
    def test_zero_size_costs_nothing(self):
        assert energy_low(0, MICAZ) == 0.0

    def test_single_full_packet(self):
        bits = MICAZ.payload_bits
        expected = MICAZ.link_power_w * MICAZ.packet_bits / MICAZ.rate_bps
        assert energy_low(bits, MICAZ) == pytest.approx(expected)

    def test_partial_packet_costs_full_packet(self):
        """The ceiling in Eq. 1: 1 bit costs as much as a full packet."""
        assert energy_low(1, MICAZ) == energy_low(MICAZ.payload_bits, MICAZ)

    def test_packet_count_ceiling(self):
        one = energy_low(MICAZ.payload_bits, MICAZ)
        assert energy_low(MICAZ.payload_bits + 1, MICAZ) == pytest.approx(2 * one)

    def test_retransmissions_scale_linearly(self):
        base = energy_low(1024, MICAZ)
        assert energy_low(1024, MICAZ, retransmissions=2.0) == pytest.approx(
            2 * base
        )

    def test_overhearing_term_added(self):
        base = energy_low(1024, MICAZ)
        assert energy_low(1024, MICAZ, e_overhear_j=0.5) == pytest.approx(
            base + 0.5
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            energy_low(-1, MICAZ)


class TestEquation2:
    def test_zero_size_still_pays_fixed_overhead(self, lucent11_micaz):
        assert energy_high(0, lucent11_micaz) == pytest.approx(
            lucent11_micaz.fixed_overhead_j
        )

    def test_wakeup_both_ends(self, lucent11_micaz):
        assert lucent11_micaz.e_wakeup_high_j == pytest.approx(
            2 * LUCENT_11.e_wakeup_j
        )

    def test_low_power_handshake_cost(self, lucent11_micaz):
        message_bits = 16 * 8 + MICAZ.header_bits
        expected = 2 * MICAZ.link_power_w * message_bits / MICAZ.rate_bps
        assert lucent11_micaz.e_wakeup_low_j == pytest.approx(expected)

    def test_idle_term(self):
        link = DualRadioLink(low=MICAZ, high=LUCENT_11, idle_s=0.5)
        assert link.e_idle_j == pytest.approx(0.5 * LUCENT_11.p_idle_w)

    def test_transfer_cost_added(self, lucent11_micaz):
        bits = kb_to_bits(4)
        packets = math.ceil(bits / LUCENT_11.payload_bits)
        transfer = (
            LUCENT_11.link_power_w
            * packets
            * LUCENT_11.packet_bits
            / LUCENT_11.rate_bps
        )
        assert energy_high(bits, lucent11_micaz) == pytest.approx(
            lucent11_micaz.fixed_overhead_j + transfer
        )

    def test_link_validates_radio_kinds(self):
        with pytest.raises(ValueError):
            DualRadioLink(low=LUCENT_11, high=CABLETRON)
        with pytest.raises(ValueError):
            DualRadioLink(low=MICAZ, high=MICA2)


class TestEquation3:
    def test_breakeven_definition(self, lucent11_micaz):
        """At s*, both smooth cost curves are (nearly) equal."""
        s_star = breakeven_bits(lucent11_micaz)
        slope_low = MICAZ.energy_per_payload_bit()
        slope_high = LUCENT_11.energy_per_payload_bit()
        low_cost = slope_low * s_star
        high_cost = lucent11_micaz.fixed_overhead_j + slope_high * s_star
        assert low_cost == pytest.approx(high_cost, rel=1e-9)

    def test_paper_claim_below_1kb(self, lucent11_micaz):
        """Section 2.2: s* is typically low, i.e. below 1 KB."""
        assert breakeven_bits(lucent11_micaz) < kb_to_bits(1)

    def test_paper_claim_infeasible_pairs(self):
        """Cabletron and Lucent-2 never beat Micaz single hop (Fig. 1)."""
        for high in (CABLETRON, LUCENT_2):
            link = DualRadioLink(low=MICAZ, high=high)
            assert breakeven_bits(link) == float("inf")

    def test_paper_claim_50pct_savings_at_4kb(self, lucent11_micaz):
        """Fig. 1: Lucent-11 saves ~50% vs Micaz at around 4 KB."""
        bits = kb_to_bits(4)
        savings = 1 - energy_high(bits, lucent11_micaz) / energy_low(bits, MICAZ)
        assert 0.4 < savings < 0.65

    def test_idle_increases_breakeven(self):
        small = breakeven_bits(DualRadioLink(low=MICA, high=CABLETRON))
        large = breakeven_bits(
            DualRadioLink(low=MICA, high=CABLETRON, idle_s=1.0)
        )
        assert large > small

    def test_paper_claim_idle_1s_range(self):
        """Fig. 2: s* at ~1 s idle is in the tens-to-hundreds of KB."""
        for low in (MICA, MICA2, MICAZ):
            for high in (CABLETRON, LUCENT_2, LUCENT_11):
                link = DualRadioLink(low=low, high=high, idle_s=1.0)
                s_star = breakeven_bits(link)
                if s_star != float("inf"):
                    assert kb_to_bits(10) < s_star < kb_to_bits(1000)


class TestEquations4And5:
    def test_multihop_low_scales_with_hops(self):
        link = DualRadioLink(low=MICAZ, high=CABLETRON)
        one = energy_low_multihop(1024, link, 1)
        assert energy_low_multihop(1024, link, 5) == pytest.approx(5 * one)

    def test_multihop_high_adds_wakeup_relays(self):
        link = DualRadioLink(low=MICAZ, high=CABLETRON)
        base = energy_high_multihop(1024, link, 1)
        three = energy_high_multihop(1024, link, 3)
        assert three == pytest.approx(base + 2 * link.e_wakeup_low_j)

    def test_forward_progress_must_be_positive(self):
        link = DualRadioLink(low=MICAZ, high=CABLETRON)
        with pytest.raises(ValueError):
            energy_low_multihop(1024, link, 0)
        with pytest.raises(ValueError):
            energy_high_multihop(1024, link, 0)
        with pytest.raises(ValueError):
            breakeven_bits_multihop(link, 0)

    def test_breakeven_decreases_with_forward_progress(self):
        link = DualRadioLink(low=MICA, high=CABLETRON)
        values = [breakeven_bits_multihop(link, fp) for fp in range(1, 7)]
        finite = [v for v in values if v != float("inf")]
        assert finite == sorted(finite, reverse=True)

    def test_paper_claim_cabletron_micaz_feasible_with_hops(self):
        """Fig. 3: Cabletron-Micaz becomes feasible at small forward
        progress (the paper reports 4 hops; the exact hop depends on
        header constants, but it must happen within 2-4)."""
        link = DualRadioLink(low=MICAZ, high=CABLETRON)
        assert breakeven_bits_multihop(link, 1) == float("inf")
        first_feasible = min(
            fp
            for fp in range(1, 7)
            if breakeven_bits_multihop(link, fp) != float("inf")
        )
        assert 2 <= first_feasible <= 4

    def test_paper_claim_multihop_sstar_range(self):
        """Section 2.2: s* for the 2 Mb/s radios multi-hop is sub-KB."""
        for high in (CABLETRON, LUCENT_2):
            for low in (MICA, MICA2):
                link = DualRadioLink(low=low, high=high)
                s_star = breakeven_bits_multihop(link, 5)
                assert s_star < kb_to_bits(1)


class TestCrossover:
    def test_crossover_close_to_smooth_breakeven(self, lucent11_micaz):
        smooth = breakeven_bits(lucent11_micaz)
        packetized = crossover_bits(lucent11_micaz)
        assert abs(packetized - smooth) <= 2 * max(
            MICAZ.payload_bits, LUCENT_11.payload_bits
        )

    def test_crossover_infeasible_matches(self):
        link = DualRadioLink(low=MICAZ, high=CABLETRON)
        assert crossover_bits(link) == float("inf")

    def test_high_radio_wins_above_crossover(self, lucent11_micaz):
        cross = crossover_bits(lucent11_micaz)
        above = cross * 4
        assert energy_high(above, lucent11_micaz) < energy_low(above, MICAZ)
