"""Simulator clock, agenda, run modes and scheduling helpers."""

import pytest

from repro.sim import SimulationError, Simulator, StopSimulation


# Every clock/agenda/run-mode contract must hold identically on both
# agenda backends; the scheduler choice is performance-only.
@pytest.fixture(params=["heap", "calendar"])
def sim(request):
    return Simulator(seed=1, scheduler=request.param)


class TestClockAndAgenda:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_peek_empty_agenda(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_returns_next_time(self, sim):
        sim.timeout(7.0)
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_step_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_step_advances_one_event(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.step()
        assert sim.now == 1.0

    def test_same_time_events_fifo(self, sim):
        order = []
        sim.call_later(1.0, lambda: order.append("first"))
        sim.call_later(1.0, lambda: order.append("second"))
        sim.call_later(1.0, lambda: order.append("third"))
        sim.run()
        assert order == ["first", "second", "third"]


class TestRunModes:
    def test_run_until_time_sets_clock(self, sim):
        sim.timeout(1.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_time_excludes_later_events(self, sim):
        fired = []
        sim.call_later(5.0, lambda: fired.append(5))
        sim.call_later(15.0, lambda: fired.append(15))
        sim.run(until=10.0)
        assert fired == [5]

    def test_run_until_past_raises(self, sim):
        sim.timeout(5.0)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_run_until_event_returns_value(self, sim):
        timeout = sim.timeout(2.0, value="v")
        assert sim.run(until=timeout) == "v"

    def test_run_until_processed_event_returns_immediately(self, sim):
        timeout = sim.timeout(1.0, value="old")
        sim.run()
        assert sim.run(until=timeout) == "old"

    def test_run_until_unreachable_event_raises(self, sim):
        event = sim.event()  # never triggered
        sim.timeout(1.0)
        with pytest.raises(SimulationError, match="exhausted"):
            sim.run(until=event)

    def test_run_until_failed_event_raises(self, sim):
        event = sim.event()
        sim.call_later(1.0, lambda: event.fail(RuntimeError("failed")))
        with pytest.raises(RuntimeError, match="failed"):
            sim.run(until=event)

    def test_run_until_failed_event_is_defused(self, sim):
        # Raising through run(until=event) counts as delivering the
        # failure to the caller: the event must come out defused, or the
        # next run() would re-raise it as unhandled.
        event = sim.event()
        sim.call_later(1.0, lambda: event.fail(RuntimeError("failed")))
        with pytest.raises(RuntimeError, match="failed"):
            sim.run(until=event)
        sim.run()  # no re-raise

    def test_stop_simulation_halts_run(self, sim):
        def bomb():
            raise StopSimulation()

        fired = []
        sim.call_later(1.0, bomb)
        sim.call_later(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == []

    def test_run_drains_agenda(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.peek() == float("inf")
        assert sim.now == 2.0


class TestSchedulingHelpers:
    def test_call_later_passes_args(self, sim):
        seen = []
        sim.call_later(1.5, lambda a, b: seen.append((a, b)), 1, 2)
        sim.run()
        assert seen == [(1, 2)]

    def test_call_at_absolute_time(self, sim):
        sim.timeout(4.0)
        sim.run(until=3.0)
        seen = []
        sim.call_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_call_at_past_raises(self, sim):
        sim.timeout(2.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim._enqueue(sim.event(), delay=-1.0)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            rng = sim.rng.stream("test")
            events = []

            def worker(name):
                while sim.now < 50:
                    yield sim.timeout(rng.uniform(0.1, 2.0))
                    events.append((round(sim.now, 9), name))

            sim.process(worker("a"))
            sim.process(worker("b"))
            sim.run(until=50)
            return events

        assert trace(99) == trace(99)

    def test_different_seed_different_trace(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            rng = sim.rng.stream("test")
            out = [rng.random() for _ in range(5)]
            return out

        assert trace(1) != trace(2)
