"""BCP protocol behaviour: handshake, bulk transfer, flow control,
timeouts, power management and multi-hop forwarding."""


from repro.channel.medium import LossModel, Medium
from repro.core.bcp import BcpAgent
from repro.core.config import BcpConfig
from repro.core.messages import Wakeup
from repro.energy.meter import EnergyMeter
from repro.energy.radio_specs import LUCENT_11, MICAZ
from repro.mac.csma import SensorCsmaMac
from repro.mac.dcf import DcfMac
from repro.net.addressing import AddressMap
from repro.net.packets import DataPacket
from repro.net.routing import build_routing
from repro.radio.radio import HighPowerRadio, LowPowerRadio
from repro.sim import Simulator
from repro.topology import line_layout


class DualNet:
    """A line of dual-radio nodes running BCP; node n-1 is the sink."""

    def __init__(
        self,
        n=2,
        config=None,
        seed=6,
        high_range=40.0,
        low_loss=0.0,
        high_loss=0.0,
    ):
        self.sim = Simulator(seed=seed)
        self.layout = line_layout(n, 40.0)
        self.sink = n - 1
        low_loss_model = (
            LossModel(low_loss, self.sim.rng.stream("low.loss"))
            if low_loss
            else None
        )
        high_loss_model = (
            LossModel(high_loss, self.sim.rng.stream("high.loss"))
            if high_loss
            else None
        )
        self.low_medium = Medium(self.sim, self.layout, "low", loss=low_loss_model)
        self.high_medium = Medium(
            self.sim, self.layout, "high", loss=high_loss_model
        )
        high_spec = LUCENT_11.replace(range_m=high_range)
        self.meters = {i: EnergyMeter(str(i)) for i in range(n)}
        self.low_radios = {
            i: LowPowerRadio(self.sim, i, MICAZ, self.low_medium, self.meters[i])
            for i in range(n)
        }
        self.high_radios = {
            i: HighPowerRadio(
                self.sim, i, high_spec, self.high_medium, self.meters[i]
            )
            for i in range(n)
        }
        low_macs = {i: SensorCsmaMac(self.sim, self.low_radios[i]) for i in range(n)}
        high_macs = {i: DcfMac(self.sim, self.high_radios[i]) for i in range(n)}
        low_table = build_routing(self.layout, 40.0)
        high_table = build_routing(self.layout, high_range)
        addresses = AddressMap()
        for i in range(n):
            addresses.register_node(i)
        self.config = config or BcpConfig.for_burst_packets(4)
        self.delivered = []
        self.agents = {
            i: BcpAgent(
                self.sim,
                i,
                self.config,
                low_mac=low_macs[i],
                high_mac=high_macs[i],
                high_radio=self.high_radios[i],
                low_routing=low_table,
                high_routing=high_table,
                deliver=self.delivered.append,
                address_map=addresses,
            )
            for i in range(n)
        }

    def inject(self, node, count, dst=None, size_bytes=32):
        dst = self.sink if dst is None else dst
        for _ in range(count):
            self.agents[node].submit(
                DataPacket(
                    src=node,
                    dst=dst,
                    payload_bits=size_bytes * 8,
                    created_s=self.sim.now,
                )
            )


class TestHandshakeAndTransfer:
    def test_below_threshold_nothing_happens(self):
        net = DualNet()
        net.inject(0, 3)  # threshold is 4 packets
        net.sim.run(until=5.0)
        assert net.delivered == []
        assert net.agents[0].stats.wakeups_sent == 0

    def test_threshold_triggers_wakeup_and_delivery(self):
        net = DualNet()
        net.inject(0, 4)
        net.sim.run(until=5.0)
        assert len(net.delivered) == 4
        assert net.agents[0].stats.wakeups_sent == 1
        assert net.agents[1].stats.acks_sent == 1
        assert net.agents[0].stats.bursts_completed == 1

    def test_data_goes_over_high_radio_only(self):
        net = DualNet()
        net.inject(0, 4)
        net.sim.run(until=5.0)
        # Low medium carried exactly the handshake (wakeup + ack + 2 MAC acks).
        assert net.low_medium.frames_sent == 4
        assert net.high_medium.frames_sent >= 1

    def test_radios_off_after_burst(self):
        net = DualNet()
        net.inject(0, 4)
        net.sim.run(until=5.0)
        assert not net.high_radios[0].is_on
        assert not net.high_radios[1].is_on

    def test_sender_wakes_only_after_ack(self):
        """Section 3: the sender turns its radio on upon the ACK, not
        when it sends the WAKEUP."""
        net = DualNet()
        states = []

        original = net.agents[0]._handle_wakeup_ack

        def spy(ack):
            states.append(net.high_radios[0].is_on)
            original(ack)

        net.agents[0]._handle_wakeup_ack = spy
        net.inject(0, 4)
        net.sim.run(until=5.0)
        assert states == [False]

    def test_delivery_to_self_is_immediate(self):
        net = DualNet()
        net.inject(1, 1, dst=1)
        assert len(net.delivered) == 1

    def test_large_burst_multiple_frames(self):
        config = BcpConfig.for_burst_packets(64)
        net = DualNet(config=config)
        net.inject(0, 64)
        net.sim.run(until=10.0)
        assert len(net.delivered) == 64
        # 64 x 32 B = 2 KB = 2 frames of 1024 B.
        data_frames = net.agents[0].stats.bursts_completed
        assert data_frames == 1
        assert net.high_radios[1].frames_rx >= 2

    def test_burst_carries_everything_buffered(self):
        """Section 3: the node 'tries to empty its buffer' — a single
        handshake moves all 8 packets even though the threshold is 4."""
        net = DualNet()
        net.inject(0, 8)
        net.sim.run(until=10.0)
        assert len(net.delivered) == 8
        assert net.agents[0].stats.wakeups_sent == 1

    def test_data_arriving_mid_handshake_gets_second_burst(self):
        """Packets buffered after the WAKEUP was sent are not part of the
        advertised burst; a follow-up handshake moves them."""
        net = DualNet()
        net.inject(0, 4)
        net.sim.call_later(0.008, lambda: net.inject(0, 4))
        net.sim.run(until=10.0)
        assert len(net.delivered) == 8
        assert net.agents[0].stats.wakeups_sent == 2


class TestFlowControl:
    def test_receiver_clamps_to_free_buffer(self):
        config = BcpConfig.for_burst_packets(
            4, buffer_capacity_bytes=4 * 32.0
        )
        net = DualNet(n=3, config=config)
        # Node 1 already holds 2 packets toward the sink (below threshold).
        net.inject(1, 2)
        net.sim.run(until=0.5)
        # Node 0 wants to push 4 packets; node 1 only has room for 2.
        net.inject(0, 4)
        net.sim.run(until=1.0)
        assert net.agents[1].buffer.drops == 0

    def test_full_receiver_stays_silent(self):
        config = BcpConfig.for_burst_packets(2, buffer_capacity_bytes=64.0)
        net = DualNet(n=3, config=config)
        net.inject(1, 2)  # fills node 1 completely (threshold met; in session)
        net.inject(0, 2)
        net.sim.run(until=0.2)
        # eventually node 1 drains to the sink and node 0 succeeds
        net.sim.run(until=20.0)
        assert len(net.delivered) == 4

    def test_flow_control_disabled_grants_full_burst(self):
        config = BcpConfig.for_burst_packets(
            4, buffer_capacity_bytes=4 * 32.0, flow_control=False
        )
        net = DualNet(config=config)
        net.inject(0, 4)
        net.sim.run(until=5.0)
        assert len(net.delivered) == 4


class TestRobustness:
    def test_lost_data_receiver_times_out(self):
        net = DualNet(high_loss=0.999, seed=8)
        net.inject(0, 4)
        net.sim.run(until=30.0)
        assert net.agents[1].stats.receiver_timeouts >= 1
        assert not net.high_radios[1].is_on

    def test_unreachable_receiver_handshake_fails(self):
        config = BcpConfig.for_burst_packets(4, wakeup_timeout_s=0.2)
        net = DualNet(low_loss=0.999, config=config, seed=9)
        net.inject(0, 4)
        net.sim.run(until=10.0)
        assert net.agents[0].stats.handshakes_failed >= 1
        assert net.agents[0].stats.wakeup_retries >= config.wakeup_retries
        assert not net.high_radios[0].is_on

    def test_failed_handshake_retries_after_backoff(self):
        config = BcpConfig.for_burst_packets(
            4, wakeup_timeout_s=0.1, handshake_backoff_s=0.5
        )
        net = DualNet(config=config, seed=10)
        # Make the low channel lossless but the receiver deaf by turning
        # 100% loss on after injection... simplest: lossy low channel then
        # heal it by swapping the loss model.
        net.low_medium.loss = LossModel(0.999, net.sim.rng.stream("tmp"))
        net.inject(0, 4)
        net.sim.run(until=3.0)
        assert net.agents[0].stats.handshakes_failed >= 1
        net.low_medium.loss = LossModel(0.0)
        net.sim.run(until=10.0)
        assert len(net.delivered) == 4

    def test_duplicate_wakeup_reacked(self):
        net = DualNet()
        net.inject(0, 4)
        net.sim.run(until=5.0)
        receiver = net.agents[1]
        acks_before = receiver.stats.acks_sent
        # Replay the wakeup of a new session twice (lost-ACK scenario).
        wakeup = Wakeup(origin=0, target=1, session_id=12345, burst_bytes=128)
        receiver._handle_wakeup(wakeup)
        receiver._handle_wakeup(wakeup)
        assert receiver.stats.acks_sent == acks_before + 2
        net.sim.run(until=10.0)  # let the idle timeout clean up


class TestMultihop:
    def test_wakeup_relayed_over_low_network(self):
        """High radio reaches node 2 directly; the WAKEUP cannot."""
        net = DualNet(n=3, high_range=100.0)
        net.inject(0, 4)
        net.sim.run(until=5.0)
        assert len(net.delivered) == 4
        assert net.agents[1].stats.control_forwarded >= 1
        # Data made a single high-power hop (no re-buffering at node 1).
        assert net.agents[1].stats.packets_received == 0

    def test_store_and_forward_when_ranges_equal(self):
        """With sensor-equal wifi range, bulk data re-buffers hop by hop."""
        net = DualNet(n=3, high_range=40.0)
        net.inject(0, 4)
        net.sim.run(until=10.0)
        assert len(net.delivered) == 4
        assert net.agents[1].stats.packets_received == 4
        assert net.agents[1].stats.wakeups_sent == 1

    def test_hop_counter_incremented(self):
        net = DualNet(n=3, high_range=40.0)
        net.inject(0, 4)
        net.sim.run(until=10.0)
        assert all(packet.hops == 2 for packet in net.delivered)


class TestBufferOverflow:
    def test_drops_counted_when_buffer_full(self):
        config = BcpConfig.for_burst_packets(
            2, buffer_capacity_bytes=64.0, wakeup_timeout_s=0.2
        )
        net = DualNet(config=config, low_loss=0.999, seed=12)
        net.inject(0, 5)
        assert net.agents[0].stats.packets_dropped_buffer == 3
