"""MAC layers: frames, ACK/retry behaviour, dedup, contention, queues."""

import pytest

from repro.channel.medium import LossModel, Medium
from repro.energy.meter import EnergyMeter
from repro.energy.radio_specs import MICAZ
from repro.mac.frames import BROADCAST, Frame, FrameKind, make_ack
from repro.mac.timing import MacParams, dcf_params, sensor_csma_params
from repro.radio.radio import LowPowerRadio
from repro.mac.csma import SensorCsmaMac
from repro.sim import Simulator
from repro.topology import line_layout


def data_frame(src, dst, payload_bits=256, require_ack=True):
    return Frame(
        kind=FrameKind.DATA,
        src=src,
        dst=dst,
        payload_bits=payload_bits,
        header_bits=64,
        require_ack=require_ack,
    )


class Net:
    def __init__(self, n=3, seed=5, loss_p=0.0, params=None):
        self.sim = Simulator(seed=seed)
        self.layout = line_layout(n, 40.0)
        loss = LossModel(loss_p, self.sim.rng.stream("loss")) if loss_p else None
        self.medium = Medium(self.sim, self.layout, "m", loss=loss)
        self.meters = {i: EnergyMeter(str(i)) for i in range(n)}
        self.radios = {
            i: LowPowerRadio(self.sim, i, MICAZ, self.medium, self.meters[i])
            for i in range(n)
        }
        self.macs = {
            i: SensorCsmaMac(self.sim, self.radios[i], params=params)
            for i in range(n)
        }
        self.delivered = {i: [] for i in range(n)}
        for i in range(n):
            self.macs[i].set_data_handler(
                lambda frame, i=i: self.delivered[i].append(frame)
            )


class TestFrames:
    def test_total_bits(self):
        assert data_frame(0, 1).total_bits == 320

    def test_broadcast_flag(self):
        assert data_frame(0, BROADCAST).is_broadcast

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Frame(FrameKind.DATA, 0, 1, payload_bits=-1, header_bits=0)

    def test_unique_frame_ids(self):
        assert data_frame(0, 1).frame_id != data_frame(0, 1).frame_id

    def test_make_ack_addresses_reversed(self):
        frame = data_frame(3, 7)
        frame.seq = 42
        ack = make_ack(frame, ack_bits=88)
        assert ack.src == 7 and ack.dst == 3
        assert ack.seq == 42
        assert ack.kind == FrameKind.ACK
        assert not ack.require_ack
        assert ack.total_bits == 88


class TestMacParams:
    def test_contention_window_doubles_and_caps(self):
        params = sensor_csma_params()
        assert params.contention_window(0) == params.cw_min_slots
        assert params.contention_window(1) == 2 * params.cw_min_slots
        assert params.contention_window(10) == params.cw_max_slots

    def test_dcf_matches_80211b(self):
        params = dcf_params()
        assert params.slot_s == 20e-6
        assert params.sifs_s == 10e-6
        assert params.difs_s == 50e-6
        assert params.max_retries == 7
        assert params.preamble_s == 192e-6

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            MacParams(
                slot_s=1e-6, sifs_s=1e-6, difs_s=1e-6,
                cw_min_slots=8, cw_max_slots=4, max_retries=1, ack_bits=8,
            )


class TestUnicastAck:
    def test_successful_send_returns_true(self):
        net = Net()
        done = net.macs[0].send(data_frame(0, 1))
        assert net.sim.run(until=done) is True
        assert len(net.delivered[1]) == 1

    def test_ack_received_by_sender(self):
        net = Net()
        done = net.macs[0].send(data_frame(0, 1))
        net.sim.run(until=done)
        assert net.macs[0].sent_ok == 1
        assert net.macs[0].retransmissions == 0

    def test_out_of_range_fails_after_retries(self):
        net = Net()
        done = net.macs[0].send(data_frame(0, 2))  # 80 m away
        assert net.sim.run(until=done) is False
        assert net.macs[0].sent_failed == 1
        assert (
            net.macs[0].retransmissions
            == sensor_csma_params().max_retries
        )

    def test_no_ack_frames_single_attempt(self):
        net = Net()
        done = net.macs[0].send(data_frame(0, 2, require_ack=False))
        assert net.sim.run(until=done) is True  # fire-and-forget "succeeds"
        assert net.macs[0].retransmissions == 0

    def test_broadcast_delivered_no_ack(self):
        net = Net()
        done = net.macs[1].send(data_frame(1, BROADCAST, require_ack=False))
        net.sim.run(until=done)
        assert len(net.delivered[0]) == 1
        assert len(net.delivered[2]) == 1

    def test_loss_triggers_retransmission_then_success(self):
        """At 40% frame loss a try succeeds only if data AND ack survive
        (p = 0.36), so a few of 30 frames may exhaust retries — but
        retransmissions must kick in and dedup must keep deliveries
        unique."""
        net = Net(loss_p=0.4, seed=11)
        results = []
        for _ in range(30):
            done = net.macs[0].send(data_frame(0, 1))
            results.append(net.sim.run(until=done))
        assert sum(results) >= 25
        assert net.macs[0].retransmissions > 0
        # Dedup: every delivery is unique despite retransmissions; some
        # "failed" sends actually delivered (their ACKs were lost).
        seqs = [frame.seq for frame in net.delivered[1]]
        assert len(seqs) == len(set(seqs))
        assert len(seqs) >= sum(results)


class TestDuplicateSuppression:
    def test_duplicate_data_not_delivered_twice(self):
        net = Net()
        frame = data_frame(0, 1)
        done = net.macs[0].send(frame)
        net.sim.run(until=done)
        # Simulate a lost ACK by replaying the same seq.
        replay = data_frame(0, 1)
        replay.seq = frame.seq
        done2 = net.macs[0].send(replay)
        net.sim.run(until=done2)
        assert len(net.delivered[1]) == 1

    def test_distinct_seqs_both_delivered(self):
        net = Net()
        for _ in range(2):
            done = net.macs[0].send(data_frame(0, 1))
            net.sim.run(until=done)
        assert len(net.delivered[1]) == 2


class TestQueueing:
    def test_queue_overflow_drops(self):
        params = sensor_csma_params(queue_capacity=2)
        net = Net(params=params)
        events = [net.macs[0].send(data_frame(0, 1)) for _ in range(10)]
        net.sim.run()
        outcomes = [event.value for event in events]
        assert outcomes.count(False) >= 7  # one in-flight + 2 queued at most
        assert net.macs[0].queue_drops >= 7

    def test_frames_serialized_in_order(self):
        net = Net()
        for _ in range(5):
            net.macs[0].send(data_frame(0, 1))
        net.sim.run()
        seqs = [frame.seq for frame in net.delivered[1]]
        assert seqs == sorted(seqs)
        assert len(seqs) == 5


class TestContention:
    def test_two_senders_one_receiver_all_deliver(self):
        """Carrier sense + retries sort out a 2-sender hot spot."""
        net = Net(n=3)
        # 0 and 2 both send to 1 (hidden from each other -> real collisions).
        events = []
        for _ in range(10):
            events.append(net.macs[0].send(data_frame(0, 1)))
            events.append(net.macs[2].send(data_frame(2, 1)))
        net.sim.run()
        delivered = len(net.delivered[1])
        assert delivered >= 16  # most get through thanks to retries
        assert net.medium.frames_collided > 0 or net.macs[0].retransmissions >= 0

    def test_energy_charged_for_macs(self):
        net = Net()
        done = net.macs[0].send(data_frame(0, 1))
        net.sim.run(until=done)
        # Sender pays tx for data and rx for the ACK.
        categories0 = net.meters[0].by_category()
        assert categories0["tx"] > 0
        assert categories0["rx"] > 0
        # Receiver pays rx for data and tx for the ACK.
        categories1 = net.meters[1].by_category()
        assert categories1["rx"] > 0
        assert categories1["tx"] > 0
