"""Failure injection and adverse-condition behaviour across the stack."""

import pytest

from repro.models import ScenarioConfig, run_scenario
from repro.stats.metrics import ENERGY_TOTAL


def small(model, **overrides):
    defaults = dict(
        model=model,
        rows=3,
        cols=3,
        sink=4,
        n_senders=4,
        rate_bps=2000.0,
        sim_time_s=60.0,
        burst_packets=20,
        seed=31,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestLossyChannels:
    @pytest.mark.parametrize("loss", [0.05, 0.15, 0.3])
    def test_dual_still_delivers_under_loss(self, loss):
        result = run_scenario(small("dual", loss_probability=loss))
        assert result.goodput > 0.5
        assert result.counters["mac.retransmissions"] > 0

    def test_goodput_degrades_gracefully_with_loss(self):
        results = [
            run_scenario(small("sensor", loss_probability=loss))
            for loss in (0.0, 0.2, 0.4)
        ]
        goodputs = [result.goodput for result in results]
        assert goodputs[0] >= goodputs[1] >= goodputs[2] - 0.05
        assert goodputs[0] > 0.9

    def test_loss_costs_energy(self):
        clean = run_scenario(small("sensor"))
        lossy = run_scenario(small("sensor", loss_probability=0.3))
        # Retransmissions burn extra joules per delivered bit.
        assert lossy.normalized_energy() > clean.normalized_energy()


class TestExtremeParameters:
    def test_single_sender(self):
        result = run_scenario(small("dual", n_senders=1))
        assert result.goodput > 0.9

    def test_tiny_buffer_drops_accounted(self):
        result = run_scenario(
            small("dual", burst_packets=5, buffer_packets=6, rate_bps=8000.0)
        )
        total_accounted = (
            result.delivered_bits / 256
            + result.counters.get("bcp.buffer_drops", 0)
        )
        assert total_accounted > 0
        assert result.generated_bits > 0

    def test_threshold_equals_buffer(self):
        result = run_scenario(
            small("dual", burst_packets=50, buffer_packets=50)
        )
        assert result.goodput > 0.5

    def test_zero_linger_vs_long_linger_energy(self):
        quick_off = run_scenario(small("dual", idle_linger_s=0.0))
        lingering = run_scenario(small("dual", idle_linger_s=0.5))
        assert (
            lingering.energy_j[ENERGY_TOTAL]
            > quick_off.energy_j[ENERGY_TOTAL]
        )

    def test_high_rate_saturation_does_not_crash(self):
        result = run_scenario(small("dual", rate_bps=50_000.0,
                                    burst_packets=100, sim_time_s=20.0))
        assert 0.0 <= result.goodput <= 1.0


class TestEnergySanity:
    @pytest.mark.parametrize("model", ["sensor", "wifi", "dual"])
    def test_energy_non_negative_and_finite(self, model):
        result = run_scenario(small(model))
        for key, joules in result.energy_j.items():
            assert joules >= 0.0, key
            assert joules < 1e6, key

    def test_sensor_accountings_ordered(self):
        result = run_scenario(small("sensor"))
        assert (
            result.energy_j["sensor_ideal"]
            <= result.energy_j["sensor_header"]
            <= result.energy_j["sensor_full"]
        )

    def test_longer_sim_more_energy(self):
        short = run_scenario(small("dual", sim_time_s=30.0))
        long = run_scenario(small("dual", sim_time_s=90.0))
        assert long.energy_j[ENERGY_TOTAL] > short.energy_j[ENERGY_TOTAL]

    def test_wifi_idle_dominates_total(self):
        result = run_scenario(small("wifi"))
        assert result.energy_j[ENERGY_TOTAL] == result.energy_j["high_radio"]
        # 9 radios x ~0.74 W x 60 s ~ 400 J; tx adds a little.
        assert result.energy_j[ENERGY_TOTAL] > 100.0


class TestDeterminismAcrossModels:
    @pytest.mark.parametrize("model", ["sensor", "wifi", "dual"])
    def test_same_seed_identical_results(self, model):
        first = run_scenario(small(model))
        second = run_scenario(small(model))
        assert first.generated_bits == second.generated_bits
        assert first.delivered_bits == second.delivered_bits
        assert first.energy_j == second.energy_j
        assert first.mean_delay_s == second.mean_delay_s
        assert first.counters == second.counters

    def test_different_seeds_differ(self):
        a = run_scenario(small("dual", seed=1))
        b = run_scenario(small("dual", seed=2))
        assert (
            a.delivered_bits != b.delivered_bits
            or a.energy_j != b.energy_j
            or a.mean_delay_s != b.mean_delay_s
        )
