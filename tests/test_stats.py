"""Statistics: confidence intervals, metrics, sink collection, summaries."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packets import DataPacket
from repro.sim import Simulator
from repro.stats import (
    ENERGY_TOTAL,
    RunResult,
    SinkCollector,
    j_per_bit_to_j_per_kbit,
    mean_confidence,
    merge_counters,
    summarize_runs,
)


class TestConfidence:
    def test_mean(self):
        estimate = mean_confidence([1.0, 2.0, 3.0])
        assert estimate.mean == 2.0
        assert estimate.n == 3

    def test_single_sample_zero_width(self):
        estimate = mean_confidence([5.0])
        assert estimate.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence([])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence([1.0], confidence=1.5)

    def test_known_t_interval(self):
        """n=20, std=1: half width = t(0.975, 19) / sqrt(20) = 0.468."""
        values = [0.0, 1.0] * 10  # mean .5, sample std ~0.513
        estimate = mean_confidence(values)
        std = math.sqrt(sum((v - 0.5) ** 2 for v in values) / 19)
        expected = 2.093 * std / math.sqrt(20)
        assert estimate.half_width == pytest.approx(expected, rel=1e-3)

    def test_bounds(self):
        estimate = mean_confidence([2.0, 4.0, 6.0, 8.0])
        assert estimate.low == estimate.mean - estimate.half_width
        assert estimate.high == estimate.mean + estimate.half_width

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    def test_property_mean_inside_interval(self, values):
        estimate = mean_confidence(values)
        assert estimate.low <= estimate.mean <= estimate.high

    @given(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        st.integers(min_value=2, max_value=30),
    )
    def test_property_constant_sample_zero_width(self, value, n):
        estimate = mean_confidence([value] * n)
        assert estimate.half_width == pytest.approx(0.0, abs=1e-9)


def result(generated=1000.0, delivered=800.0, energy=2.0, delay=1.0):
    return RunResult(
        model="dual",
        sim_time_s=100.0,
        generated_bits=generated,
        delivered_bits=delivered,
        mean_delay_s=delay,
        max_delay_s=delay * 2,
        energy_j={ENERGY_TOTAL: energy},
    )


class TestRunResult:
    def test_goodput(self):
        assert result().goodput == pytest.approx(0.8)

    def test_goodput_no_traffic(self):
        assert result(generated=0.0, delivered=0.0).goodput == 0.0

    def test_normalized_energy(self):
        assert result().normalized_energy() == pytest.approx(2.0 / 800.0)

    def test_normalized_energy_j_per_kbit(self):
        assert result().normalized_energy_j_per_kbit() == pytest.approx(
            1000 * 2.0 / 800.0
        )

    def test_undelivered_energy_infinite(self):
        assert result(delivered=0.0).normalized_energy() == float("inf")

    def test_units_conversion(self):
        assert j_per_bit_to_j_per_kbit(0.001) == 1.0


class TestMergeCounters:
    def test_sums_by_name(self):
        merged = merge_counters({"a": 1.0, "b": 2.0}, {"a": 3.0})
        assert merged == {"a": 4.0, "b": 2.0}


class TestSinkCollector:
    def test_records_delivery_and_delay(self):
        sim = Simulator(seed=1)
        collector = SinkCollector(sim, sink_id=0)

        def deliver_later():
            yield sim.timeout(2.0)
            collector.deliver(DataPacket(src=5, dst=0, payload_bits=256,
                                         created_s=0.5))

        sim.process(deliver_later())
        sim.run()
        assert collector.packets_delivered == 1
        assert collector.bits_delivered == 256
        assert collector.delays_s == [1.5]
        assert collector.per_source == {5: 1}

    def test_duplicates_excluded(self):
        sim = Simulator(seed=1)
        collector = SinkCollector(sim, sink_id=0)
        packet = DataPacket(src=5, dst=0, payload_bits=256, created_s=0.0)
        collector.deliver(packet)
        collector.deliver(packet)
        assert collector.packets_delivered == 1
        assert collector.duplicates == 1

    def test_wrong_destination_rejected(self):
        sim = Simulator(seed=1)
        collector = SinkCollector(sim, sink_id=0)
        with pytest.raises(ValueError):
            collector.deliver(DataPacket(src=5, dst=3, payload_bits=8,
                                         created_s=0.0))

    def test_delay_statistics(self):
        sim = Simulator(seed=1)
        collector = SinkCollector(sim, sink_id=0)
        assert collector.mean_delay_s == 0.0
        assert collector.max_delay_s == 0.0


class TestSummarize:
    def test_aggregates_runs(self):
        results = [result(delivered=800.0), result(delivered=900.0)]
        summary = summarize_runs(results)
        assert summary.n_runs == 2
        assert summary.goodput.mean == pytest.approx((0.8 + 0.9) / 2)
        assert summary.undelivered_runs == 0

    def test_undelivered_runs_excluded_from_energy(self):
        results = [result(), result(delivered=0.0)]
        summary = summarize_runs(results)
        assert summary.undelivered_runs == 1
        assert summary.normalized_energy_j_per_kbit is not None
        assert summary.normalized_energy_j_per_kbit.n == 1

    def test_all_undelivered(self):
        summary = summarize_runs([result(delivered=0.0)])
        assert summary.normalized_energy_j_per_kbit is None
        assert summary.row()["energy_j_per_kbit"] == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])

    def test_row_shape(self):
        row = summarize_runs([result()]).row()
        assert set(row) == {
            "goodput",
            "goodput_ci",
            "energy_j_per_kbit",
            "energy_ci",
            "delay_s",
            "delay_ci",
        }
