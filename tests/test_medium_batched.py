"""Batched medium delivery: bugfix regressions and decision identity.

Covers the PR-7 medium rework:

* broadcast receptions apply the same receiver-centric overlap/capture
  test as unicast (they used to be immune to collisions);
* broadcast counters record actual per-receiver outcomes (delivered used
  to bump once per frame even with zero listeners);
* :class:`LossModel` validates at construction that a nonzero probability
  comes with an rng;
* a hypothesis property pins the batched fast path (listening bitmap,
  ``MeterBank`` energy fanout, O(1) busy refcounts) as decision- and
  bit-identical to the historical per-receiver loop the generic path
  preserves.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.medium import LossModel, Medium
from repro.channel.propagation import DistancePrr
from repro.energy.meter import EnergyMeter, MeterBank
from repro.energy.radio_specs import MICAZ
from repro.mac.frames import BROADCAST, Frame, FrameKind
from repro.radio.radio import LowPowerRadio
from repro.sim import Simulator
from repro.topology import line_layout
from repro.topology.layout import Layout, Position


def data_frame(src, dst, payload_bits=256, header_bits=64, seq=0):
    return Frame(
        kind=FrameKind.DATA,
        src=src,
        dst=dst,
        payload_bits=payload_bits,
        header_bits=header_bits,
        seq=seq,
        require_ack=False,
    )


class BankHarness:
    """Raw radios metered by one MeterBank (the batched fast path)."""

    def __init__(self, layout, loss=None, seed=1, propagation=None):
        self.sim = Simulator(seed=seed)
        self.layout = layout
        self.medium = Medium(
            self.sim, layout, "test", loss=loss, propagation=propagation
        )
        n = len(layout)
        self.bank = MeterBank(n)
        self.radios = {
            i: LowPowerRadio(
                self.sim, i, MICAZ, self.medium, self.bank.meter(i)
            )
            for i in range(n)
        }
        self.received = {i: [] for i in range(n)}
        for i in range(n):
            self.radios[i].set_receiver(
                lambda frame, i=i: self.received[i].append(frame)
            )


class TestLossModelValidation:
    def test_nonzero_probability_requires_rng(self):
        with pytest.raises(ValueError):
            LossModel(0.3)

    def test_zero_probability_needs_no_rng(self):
        model = LossModel(0.0)
        assert not any(model.is_lost() for _ in range(10))

    def test_nonzero_probability_with_rng_accepted(self):
        sim = Simulator(seed=1)
        model = LossModel(0.3, sim.rng.stream("loss"))
        assert model.is_lost() in (True, False)


class TestBroadcastCollisions:
    def test_overlapping_broadcasts_collide_at_common_receiver(self):
        """Hidden-terminal broadcasts: 0 and 2 cannot hear each other but
        both reach 1, so neither broadcast survives there."""
        h = BankHarness(line_layout(3, 40.0))
        h.radios[0].transmit(data_frame(0, BROADCAST))
        h.radios[2].transmit(data_frame(2, BROADCAST))
        h.sim.run()
        assert h.received[1] == []
        assert h.medium.frames_collided == 2
        assert h.medium.frames_delivered == 0

    def test_capture_saves_broadcast_from_weak_interferer(self):
        """An interferer 4x farther than the sender is captured away."""
        layout = Layout(
            {0: Position(0.0, 0.0), 1: Position(10.0, 0.0), 2: Position(40.0, 0.0)}
        )
        h = BankHarness(layout)
        h.radios[1].transmit(data_frame(1, BROADCAST, payload_bits=8192))

        def interferer():
            yield h.sim.timeout(0.001)  # mid-flight of the broadcast
            h.radios[2].transmit(data_frame(2, 0, payload_bits=64))

        h.sim.process(interferer())
        h.sim.run()
        # At node 0 the wanted signal is 10 m away, the interferer 40 m:
        # 40 >= 1.7 * 10, so node 0 captures the broadcast.
        assert len(h.received[0]) == 1

    def test_any_overlap_kills_without_capture(self):
        layout = Layout(
            {0: Position(0.0, 0.0), 1: Position(10.0, 0.0), 2: Position(40.0, 0.0)}
        )
        h = BankHarness(layout)
        h.medium.capture_ratio = None
        h.radios[1].transmit(data_frame(1, BROADCAST, payload_bits=8192))

        def interferer():
            yield h.sim.timeout(0.001)
            h.radios[2].transmit(data_frame(2, 0, payload_bits=64))

        h.sim.process(interferer())
        h.sim.run()
        assert h.received[0] == []
        assert h.medium.frames_collided >= 1

    def test_receiver_deaf_at_broadcast_start_misses_it(self):
        """A node mid-transmission when a broadcast starts cannot sync to
        its preamble, even if its own frame ends first (mirrors the
        unicast ``receiver_listening`` snapshot)."""
        h = BankHarness(line_layout(3, 40.0))
        h.radios[0].transmit(data_frame(0, 1, payload_bits=64))
        h.radios[1].transmit(data_frame(1, BROADCAST, payload_bits=8192))
        h.sim.run()
        assert h.received[0] == []  # deaf at start: skipped, not collided
        assert len(h.received[2]) == 1
        assert h.medium.frames_collided == 0
        assert h.medium.frames_delivered == 1


class TestBroadcastCounters:
    def test_no_listeners_means_no_delivery_count(self):
        h = BankHarness(line_layout(2, 100.0))  # out of range
        h.radios[0].transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert h.medium.frames_sent == 1
        assert h.medium.frames_delivered == 0

    def test_delivered_counts_each_receiver(self):
        h = BankHarness(line_layout(3, 40.0))
        h.radios[1].transmit(data_frame(1, BROADCAST))
        h.sim.run()
        assert h.medium.frames_delivered == 2

    def test_failed_rolls_surface_as_lost(self):
        sim_seed = 7
        sim = Simulator(seed=sim_seed)
        loss = LossModel(0.99, sim.rng.stream("loss"))
        h = BankHarness(line_layout(3, 40.0), loss=loss, seed=sim_seed)
        h.radios[1].transmit(data_frame(1, BROADCAST))
        h.sim.run()
        # Two listening receivers: every roll is either a delivery or a
        # counted loss — the counters reconcile.
        assert h.medium.frames_delivered + h.medium.frames_lost == 2


class TestFastPathEligibility:
    def test_homogeneous_bank_fleet_uses_fanout(self):
        h = BankHarness(line_layout(3, 40.0))
        h.medium._neighbor_index()
        assert h.medium._fanout is not None

    def test_standalone_meters_fall_back_to_generic(self):
        sim = Simulator(seed=1)
        layout = line_layout(3, 40.0)
        medium = Medium(sim, layout, "m")
        for i in range(3):
            LowPowerRadio(sim, i, MICAZ, medium, EnergyMeter(str(i)))
        medium._neighbor_index()
        assert medium._fanout is None

    def test_busy_refcount_tracks_overlapping_frames(self):
        h = BankHarness(line_layout(3, 40.0))
        h.radios[0].transmit(data_frame(0, 1, payload_bits=8192))
        trace = []

        def probe():
            yield h.sim.timeout(0.001)
            h.radios[2].transmit(data_frame(2, 1, payload_bits=8192))
            yield h.sim.timeout(0.001)
            trace.append(h.medium.is_busy_for(1))  # hears both
            trace.append(h.medium.is_busy_for(0))  # own + nothing else

        h.sim.process(probe())
        h.sim.run()
        trace.append(h.medium.is_busy_for(1))  # all over
        assert trace == [True, True, False]
        assert all(count == 0 for count in h.medium._busy)

    def test_retire_then_mid_run_register_keeps_refcounts_consistent(self):
        # Fault-injection interaction: a node retires while frames are in
        # flight, then a NEW port registers in the same topology epoch.
        # Registration nulls the memoized index, so the rebuild must
        # re-apply the retirement AND replay busy refcounts over the
        # surviving (non-aborted) in-flight transmissions.
        sim = Simulator(seed=1)
        layout = line_layout(4, 40.0)
        medium = Medium(sim, layout, "test")
        bank = MeterBank(4)
        radios = {
            i: LowPowerRadio(sim, i, MICAZ, medium, bank.meter(i))
            for i in range(3)
        }
        radios[0].transmit(data_frame(0, 1, payload_bits=8192))
        trace = []

        def driver():
            yield sim.timeout(0.001)
            radios[2].transmit(data_frame(2, 1, payload_bits=8192))
            yield sim.timeout(0.001)
            radios[0].power_down()
            medium.retire_node(0)  # aborts 0's frame; 2's survives
            radios[3] = LowPowerRadio(
                sim, 3, MICAZ, medium, bank.meter(3)
            )
            trace.append(medium.is_busy_for(1))  # still hears node 2
            trace.append(0 in medium.neighbors(1))  # retirement reapplied
            trace.append(2 in medium.neighbors(3))  # newcomer wired in

        sim.process(driver())
        sim.run()
        assert trace == [True, False, True]
        assert all(count == 0 for count in medium._busy)
        # ... and the epoch machinery still works on the rebuilt index.
        medium.restore_node(0)
        assert 0 in medium.neighbors(1)


# -- decision identity: batched fast path vs historical loop ---------------


@st.composite
def medium_scenario(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    positions = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=n,
            max_size=n,
        )
    )
    events = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),  # sender
                st.integers(min_value=-1, max_value=n - 1),  # dst (-1 = bcast)
                st.integers(min_value=0, max_value=3),  # delay ms
            ),
            min_size=1,
            max_size=25,
        )
    )
    promiscuous = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    use_loss = draw(st.booleans())
    use_prr = draw(st.booleans())
    seed = draw(st.integers(min_value=1, max_value=10_000))
    return n, positions, events, promiscuous, use_loss, use_prr, seed


def _run_schedule(scenario, force_generic):
    n, positions, events, promiscuous, use_loss, use_prr, seed = scenario
    sim = Simulator(seed=seed)
    layout = Layout(
        {i: Position(float(x), float(y)) for i, (x, y) in enumerate(positions)}
    )
    loss = LossModel(0.2, sim.rng.stream("loss")) if use_loss else None
    propagation = (
        DistancePrr(layout, sim.rng.stream("prop"), exponent=2.0)
        if use_prr
        else None
    )
    medium = Medium(sim, layout, "m", loss=loss, propagation=propagation)
    bank = MeterBank(n)
    radios = {
        i: LowPowerRadio(sim, i, MICAZ, medium, bank.meter(i))
        for i in range(n)
    }
    received = {i: [] for i in range(n)}
    overheard = {i: [] for i in range(n)}
    for i in range(n):
        radios[i].set_receiver(
            lambda frame, i=i: received[i].append((frame.src, frame.seq))
        )
    for i in promiscuous:
        radios[i].set_overhear_handler(
            lambda frame, i=i: overheard[i].append((frame.src, frame.seq))
        )
    medium._neighbor_index()
    if force_generic:
        medium._fanout = None
    busy_trace = []

    def driver():
        for seq, (sender, dst, delay_ms) in enumerate(events):
            yield sim.timeout(delay_ms / 1000.0)
            sensed = [medium.is_busy_for(i) for i in range(n)]
            # The O(1) refcount must agree with the historical scan over
            # active transmissions at every sample point.
            for i in range(n):
                reference = any(
                    tx.sender.node_id == i
                    or medium.is_neighbor(tx.sender.node_id, i)
                    for tx in medium._active
                )
                assert sensed[i] == reference
            busy_trace.append(sensed)
            radio = radios[sender]
            if radio.is_transmitting:
                continue
            radio.transmit(
                data_frame(
                    sender, BROADCAST if dst < 0 else dst, seq=seq
                )
            )

    sim.process(driver())
    sim.run()
    return {
        "received": received,
        "overheard": overheard,
        "counters": (
            medium.frames_sent,
            medium.frames_delivered,
            medium.frames_collided,
            medium.frames_lost,
        ),
        "energy": [bank.node_items(i) for i in range(n)],
        "busy": busy_trace,
    }


class TestBatchedDecisionIdentity:
    @settings(max_examples=30, deadline=None)
    @given(scenario=medium_scenario())
    def test_fast_path_matches_historical_loop(self, scenario):
        """Same topology, traffic, listening churn, loss and PRR draws:
        the batched fanout path and the per-receiver loop must make
        identical decisions and charge bit-identical energy."""
        fast = _run_schedule(scenario, force_generic=False)
        generic = _run_schedule(scenario, force_generic=True)
        assert fast == generic
