"""Property-based tests on the break-even equations."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.energy.breakeven import (
    DualRadioLink,
    breakeven_bits,
    breakeven_bits_multihop,
    energy_high,
    energy_low,
    energy_low_multihop,
)
from repro.energy.radio_specs import (
    CABLETRON,
    LUCENT_2,
    LUCENT_11,
    MICA,
    MICA2,
    MICAZ,
)

low_specs = st.sampled_from([MICA, MICA2, MICAZ])
high_specs = st.sampled_from([CABLETRON, LUCENT_2, LUCENT_11])
sizes = st.integers(min_value=0, max_value=10_000_000)
idles = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


@given(low_specs, sizes)
def test_energy_low_nonnegative_and_monotone(low, bits):
    here = energy_low(bits, low)
    there = energy_low(bits + low.payload_bits, low)
    assert here >= 0
    assert there >= here


@given(low_specs, high_specs, sizes, idles)
def test_energy_high_nonnegative_and_monotone(low, high, bits, idle):
    link = DualRadioLink(low=low, high=high, idle_s=idle)
    here = energy_high(bits, link)
    there = energy_high(bits + high.payload_bits, link)
    assert here >= link.fixed_overhead_j
    assert there >= here


@given(low_specs, high_specs, idles, idles)
def test_breakeven_monotone_in_idle(low, high, idle_a, idle_b):
    """More idling can only push the break-even point out (Fig. 2)."""
    lo, hi = sorted((idle_a, idle_b))
    s_lo = breakeven_bits(DualRadioLink(low=low, high=high, idle_s=lo))
    s_hi = breakeven_bits(DualRadioLink(low=low, high=high, idle_s=hi))
    assert s_hi >= s_lo


@given(low_specs, high_specs, st.integers(min_value=1, max_value=10))
def test_breakeven_monotone_in_forward_progress(low, high, fp):
    """More forward progress can only help the high-power radio (Fig. 3)."""
    link = DualRadioLink(low=low, high=high)
    here = breakeven_bits_multihop(link, fp)
    there = breakeven_bits_multihop(link, fp + 1)
    assert there <= here


@given(low_specs, high_specs, sizes)
def test_above_breakeven_high_radio_wins(low, high, extra_bits):
    """Eq. 3's defining property, checked against the smooth curves."""
    link = DualRadioLink(low=low, high=high)
    s_star = breakeven_bits(link)
    if s_star == float("inf"):
        return
    bits = s_star + extra_bits + low.payload_bits * 4
    # Compare the smooth (non-packetized) forms that Eq. 3 is defined over.
    smooth_low = low.energy_per_payload_bit() * bits
    smooth_high = link.fixed_overhead_j + high.energy_per_payload_bit() * bits
    assert smooth_high <= smooth_low


@given(low_specs, high_specs, sizes, st.integers(min_value=1, max_value=8))
def test_multihop_low_is_fp_times_single(low, high, bits, fp):
    link = DualRadioLink(low=low, high=high)
    assert energy_low_multihop(bits, link, fp) == fp * energy_low(bits, low)


@given(low_specs, sizes)
def test_energy_low_packet_quantization(low, bits):
    """Eq. 1's ceiling: energy only depends on the packet count."""
    packets = math.ceil(bits / low.payload_bits) if bits else 0
    reference = energy_low(packets * low.payload_bits, low)
    assert energy_low(bits, low) == reference
