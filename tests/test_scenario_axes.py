"""The scenario-composition axes: registries, specs, and composed builds.

Covers the pluggable topology/propagation/traffic/radio machinery end to
end: spec parsing and hashing-friendly plain-data form, generator
determinism (hypothesis), connectivity guarantees, the neighbor index's
equivalence with a brute-force scan, heterogeneous radio assignment, and
the guarantee that explicitly spelling out the paper's defaults through
the new axes reproduces the legacy construction bit for bit.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.index import NeighborIndex
from repro.channel.medium import Medium
from repro.channel.propagation import (
    PROPAGATION,
    DistancePrr,
    LogNormalShadowing,
    PropagationSpec,
    UnitDiscPropagation,
    build_propagation,
)
from repro.energy.meter import EnergyMeter
from repro.energy.radio_specs import CABLETRON, LUCENT_11, MICAZ
from repro.models.scenario import (
    RadioAssignment,
    ScenarioConfig,
    build_network,
    run_scenario,
)
from repro.radio.radio import LowPowerRadio
from repro.sim.simulator import Simulator
from repro.topology.layout import clustered_layout, random_layout
from repro.topology.registry import (
    TOPOLOGIES,
    TopologySpec,
    build_layout,
    topology_node_count,
)
from repro.traffic.generators import AudioBurstSource, CbrSource, PoissonSource
from repro.traffic.registry import TRAFFIC


def rng_for(seed, name="layout"):
    return Simulator(seed=seed).rng.stream(name)


# ---------------------------------------------------------------------------
# Specs: parsing, plain-data form, registry lookups.
# ---------------------------------------------------------------------------


class TestTopologySpec:
    def test_required_kinds_registered(self):
        for kind in ("grid", "line", "uniform-random", "clustered", "from-file"):
            assert kind in TOPOLOGIES

    def test_parse_round_trip(self):
        spec = TopologySpec.parse("uniform-random:n=24,width_m=160,height_m=80")
        assert spec.kind == "uniform-random"
        assert spec.kwargs() == {"n": 24, "width_m": 160, "height_m": 80}
        assert topology_node_count(spec) == 24

    def test_params_sorted_for_stable_hashing(self):
        a = TopologySpec.of("grid", rows=3, cols=4)
        b = TopologySpec.of("grid", cols=4, rows=3)
        assert a == b

    def test_unknown_kind_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown topology"):
            ScenarioConfig(topology=TopologySpec.of("donut"), sink=0)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="bad parameters"):
            build_layout(TopologySpec.of("grid", radius=7), rng_for(1))

    def test_node_count_matches_built_layout(self):
        for text in ("grid:rows=3,cols=5", "line:n=7",
                     "uniform-random:n=11,width_m=50,height_m=50",
                     "clustered:n=13,width_m=50,height_m=50,clusters=2"):
            spec = TopologySpec.parse(text)
            layout = build_layout(spec, rng_for(3))
            assert len(layout) == topology_node_count(spec)

    def test_from_file_inlines_positions(self, tmp_path):
        path = tmp_path / "layout.json"
        path.write_text(json.dumps({"positions": {"0": [0, 0], "1": [30, 0],
                                                  "2": [60, 0]}}))
        spec = TopologySpec.from_file(str(path))
        assert spec.kind == "from-file"
        assert topology_node_count(spec) == 3
        layout = build_layout(spec)
        assert layout.position(2).x == 60.0
        # the file's contents, not its path, are in the spec -> hash-safe
        assert "layout.json" not in repr(spec)

    def test_from_file_list_form(self, tmp_path):
        path = tmp_path / "layout.json"
        path.write_text(json.dumps([[0, 0], [10, 10]]))
        assert topology_node_count(TopologySpec.from_file(str(path))) == 2

    def test_from_file_requires_contiguous_ids(self):
        spec = TopologySpec.of("from-file", positions=((0, 0.0, 0.0),
                                                       (2, 10.0, 0.0)))
        with pytest.raises(ValueError, match="contiguous"):
            build_layout(spec)


class TestPropagationSpec:
    def test_required_kinds_registered(self):
        for kind in ("unit-disc", "log-normal", "distance-prr"):
            assert kind in PROPAGATION

    def test_parse(self):
        spec = PropagationSpec.parse("log-normal:sigma_db=6,path_loss_exp=3")
        assert spec.kind == "log-normal"
        assert spec.kwargs() == {"sigma_db": 6, "path_loss_exp": 3}

    def test_unknown_kind_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown propagation"):
            ScenarioConfig(propagation=PropagationSpec.of("telepathy"))

    def test_bad_params_rejected(self):
        from repro.topology.layout import grid_layout

        with pytest.raises(ValueError, match="bad parameters"):
            build_propagation(
                PropagationSpec.of("unit-disc", sigma_db=1), grid_layout(2, 2)
            )


# ---------------------------------------------------------------------------
# Generated layouts: determinism and connectivity (hypothesis).
# ---------------------------------------------------------------------------


class TestGeneratedLayoutProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 40))
    def test_uniform_random_same_seed_same_positions(self, seed, n):
        a = random_layout(n, 120.0, 90.0, rng_for(seed))
        b = random_layout(n, 120.0, 90.0, rng_for(seed))
        assert [a.position(i) for i in a.node_ids] == [
            b.position(i) for i in b.node_ids
        ]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 40),
           clusters=st.integers(1, 5))
    def test_clustered_same_seed_same_positions(self, seed, n, clusters):
        kwargs = dict(clusters=clusters, sigma_m=15.0)
        a = clustered_layout(n, 100.0, 100.0, rng_for(seed), **kwargs)
        b = clustered_layout(n, 100.0, 100.0, rng_for(seed), **kwargs)
        assert [a.position(i) for i in a.node_ids] == [
            b.position(i) for i in b.node_ids
        ]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 25))
    def test_connect_range_yields_connected_graph(self, seed, n):
        import networkx

        layout = random_layout(
            n, 100.0, 100.0, rng_for(seed), connect_range_m=45.0
        )
        assert networkx.is_connected(layout.graph(45.0))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 25),
           clusters=st.integers(1, 4))
    def test_clustered_connect_range_yields_connected_graph(
        self, seed, n, clusters
    ):
        import networkx

        layout = clustered_layout(
            n, 80.0, 80.0, rng_for(seed), clusters=clusters, sigma_m=10.0,
            connect_range_m=50.0,
        )
        assert networkx.is_connected(layout.graph(50.0))

    def test_impossible_connectivity_fails_loudly(self):
        with pytest.raises(ValueError, match="no connected layout"):
            random_layout(30, 5000.0, 5000.0, rng_for(7), connect_range_m=1.0,
                          max_tries=5)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_spec_build_is_deterministic(self, seed):
        spec = TopologySpec.parse("clustered:n=12,width_m=60,height_m=60")
        a = build_layout(spec, rng_for(seed))
        b = build_layout(spec, rng_for(seed))
        assert [a.position(i) for i in a.node_ids] == [
            b.position(i) for i in b.node_ids
        ]


# ---------------------------------------------------------------------------
# Layout caching (satellite): immutable-derived views are cached tuples.
# ---------------------------------------------------------------------------


class TestLayoutCaching:
    def test_node_ids_cached_tuple(self):
        from repro.topology.layout import grid_layout

        layout = grid_layout(3, 3)
        ids = layout.node_ids
        assert isinstance(ids, tuple)
        assert layout.node_ids is ids  # same object, not a rebuild

    def test_neighbors_within_cached_tuple(self):
        from repro.topology.layout import grid_layout

        layout = grid_layout(3, 3, 40.0)
        first = layout.neighbors_within(4, 40.0)
        assert isinstance(first, tuple)
        assert layout.neighbors_within(4, 40.0) is first
        # a different range is a different cache entry, not a stale hit
        assert set(layout.neighbors_within(4, 60.0)) >= set(first)


# ---------------------------------------------------------------------------
# Propagation models.
# ---------------------------------------------------------------------------


class _FakePort:
    def __init__(self, node_id, range_m):
        self.node_id = node_id
        self.range_m = range_m


class TestPropagationModels:
    def layout(self):
        from repro.topology.layout import line_layout

        return line_layout(5, 30.0)

    def test_unit_disc_matches_geometry(self):
        layout = self.layout()
        model = UnitDiscPropagation(layout)
        port = _FakePort(0, 65.0)
        assert model.link_audible(port, 1)
        assert model.link_audible(port, 2)
        assert not model.link_audible(port, 3)
        assert model.delivery_roll(port, 1) is True

    def test_log_normal_deterministic_and_symmetric(self):
        layout = self.layout()
        a = LogNormalShadowing(layout, rng_for(5, "prop"), sigma_db=6.0)
        b = LogNormalShadowing(layout, rng_for(5, "prop"), sigma_db=6.0)
        for i in range(5):
            for j in range(5):
                if i == j:
                    continue
                assert a._range_factor(i, j) == b._range_factor(i, j)
                assert a._range_factor(i, j) == a._range_factor(j, i)

    def test_log_normal_gains_bounded_by_max_audible(self):
        layout = self.layout()
        model = LogNormalShadowing(layout, rng_for(9, "prop"), sigma_db=8.0)
        port = _FakePort(0, 30.0)
        bound = model.max_audible_m(port)
        for other in range(1, 5):
            if model.link_audible(port, other):
                assert layout.distance(0, other) <= bound + 1e-6

    def test_distance_prr_monotone(self):
        layout = self.layout()
        model = DistancePrr(layout, rng_for(2, "prop"), exponent=3.0)
        port = _FakePort(0, 120.0)
        prrs = [model.prr(port, other) for other in range(1, 5)]
        assert prrs == sorted(prrs, reverse=True)
        assert prrs[0] > 0.9  # 30 m of 120 m range: near-perfect

    def test_distance_prr_floor(self):
        layout = self.layout()
        model = DistancePrr(layout, rng_for(2, "prop"), exponent=1.0,
                            floor=0.25)
        port = _FakePort(0, 121.0)
        assert model.prr(port, 4) >= 0.25


# ---------------------------------------------------------------------------
# Neighbor index vs brute force (the perf refactor must not change answers).
# ---------------------------------------------------------------------------


class TestNeighborIndex:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(2, 30),
           range_m=st.floats(5.0, 150.0))
    def test_matches_brute_force_scan(self, seed, n, range_m):
        from repro.topology.geometry import in_range

        layout = random_layout(n, 100.0, 100.0, rng_for(seed))
        ports = {i: _FakePort(i, range_m) for i in layout.node_ids}
        index = NeighborIndex(layout, ports, UnitDiscPropagation(layout))
        for node in layout.node_ids:
            origin = layout.position(node)
            expected = [
                other
                for other in ports
                if other != node
                and in_range(origin, layout.position(other), range_m)
            ]
            assert list(index.neighbors(node)) == expected
            for other in ports:
                assert index.is_neighbor(node, other) == (other in expected)

    def test_order_follows_registration_not_ids(self):
        from repro.topology.layout import line_layout

        layout = line_layout(4, 10.0)
        # register out of id order: the tuples must follow this order,
        # matching the historical registration-dict scan.
        ports = {2: _FakePort(2, 100.0), 0: _FakePort(0, 100.0),
                 3: _FakePort(3, 100.0), 1: _FakePort(1, 100.0)}
        index = NeighborIndex(layout, ports, UnitDiscPropagation(layout))
        assert index.neighbors(2) == (0, 3, 1)

    def test_medium_neighbors_boundary_inclusive(self, sim):
        from repro.topology.layout import grid_layout

        layout = grid_layout(2, 2, 40.0)  # orthogonal pairs at exactly 40 m
        medium = Medium(sim, layout, "t")
        for node in layout.node_ids:
            LowPowerRadio(sim, node, MICAZ, medium, EnergyMeter(str(node)))
        assert set(medium.neighbors(0)) == {1, 2}
        assert medium.is_neighbor(0, 1) and not medium.is_neighbor(0, 3)


# ---------------------------------------------------------------------------
# Composed scenarios.
# ---------------------------------------------------------------------------


class TestRadioAssignment:
    def test_spec_for_default_and_overrides(self):
        assignment = RadioAssignment(
            default="Cabletron", overrides=((3, "Lucent (11Mbps)"),)
        )
        assert assignment.spec_for(3, MICAZ) == LUCENT_11
        assert assignment.spec_for(0, MICAZ) == CABLETRON

    def test_fallback_without_default(self):
        assignment = RadioAssignment(overrides=((1, "Cabletron"),))
        assert assignment.spec_for(0, LUCENT_11) == LUCENT_11
        assert assignment.spec_for(1, LUCENT_11) == CABLETRON

    def test_parse(self):
        assignment = RadioAssignment.parse("5=Cabletron,1=Mica")
        assert assignment.overrides == ((1, "Mica"), (5, "Cabletron"))

    def test_unknown_radio_rejected_at_config_time(self):
        with pytest.raises(KeyError, match="unknown radio"):
            ScenarioConfig(
                high_radios=RadioAssignment(overrides=((0, "AlienNIC"),))
            )

    def test_sink_only_cabletron_builds_and_meters_per_nic(self):
        config = ScenarioConfig(
            model="dual",
            rows=3,
            cols=3,
            sink=4,
            n_senders=3,
            sim_time_s=20.0,
            burst_packets=10,
            high_radios=RadioAssignment(overrides=((4, "Cabletron"),)),
        )
        sim = Simulator(seed=1)
        built = build_network(config, sim)
        assert built.high_radios[4].spec.name == "Cabletron"
        assert built.high_radios[0].spec.name == LUCENT_11.name
        result = run_scenario(config)
        assert result.delivered_bits >= 0  # runs to completion


class TestTrafficMix:
    def test_sources_follow_the_mix(self):
        config = ScenarioConfig(
            model="sensor",
            rows=3,
            cols=3,
            sink=0,
            n_senders=8,  # every non-sink node sends: ids deterministic
            sim_time_s=5.0,
            traffic="cbr",
            traffic_mix=((1, "poisson"), (2, "audio"), (3, "onoff")),
        )
        built = build_network(config, Simulator(seed=1))
        by_node = {source.node_id: source for source in built.sources}
        assert isinstance(by_node[1], PoissonSource)
        assert isinstance(by_node[2], AudioBurstSource)
        assert isinstance(by_node[3], AudioBurstSource)
        assert isinstance(by_node[4], CbrSource)

    def test_mix_nodes_are_forced_senders(self):
        # 36 nodes, 5 senders: nodes 16 and 33 would rarely be sampled,
        # but naming them in the mix guarantees they send.
        config = ScenarioConfig(
            model="sensor",
            n_senders=5,
            sim_time_s=5.0,
            traffic_mix=((16, "poisson"), (33, "audio")),
        )
        built = build_network(config, Simulator(seed=1))
        sender_ids = {source.node_id for source in built.sources}
        assert {16, 33} <= sender_ids
        assert len(sender_ids) == 5

    def test_unknown_mix_name_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic"):
            ScenarioConfig(traffic_mix=((1, "telepathy"),))

    def test_mix_node_must_exist(self):
        with pytest.raises(ValueError, match="not deployed"):
            ScenarioConfig(rows=2, cols=2, sink=0, n_senders=1,
                           traffic_mix=((9, "cbr"),))

    def test_mix_cannot_name_the_sink(self):
        with pytest.raises(ValueError, match="sink"):
            ScenarioConfig(sink=14, traffic_mix=((14, "poisson"),))

    def test_mix_rejects_duplicates(self):
        with pytest.raises(ValueError, match="more than once"):
            ScenarioConfig(traffic_mix=((1, "poisson"), (1, "audio")))

    def test_mix_cannot_exceed_sender_count(self):
        with pytest.raises(ValueError, match="mix nodes always send"):
            ScenarioConfig(
                n_senders=1, traffic_mix=((1, "poisson"), (2, "audio"))
            )

    def test_registry_covers_paper_sources(self):
        assert {"cbr", "poisson", "audio", "onoff"} <= set(TRAFFIC.names())


class TestComposedDefaultsAreByteIdentical:
    """Spelling the paper's defaults through the axes changes nothing."""

    def test_explicit_grid_spec_reproduces_legacy_grid(self):
        base = ScenarioConfig(
            model="dual", sim_time_s=20.0, burst_packets=10, n_senders=5
        )
        explicit = base.replace(
            topology=TopologySpec.of("grid", rows=6, cols=6, spacing_m=40.0)
        )
        assert run_scenario(explicit) == run_scenario(base)

    def test_homogeneous_assignment_reproduces_legacy_fleet(self):
        base = ScenarioConfig(
            model="dual", sim_time_s=20.0, burst_packets=10, n_senders=5
        )
        assigned = base.replace(
            high_radios=RadioAssignment(default=LUCENT_11.name)
        )
        assert run_scenario(assigned) == run_scenario(base)


class TestRoutingFollowsAudibility:
    def test_heterogeneous_graph_uses_min_range(self):
        from repro.topology.layout import line_layout

        layout = line_layout(3, 100.0)  # 0 -100m- 1 -100m- 2
        graph = layout.graph_for_ranges({0: 250.0, 1: 250.0, 2: 100.0})
        # 0-2 is 200 m: inside 0's range but outside 2's -> no edge
        assert graph.has_edge(0, 1) and graph.has_edge(1, 2)
        assert not graph.has_edge(0, 2)
        # uniform map reduces to the single-range graph
        uniform = layout.graph_for_ranges({n: 100.0 for n in layout.node_ids})
        assert set(uniform.edges) == set(layout.graph(100.0).edges)

    def test_shadowed_routing_only_uses_audible_links(self):
        # Heavy shadowing mutes/extends links; every routed edge must be
        # bidirectionally audible on the medium that carries it.
        config = ScenarioConfig(
            model="sensor",
            topology=TopologySpec.of("grid", rows=3, cols=3),
            propagation=PropagationSpec.of("log-normal", sigma_db=8.0),
            sink=4,
            n_senders=3,
            sim_time_s=5.0,
        )
        sim = Simulator(seed=3)
        built = build_network(config, sim)
        medium = built.mediums[0]
        table = built.agents[0].routing
        for a, b in table.graph.edges:
            assert medium.is_neighbor(a, b) and medium.is_neighbor(b, a)

    def test_unshadowed_routing_unchanged(self):
        # propagation=None keeps the historical nominal-range construction
        base = ScenarioConfig(model="sensor", sim_time_s=5.0, n_senders=3)
        built = build_network(base, Simulator(seed=1))
        table = built.agents[0].routing
        from repro.topology.layout import grid_layout

        expected = grid_layout(6, 6, 40.0).graph(40.0)
        assert set(table.graph.edges) == set(expected.edges)


class TestPartitionedDeployments:
    def test_partitioned_tier_fails_with_diagnosis(self):
        # two clusters 500 m apart: connected at neither tier's range
        spec = TopologySpec.of(
            "from-file",
            positions=((0, 0.0, 0.0), (1, 10.0, 0.0), (2, 500.0, 0.0),
                       (3, 510.0, 0.0)),
        )
        config = ScenarioConfig(
            model="sensor", topology=spec, sink=0, n_senders=3, sim_time_s=5.0
        )
        with pytest.raises(ValueError, match="partitioned"):
            build_network(config, Simulator(seed=1))


class TestComposedScenarioRuns:
    def test_all_topology_propagation_combinations_run(self):
        # Grid/line spacing sits below the 40 m nominal range: shadowed
        # runs keep their links unless a deep fade hits (exact-range
        # links would be muted by ANY negative gain).
        specs = {
            "grid": TopologySpec.of("grid", rows=3, cols=3, spacing_m=30.0),
            "line": TopologySpec.of("line", n=5, spacing_m=30.0),
            "uniform-random": TopologySpec.of(
                "uniform-random", n=9, width_m=80.0, height_m=80.0,
                connect_range_m=40.0,
            ),
            "clustered": TopologySpec.of(
                "clustered", n=9, width_m=80.0, height_m=80.0, clusters=2,
                sigma_m=10.0, connect_range_m=40.0,
            ),
        }
        props = {
            "unit-disc": None,
            "log-normal": PropagationSpec.of("log-normal", sigma_db=2.0),
            "distance-prr": PropagationSpec.of("distance-prr", exponent=6.0),
        }
        for tname, topology in specs.items():
            for pname, propagation in props.items():
                config = ScenarioConfig(
                    model="dual",
                    topology=topology,
                    propagation=propagation,
                    sink=0,
                    n_senders=3,
                    sim_time_s=10.0,
                    burst_packets=10,
                )
                result = run_scenario(config)
                assert result.sim_time_s == 10.0, (tname, pname)

    def test_composed_config_hashes_uniquely(self):
        base = ScenarioConfig(sink=0, n_senders=3, sim_time_s=10.0)
        variants = [
            base,
            base.replace(topology=TopologySpec.of("line", n=37)),
            base.replace(propagation=PropagationSpec.of("log-normal")),
            base.replace(high_radios=RadioAssignment(default="Cabletron")),
            base.replace(traffic_mix=((1, "poisson"),)),
        ]
        keys = {config.cache_key() for config in variants}
        assert len(keys) == len(variants)
