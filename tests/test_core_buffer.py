"""BCP per-next-hop buffering."""

import pytest

from repro.core.buffer import BulkBuffer
from repro.net.packets import DataPacket


def packet(size_bytes=32, src=1, dst=0):
    return DataPacket(src=src, dst=dst, payload_bits=size_bytes * 8, created_s=0.0)


class TestPush:
    def test_accumulates_bytes(self):
        buffer = BulkBuffer()
        for _ in range(3):
            assert buffer.push(5, packet())
        assert buffer.bytes_for(5) == 96
        assert buffer.packets_for(5) == 3
        assert buffer.total_bytes == 96

    def test_separate_queues_per_next_hop(self):
        buffer = BulkBuffer()
        buffer.push(1, packet())
        buffer.push(2, packet())
        buffer.push(2, packet())
        assert buffer.bytes_for(1) == 32
        assert buffer.bytes_for(2) == 64
        assert sorted(buffer.next_hops()) == [1, 2]

    def test_capacity_enforced_nodewide(self):
        buffer = BulkBuffer(capacity_bytes=64)
        assert buffer.push(1, packet())
        assert buffer.push(2, packet())
        assert not buffer.push(1, packet())
        assert buffer.drops == 1
        assert buffer.total_bytes == 64

    def test_peak_tracking(self):
        buffer = BulkBuffer()
        buffer.push(1, packet())
        buffer.push(1, packet())
        buffer.pop_up_to(1, 1000)
        assert buffer.peak_bytes == 64

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BulkBuffer(capacity_bytes=0)


class TestPop:
    def test_pop_respects_budget(self):
        buffer = BulkBuffer()
        for _ in range(5):
            buffer.push(1, packet())
        popped = buffer.pop_up_to(1, 100)  # 3 x 32 = 96 <= 100
        assert len(popped) == 3
        assert buffer.bytes_for(1) == 64

    def test_pop_fifo_order(self):
        buffer = BulkBuffer()
        packets = [packet() for _ in range(4)]
        for item in packets:
            buffer.push(1, item)
        popped = buffer.pop_up_to(1, 1000)
        assert [p.packet_id for p in popped] == [p.packet_id for p in packets]

    def test_pop_never_splits_packets(self):
        buffer = BulkBuffer()
        buffer.push(1, packet(size_bytes=100))
        assert buffer.pop_up_to(1, 99) == []
        assert buffer.bytes_for(1) == 100

    def test_pop_empty_hop(self):
        buffer = BulkBuffer()
        assert buffer.pop_up_to(42, 1000) == []

    def test_pop_frees_capacity(self):
        buffer = BulkBuffer(capacity_bytes=64)
        buffer.push(1, packet())
        buffer.push(1, packet())
        buffer.pop_up_to(1, 32)
        assert buffer.push(1, packet())
        assert buffer.free_bytes == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BulkBuffer().pop_up_to(1, -1)
