"""Store semantics: FIFO order, capacity blocking, settle loops."""

import pytest

from repro.sim import Simulator, Store


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestStoreBasics:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        get = store.get()
        sim.run()
        assert get.value == "item"

    def test_fifo_order(self, sim):
        store = Store(sim)
        for index in range(5):
            store.put(index)
        values = [store.get() for _ in range(5)]
        sim.run()
        assert [get.value for get in values] == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        outcome = []

        def consumer():
            item = yield store.get()
            outcome.append((sim.now, item))

        def producer():
            yield sim.timeout(3)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert outcome == [(3.0, "late")]

    def test_put_blocks_when_full(self, sim):
        store = Store(sim, capacity=1)
        timeline = []

        def producer():
            yield store.put("a")
            timeline.append(("a", sim.now))
            yield store.put("b")
            timeline.append(("b", sim.now))

        def consumer():
            yield sim.timeout(5)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert timeline == [("a", 0.0), ("b", 5.0)]

    def test_len_and_is_full(self, sim):
        store = Store(sim, capacity=2)
        store.put(1)
        store.put(2)
        sim.run()
        assert len(store) == 2
        assert store.is_full

    def test_many_producers_consumers_conserve_items(self, sim):
        store = Store(sim, capacity=3)
        produced, consumed = [], []

        def producer(start, items):
            for index in items:
                yield sim.timeout(0.1)
                yield store.put((start, index))
                produced.append((start, index))

        def consumer():
            while True:
                item = yield store.get()
                consumed.append(item)
                yield sim.timeout(0.05)

        for start in range(3):
            sim.process(producer(start, range(10)))
        sim.process(consumer())
        sim.run(until=100)
        assert sorted(consumed) == sorted(produced)
        assert len(consumed) == 30
