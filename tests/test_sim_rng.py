"""Named deterministic random streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "mac") == derive_seed(1, "mac")

    def test_differs_by_name(self):
        assert derive_seed(1, "mac") != derive_seed(1, "channel")

    def test_differs_by_master(self):
        assert derive_seed(1, "mac") != derive_seed(2, "mac")

    def test_64_bit_range(self):
        seed = derive_seed(123456, "anything")
        assert 0 <= seed < 2**64


class TestRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(7)
        first = r1.stream("a").random()
        r2 = RngRegistry(7)
        r2.stream("b")  # extra stream created first
        second = r2.stream("a").random()
        assert first == second

    def test_contains(self):
        registry = RngRegistry(0)
        assert "x" not in registry
        registry.stream("x")
        assert "x" in registry

    def test_spawn_is_deterministic(self):
        a = RngRegistry(3).spawn("child").stream("s").random()
        b = RngRegistry(3).spawn("child").stream("s").random()
        assert a == b

    def test_spawn_differs_from_parent(self):
        parent = RngRegistry(3)
        child = parent.spawn("child")
        assert parent.stream("s").random() != child.stream("s").random()
