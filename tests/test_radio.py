"""Radio ports: state machines, energy accounting asymmetry, wake/sleep."""

import pytest

from repro.channel.medium import Medium
from repro.energy.meter import EnergyMeter
from repro.energy.radio_specs import LUCENT_11, MICAZ
from repro.mac.frames import Frame, FrameKind
from repro.radio.radio import HighPowerRadio, LowPowerRadio
from repro.radio.states import RadioState
from repro.sim import SimulationError, Simulator
from repro.topology import line_layout


def frame(src, dst, payload_bits=256, header_bits=64):
    return Frame(
        kind=FrameKind.DATA,
        src=src,
        dst=dst,
        payload_bits=payload_bits,
        header_bits=header_bits,
        require_ack=False,
    )


@pytest.fixture
def pair():
    sim = Simulator(seed=4)
    layout = line_layout(2, 40.0)
    return sim, layout


class TestLowPowerRadio:
    def test_always_listening_when_idle(self, pair):
        sim, layout = pair
        medium = Medium(sim, layout, "m")
        radio = LowPowerRadio(sim, 0, MICAZ, medium, EnergyMeter("0"))
        assert radio.is_listening

    def test_not_listening_while_transmitting(self, pair):
        sim, layout = pair
        medium = Medium(sim, layout, "m")
        radio = LowPowerRadio(sim, 0, MICAZ, medium, EnergyMeter("0"))
        LowPowerRadio(sim, 1, MICAZ, medium, EnergyMeter("1"))
        radio.transmit(frame(0, 1, payload_bits=8192))
        states = []

        def probe():
            yield sim.timeout(1e-4)
            states.append(radio.is_listening)

        sim.process(probe())
        sim.run()
        assert states == [False]
        assert radio.is_listening  # back after tx

    def test_tx_energy_charged(self, pair):
        sim, layout = pair
        medium = Medium(sim, layout, "m")
        meter = EnergyMeter("0")
        radio = LowPowerRadio(sim, 0, MICAZ, medium, meter)
        LowPowerRadio(sim, 1, MICAZ, medium, EnergyMeter("1"))
        radio.transmit(frame(0, 1))
        sim.run()
        duration = 320 / MICAZ.rate_bps
        assert meter.by_category()["tx"] == pytest.approx(
            MICAZ.p_tx_w * duration
        )

    def test_no_idle_energy_ever(self, pair):
        """Low radio idling is a base cost, never charged (Section 2.1)."""
        sim, layout = pair
        medium = Medium(sim, layout, "m")
        meter = EnergyMeter("0")
        LowPowerRadio(sim, 0, MICAZ, medium, meter)
        sim.timeout(100.0)
        sim.run()
        assert meter.total() == 0.0

    def test_transmit_while_busy_raises(self, pair):
        sim, layout = pair
        medium = Medium(sim, layout, "m")
        radio = LowPowerRadio(sim, 0, MICAZ, medium, EnergyMeter("0"))
        LowPowerRadio(sim, 1, MICAZ, medium, EnergyMeter("1"))
        radio.transmit(frame(0, 1, payload_bits=8192))
        with pytest.raises(SimulationError, match="busy"):
            radio.transmit(frame(0, 1))


class TestHighPowerRadio:
    def make(self, sim, layout, node=0, meter=None):
        medium = getattr(self, "_medium", None)
        if medium is None or medium.sim is not sim:
            medium = Medium(sim, layout, "m")
            self._medium = medium
        return HighPowerRadio(
            sim, node, LUCENT_11, medium, meter or EnergyMeter(str(node))
        )

    def test_starts_off(self, pair):
        sim, layout = pair
        radio = self.make(sim, layout)
        assert radio.state == RadioState.OFF
        assert not radio.is_listening

    def test_wake_charges_and_takes_latency(self, pair):
        sim, layout = pair
        meter = EnergyMeter("0")
        radio = self.make(sim, layout, meter=meter)
        done = radio.wake()
        sim.run(until=done)
        assert sim.now == pytest.approx(LUCENT_11.t_wakeup_s)
        assert radio.state == RadioState.IDLE
        assert meter.by_category()["wakeup"] == pytest.approx(
            LUCENT_11.e_wakeup_j
        )

    def test_wake_when_on_is_free(self, pair):
        sim, layout = pair
        meter = EnergyMeter("0")
        radio = self.make(sim, layout, meter=meter)
        sim.run(until=radio.wake())
        before = meter.by_category()["wakeup"]
        sim.run(until=radio.wake())
        assert meter.by_category()["wakeup"] == before
        assert radio.wakeup_count == 1

    def test_concurrent_wakes_share_transition(self, pair):
        sim, layout = pair
        radio = self.make(sim, layout)
        first, second = radio.wake(), radio.wake()
        sim.run()
        assert first.processed and second.processed
        assert radio.wakeup_count == 1

    def test_idle_power_integrated(self, pair):
        sim, layout = pair
        meter = EnergyMeter("0")
        radio = self.make(sim, layout, meter=meter)
        sim.run(until=radio.wake())
        sim.timeout(2.0)
        sim.run()
        radio.sleep()
        assert meter.by_category()["idle"] == pytest.approx(
            2.0 * LUCENT_11.p_idle_w
        )

    def test_off_costs_nothing(self, pair):
        sim, layout = pair
        meter = EnergyMeter("0")
        radio = self.make(sim, layout, meter=meter)
        sim.timeout(100.0)
        sim.run()
        radio.flush_accounting()
        assert meter.total() == 0.0

    def test_transmit_requires_on(self, pair):
        sim, layout = pair
        radio = self.make(sim, layout)
        self.make(sim, layout, node=1)
        with pytest.raises(SimulationError, match="cannot transmit"):
            radio.transmit(frame(0, 1))

    def test_tx_power_during_transmission(self, pair):
        sim, layout = pair
        meter = EnergyMeter("0")
        radio = self.make(sim, layout, meter=meter)
        self.make(sim, layout, node=1)
        sim.run(until=radio.wake())
        sent = frame(0, 1, payload_bits=8192, header_bits=272)
        radio.transmit(sent)
        sim.run()
        radio.sleep()
        duration = 8464 / LUCENT_11.rate_bps
        assert meter.by_category()["tx"] == pytest.approx(
            LUCENT_11.p_tx_w * duration
        )

    def test_rx_increment_above_idle(self, pair):
        sim, layout = pair
        meter0, meter1 = EnergyMeter("0"), EnergyMeter("1")
        radio0 = self.make(sim, layout, node=0, meter=meter0)
        radio1 = self.make(sim, layout, node=1, meter=meter1)
        sim.run(until=radio0.wake())
        sim.run(until=radio1.wake())
        radio0.transmit(frame(0, 1))
        sim.run()
        radio1.sleep()
        duration = 320 / LUCENT_11.rate_bps
        expected = (LUCENT_11.p_rx_w - LUCENT_11.p_idle_w) * duration
        assert meter1.by_category()["rx"] == pytest.approx(expected)

    def test_sleep_while_transmitting_raises(self, pair):
        sim, layout = pair
        radio = self.make(sim, layout)
        self.make(sim, layout, node=1)
        sim.run(until=radio.wake())
        radio.transmit(frame(0, 1, payload_bits=80_000))
        errors = []

        def try_sleep():
            yield sim.timeout(1e-4)
            try:
                radio.sleep()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.process(try_sleep())
        sim.run()
        assert errors and "transmitting" in errors[0]

    def test_sleep_mid_wake_fails_waiters(self, pair):
        sim, layout = pair
        radio = self.make(sim, layout)
        waiter = radio.wake()
        radio.sleep()
        with pytest.raises(SimulationError, match="turned off"):
            sim.run(until=waiter)
        assert radio.state == RadioState.OFF

    def test_off_radio_receives_nothing(self, pair):
        sim, layout = pair
        radio0 = self.make(sim, layout, node=0)
        radio1 = self.make(sim, layout, node=1)
        got = []
        radio1.set_receiver(got.append)
        sim.run(until=radio0.wake())
        radio0.transmit(frame(0, 1))
        sim.run()
        assert got == []
