"""Table/series rendering and the figure registry."""

import pytest

from repro.analysis.feasibility import Series
from repro.report import (
    REGISTRY,
    format_value,
    render_matrix,
    render_series,
    render_table,
    series_to_csv,
)
from repro.report import figures


class TestFormatValue:
    def test_inf(self):
        assert format_value(float("inf")) == "inf"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_precision(self):
        assert format_value(0.123456789) == "0.1235"


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["a", "bbb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bbb" in lines[0]
        assert "2.5" in lines[2]

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table\n========")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderMatrix:
    def test_shape(self):
        matrix = {"Sensor": {5: 0.9, 35: 0.5}, "Dual": {5: 0.95}}
        text = render_matrix(matrix, "senders")
        assert "Sensor" in text
        assert "nan" in text  # missing Dual@35 cell


class TestRenderSeries:
    def test_blocks_labelled(self):
        series = [Series("alpha", (1.0, 2.0), (10.0, 20.0))]
        text = render_series(series, "x", "y", title="T")
        assert '# series "alpha"' in text
        assert "# T" in text
        assert "1\t10" in text

    def test_thinning_keeps_endpoints(self):
        xs = tuple(float(i) for i in range(100))
        series = [Series("s", xs, xs)]
        text = render_series(series, "x", "y", max_points=10)
        assert "\n0\t0" in text
        assert "99\t99" in text
        data_lines = [l for l in text.splitlines() if "\t" in l]
        assert len(data_lines) <= 12

    def test_csv_long_format(self):
        csv = series_to_csv([Series("s", (1.0,), (2.0,))])
        assert csv == "label,x,y\ns,1,2\n"


class TestRegistry:
    def test_all_artifacts_present(self):
        expected = {"table1"} | {f"fig{i}" for i in range(1, 13)}
        assert set(REGISTRY) == expected

    def test_table1_contains_all_radios(self):
        text = figures.table1()
        for name in ("Cabletron", "Lucent", "Mica", "Micaz"):
            assert name in text

    def test_analysis_figures_render(self):
        for name in ("fig1", "fig2", "fig3", "fig4"):
            text = REGISTRY[name]()
            assert "# series" in text

    def test_fig1_reports_breakeven_points(self):
        text = figures.fig1()
        assert "break-even points" in text
        assert "infeasible" in text

    def test_fig4_reports_knees(self):
        assert "rule-of-thumb knees" in figures.fig4()
