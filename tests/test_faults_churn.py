"""Node churn end to end: epoch repair, power-down, lifetime metrics.

The heart of the fault subsystem is the claim that killing and reviving
a node leaves *no residue*: a retire → restore round trip must put the
neighbor index, the audibility groups, and the medium's busy refcounts
back into exactly the state a fresh build computes.  A hypothesis
property pins that, and scenario-level tests drive scripted deaths,
revivals, random churn, and battery depletion through every model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.medium import Medium
from repro.energy.meter import MeterBank
from repro.energy.radio_specs import MICAZ
from repro.faults import FaultPlan
from repro.mac.frames import Frame, FrameKind
from repro.models.scenario import ScenarioConfig, run_scenario
from repro.radio.radio import LowPowerRadio
from repro.sim import Simulator
from repro.topology import line_layout
from repro.topology.layout import Layout, Position


def data_frame(src, dst, payload_bits=256, header_bits=64):
    return Frame(
        kind=FrameKind.DATA,
        src=src,
        dst=dst,
        payload_bits=payload_bits,
        header_bits=header_bits,
        require_ack=False,
    )


def build_fleet(layout, seed=1):
    sim = Simulator(seed=seed)
    medium = Medium(sim, layout, "test")
    bank = MeterBank(len(layout))
    radios = [
        LowPowerRadio(sim, i, MICAZ, medium, bank.meter(i))
        for i in range(len(layout))
    ]
    return sim, medium, radios


def index_state(index):
    """Every structure the epoch repair touches, as comparable values."""
    return (
        dict(index._neighbors),
        dict(index._neighbor_ranks),
        dict(index._members),
        dict(index._busy_groups),
        list(index.group_of_rank),
        index.n_groups,
        set(index.retired),
        set(index._links_down),
    )


@st.composite
def churn_case(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    positions = draw(
        st.lists(
            st.tuples(
                st.floats(0.0, 120.0, allow_nan=False),
                st.floats(0.0, 120.0, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        )
    )
    victims = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1,
            max_size=n,
            unique=True,
        )
    )
    links = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda ab: ab[0] != ab[1]),
            max_size=3,
            unique_by=lambda ab: (min(ab), max(ab)),
        )
    )
    return positions, victims, links


class TestRetireRestoreRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(churn_case())
    def test_round_trip_matches_fresh_build(self, case):
        positions, victims, links = case
        layout = Layout(
            {i: Position(x, y) for i, (x, y) in enumerate(positions)}
        )
        _sim, medium, _radios = build_fleet(layout)
        fresh = medium._build_index()

        # Kill every victim and down every link, then undo it all —
        # interleaved, so intermediate epochs see mixed state.
        for node in victims:
            medium.retire_node(node)
        for a, b in links:
            medium.set_link(a, b, up=False)
        for a, b in links:
            medium.set_link(a, b, up=True)
        for node in victims:
            medium.restore_node(node)

        repaired = medium._build_index()
        assert index_state(repaired) == index_state(fresh)
        assert medium._busy == [0] * repaired.n_groups
        assert medium.topology_epoch == 2 * (len(victims) + len(links))

    def test_retired_node_excluded_from_neighbor_queries(self):
        layout = line_layout(4, 40.0)
        _sim, medium, _radios = build_fleet(layout)
        assert 1 in medium.neighbors(0)
        medium.retire_node(1)
        assert 1 not in medium.neighbors(0)
        assert medium.neighbors(1) == ()
        medium.restore_node(1)
        assert 1 in medium.neighbors(0)

    def test_retire_aborts_in_flight_frame(self):
        layout = line_layout(3, 40.0)
        sim, medium, radios = build_fleet(layout)
        received = []
        radios[1].set_receiver(received.append)
        radios[0].transmit(data_frame(0, 1, payload_bits=8192))

        def killer():
            yield sim.timeout(0.001)  # mid-frame
            radios[0].power_down()
            medium.retire_node(0)

        sim.process(killer())
        sim.run()
        assert received == []  # the aborted frame never lands
        assert all(count == 0 for count in medium._busy)


class TestScriptedScenarioChurn:
    def test_scripted_death_reports_finite_first_death(self):
        plan = FaultPlan(crashes=((10.0, 3), (20.0, 7)))
        for model in ("sensor", "wifi", "dual"):
            config = ScenarioConfig(
                model=model,
                sim_time_s=40.0,
                burst_packets=10,
                faults=plan,
            )
            result = run_scenario(config)
            counters = result.counters
            assert counters["faults.first_death_s"] == 10.0
            assert counters["faults.first_death_node"] == 3.0
            assert counters["faults.deaths"] == 2.0
            assert counters["faults.currently_dead"] == 2.0
            assert counters["faults.epochs"] == 2.0

    def test_recovery_restores_relay_and_counts(self):
        plan = FaultPlan(crashes=((10.0, 3),), recoveries=((20.0, 3),))
        config = ScenarioConfig(
            model="dual", sim_time_s=40.0, burst_packets=10, faults=plan
        )
        result = run_scenario(config)
        assert result.counters["faults.recoveries"] == 1.0
        assert result.counters["faults.currently_dead"] == 0.0
        assert result.delivered_bits > 0

    def test_dead_sink_partitions_and_drops_are_counted(self):
        plan = FaultPlan(crashes=((10.0, 14),), protect_sink=False)
        config = ScenarioConfig(
            model="dual", sim_time_s=30.0, burst_packets=10, faults=plan
        )
        result = run_scenario(config)
        assert result.counters["faults.partitioned_epochs"] >= 1.0
        assert result.counters["faults.unroutable_drops"] > 0

    def test_random_churn_is_seed_deterministic(self):
        plan = FaultPlan(crash_rate_per_node_s=0.002, mean_downtime_s=20.0)
        config = ScenarioConfig(model="sensor", sim_time_s=60.0, faults=plan)
        first = run_scenario(config)
        second = run_scenario(config)
        assert first.counters == second.counters
        assert first.counters["faults.deaths"] > 0

    def test_churn_across_schedulers_and_mac_engines(self):
        # Fault machinery rides on the kernel's cancel/timer paths, which
        # differ by agenda backend and MAC engine — a faulted run must
        # complete (and agree with itself) on the whole grid.
        plan = FaultPlan(crashes=((5.0, 2), (9.0, 8)), recoveries=((15.0, 2),))
        results = {}
        for scheduler in ("heap", "calendar"):
            for engine in ("flat", "generator"):
                config = ScenarioConfig(
                    model="dual",
                    sim_time_s=25.0,
                    burst_packets=10,
                    scheduler=scheduler,
                    mac_engine=engine,
                    faults=plan,
                )
                result = run_scenario(config)
                results[(scheduler, engine)] = result.counters["faults.deaths"]
        assert set(results.values()) == {2.0}


class TestBatteryDepletion:
    def test_fleet_batteries_produce_battery_deaths(self):
        plan = FaultPlan(battery_capacity_j=40.0, battery_poll_s=5.0)
        config = ScenarioConfig(model="wifi", sim_time_s=120.0, faults=plan)
        result = run_scenario(config)
        counters = result.counters
        assert counters["faults.battery_deaths"] > 0
        assert counters["faults.first_death_s"] > 0
        assert (
            counters["faults.deaths"] == counters["faults.battery_deaths"]
        )

    def test_sink_protected_by_default(self):
        plan = FaultPlan(battery_capacity_j=40.0, battery_poll_s=5.0)
        config = ScenarioConfig(model="wifi", sim_time_s=120.0, faults=plan)
        result = run_scenario(config)
        # Every non-sink node can die, but the sink never does.
        assert result.counters["faults.deaths"] <= config.n_nodes - 1

    def test_battery_override_kills_only_listed_node(self):
        plan = FaultPlan(battery_overrides=((5, 1.0),), battery_poll_s=2.0)
        config = ScenarioConfig(model="wifi", sim_time_s=60.0, faults=plan)
        result = run_scenario(config)
        assert result.counters["faults.deaths"] == 1.0
        assert result.counters["faults.first_death_node"] == 5.0


class TestPowerDownAccounting:
    def test_power_down_drops_counted_not_crashed(self):
        # Kill a busy relay mid-run on every engine: queued frames must
        # resolve as counted drops, and the run must complete.
        for engine in ("flat", "generator"):
            plan = FaultPlan(crashes=((6.0, 2), (6.0, 8), (7.0, 13)))
            config = ScenarioConfig(
                model="dual",
                sim_time_s=20.0,
                burst_packets=10,
                mac_engine=engine,
                faults=plan,
            )
            result = run_scenario(config)
            assert result.counters["faults.deaths"] == 3.0
            assert result.counters["faults.power_down_drops"] >= 0.0
