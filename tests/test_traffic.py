"""Traffic generators: rates, jitter, stop times, accounting."""

import pytest

from repro.sim import Simulator
from repro.traffic import AudioBurstSource, CbrSource, PoissonSource


@pytest.fixture
def sim():
    return Simulator(seed=21)


class TestCbr:
    def test_rate_achieved(self, sim):
        packets = []
        CbrSource(sim, 1, 0, packets.append, rate_bps=200.0, payload_bytes=32)
        sim.run(until=1280.0)  # 1000 intervals of 1.28 s
        assert 995 <= len(packets) <= 1001

    def test_interval_from_rate(self, sim):
        source = CbrSource(sim, 1, 0, lambda p: None, rate_bps=2000.0)
        assert source.interval_s == pytest.approx(256 / 2000.0)

    def test_packets_well_formed(self, sim):
        packets = []
        CbrSource(sim, 3, 0, packets.append, rate_bps=200.0)
        sim.run(until=10.0)
        for packet in packets:
            assert packet.src == 3
            assert packet.dst == 0
            assert packet.payload_bits == 256
            assert packet.created_s <= sim.now

    def test_stop_time_respected(self, sim):
        packets = []
        CbrSource(sim, 1, 0, packets.append, rate_bps=2000.0, stop_s=5.0)
        sim.run(until=100.0)
        assert all(packet.created_s < 5.0 + 0.129 for packet in packets)
        count_at_stop = len(packets)
        sim.run()
        assert len(packets) == count_at_stop

    def test_stats_track_generation(self, sim):
        source = CbrSource(sim, 1, 0, lambda p: None, rate_bps=200.0)
        sim.run(until=12.8)
        assert source.stats.packets_generated >= 9
        assert source.stats.bits_generated == (
            source.stats.packets_generated * 256
        )

    def test_start_jitter_desynchronizes(self):
        def first_emission(node_id):
            sim = Simulator(seed=50)
            packets = []
            CbrSource(sim, node_id, 0, packets.append, rate_bps=200.0)
            sim.run(until=3.0)
            return packets[0].created_s

        assert first_emission(1) != first_emission(2)

    def test_invalid_rate(self, sim):
        with pytest.raises(ValueError):
            CbrSource(sim, 1, 0, lambda p: None, rate_bps=0.0)


class TestPoisson:
    def test_mean_rate(self, sim):
        packets = []
        PoissonSource(sim, 1, 0, packets.append, mean_rate_bps=2000.0)
        sim.run(until=1000.0)
        # Expected ~7812 packets; allow 5% tolerance.
        assert 7400 <= len(packets) <= 8200

    def test_interarrivals_vary(self, sim):
        packets = []
        PoissonSource(sim, 1, 0, packets.append, mean_rate_bps=2000.0)
        sim.run(until=50.0)
        gaps = {
            round(b.created_s - a.created_s, 6)
            for a, b in zip(packets, packets[1:])
        }
        assert len(gaps) > 10

    def test_invalid_rate(self, sim):
        with pytest.raises(ValueError):
            PoissonSource(sim, 1, 0, lambda p: None, mean_rate_bps=-1.0)


class TestAudioBurst:
    def test_bursts_are_dense(self, sim):
        packets = []
        AudioBurstSource(
            sim,
            1,
            0,
            packets.append,
            burst_rate_bps=64_000.0,
            burst_duration_s=1.0,
            mean_silence_s=30.0,
        )
        sim.run(until=300.0)
        assert len(packets) > 500  # several bursts of ~250 packets each

    def test_silence_between_bursts(self, sim):
        packets = []
        AudioBurstSource(
            sim,
            1,
            0,
            packets.append,
            burst_rate_bps=64_000.0,
            burst_duration_s=0.5,
            mean_silence_s=60.0,
        )
        sim.run(until=600.0)
        gaps = [
            b.created_s - a.created_s for a, b in zip(packets, packets[1:])
        ]
        assert max(gaps) > 5.0  # real silence exists
        assert min(gaps) < 0.01  # burst density exists

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            AudioBurstSource(sim, 1, 0, lambda p: None, burst_rate_bps=0.0)
