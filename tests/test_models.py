"""The three evaluation models and the scenario harness (integration)."""

import pytest

from repro.models import (
    MODEL_DUAL,
    MODEL_SENSOR,
    MODEL_WIFI,
    ScenarioConfig,
    multi_hop_config,
    run_replicated,
    run_scenario,
    select_senders,
    single_hop_config,
)
from repro.sim import Simulator
from repro.stats.metrics import (
    ENERGY_SENSOR_HEADER,
    ENERGY_SENSOR_IDEAL,
    ENERGY_TOTAL,
)


def quick(model, **overrides):
    defaults = dict(
        model=model,
        rows=2,
        cols=3,
        sink=0,
        n_senders=3,
        rate_bps=2000.0,
        sim_time_s=40.0,
        burst_packets=10,
        seed=7,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestConfigValidation:
    def test_unknown_model(self):
        with pytest.raises(ValueError):
            ScenarioConfig(model="quantum")

    def test_sender_count_bounds(self):
        with pytest.raises(ValueError):
            ScenarioConfig(n_senders=36)
        with pytest.raises(ValueError):
            ScenarioConfig(n_senders=0)

    def test_sink_must_be_in_grid(self):
        with pytest.raises(ValueError):
            ScenarioConfig(sink=99)

    def test_unknown_traffic(self):
        with pytest.raises(ValueError):
            ScenarioConfig(traffic="video")

    def test_sh_preset_matches_paper(self):
        config = single_hop_config()
        assert config.high_spec.name == "Lucent (11Mbps)"
        assert not config.multihop

    def test_mh_preset_matches_paper(self):
        config = multi_hop_config()
        assert config.high_spec.name == "Cabletron"
        assert config.multihop
        assert config.rate_bps == 2000.0

    def test_effective_high_spec_native_range_covers_grid(self):
        """With the center sink, Cabletron's own 250 m range reaches every
        node (max distance 170 m) — no override needed."""
        config = multi_hop_config()
        assert config.effective_high_spec().range_m == 250.0
        from repro.topology import grid_layout

        layout = grid_layout(config.rows, config.cols, config.spacing_m)
        max_distance = max(
            layout.distance(config.sink, node)
            for node in layout.node_ids
            if node != config.sink
        )
        assert max_distance <= 250.0

    def test_effective_high_spec_override(self):
        config = multi_hop_config(multihop_range_m=290.0)
        assert config.effective_high_spec().range_m == 290.0

    def test_paper_grid_default(self):
        config = ScenarioConfig()
        assert config.n_nodes == 36
        assert config.spacing_m == 40.0
        assert config.buffer_packets == 5000


class TestSenderSelection:
    def test_all_but_sink_when_max(self):
        config = ScenarioConfig(n_senders=35)
        senders = select_senders(config, Simulator(seed=1))
        assert len(senders) == 35
        assert config.sink not in senders

    def test_sample_is_seeded(self):
        config = ScenarioConfig(n_senders=10)
        a = select_senders(config, Simulator(seed=5))
        b = select_senders(config, Simulator(seed=5))
        c = select_senders(config, Simulator(seed=6))
        assert a == b
        assert a != c

    def test_sink_never_sends(self):
        config = ScenarioConfig(n_senders=20, sink=7)
        for seed in range(5):
            assert 7 not in select_senders(config, Simulator(seed=seed))


class TestSensorModel:
    def test_delivers_traffic(self):
        result = run_scenario(quick(MODEL_SENSOR))
        assert result.goodput > 0.9
        assert result.mean_delay_s < 1.0

    def test_header_accounting_exceeds_ideal(self):
        result = run_scenario(quick(MODEL_SENSOR))
        assert (
            result.energy_j[ENERGY_SENSOR_HEADER]
            > result.energy_j[ENERGY_SENSOR_IDEAL]
        )
        assert result.energy_j[ENERGY_TOTAL] == result.energy_j[
            ENERGY_SENSOR_IDEAL
        ]

    def test_no_high_radio_energy(self):
        result = run_scenario(quick(MODEL_SENSOR))
        assert result.energy_j["high_radio"] == 0.0


class TestWifiModel:
    def test_delivers_traffic_fast(self):
        result = run_scenario(quick(MODEL_WIFI))
        assert result.goodput > 0.9
        assert result.mean_delay_s < 0.1

    def test_energy_dominated_by_idle(self):
        """The reason the paper excludes it from energy plots."""
        wifi = run_scenario(quick(MODEL_WIFI))
        sensor = run_scenario(quick(MODEL_SENSOR))
        assert (
            wifi.energy_j[ENERGY_TOTAL] > 50 * sensor.energy_j[ENERGY_TOTAL]
        )


class TestDualModel:
    def test_delivers_traffic(self):
        result = run_scenario(quick(MODEL_DUAL))
        assert result.goodput > 0.9

    def test_delay_reflects_buffering(self):
        small = run_scenario(quick(MODEL_DUAL, burst_packets=10))
        large = run_scenario(quick(MODEL_DUAL, burst_packets=100,
                                   sim_time_s=120.0))
        assert large.mean_delay_s > small.mean_delay_s

    def test_energy_sums_low_ideal_plus_high_full(self):
        result = run_scenario(quick(MODEL_DUAL))
        assert result.energy_j[ENERGY_TOTAL] == pytest.approx(
            result.energy_j["low_radio"] + result.energy_j["high_radio"]
        )

    def test_counters_present(self):
        result = run_scenario(quick(MODEL_DUAL))
        assert result.counters["bcp.wakeups"] > 0
        assert result.counters["bcp.bursts"] > 0

    def test_multihop_uses_one_high_hop(self):
        config = quick(MODEL_DUAL, multihop=True, multihop_range_m=290.0)
        result = run_scenario(config)
        assert result.goodput > 0.9
        # With direct sink reach, no intermediate re-buffering: exactly one
        # wakeup per burst from each sender and no forwarding hops.
        assert result.counters["bcp.wakeups"] >= 1


class TestReplication:
    def test_seeds_vary_but_reproduce(self):
        config = quick(MODEL_SENSOR, sim_time_s=20.0)
        results, summary = run_replicated(config, n_runs=3)
        assert len(results) == 3
        again, _ = run_replicated(config, n_runs=3)
        for first, second in zip(results, again):
            assert first.delivered_bits == second.delivered_bits
            assert first.energy_j == second.energy_j

    def test_needs_at_least_one_run(self):
        with pytest.raises(ValueError):
            run_replicated(quick(MODEL_SENSOR), n_runs=0)

    def test_summary_shape(self):
        _, summary = run_replicated(
            quick(MODEL_SENSOR, sim_time_s=20.0), n_runs=2
        )
        assert 0 <= summary.goodput.mean <= 1
        assert summary.n_runs == 2


class TestTrafficVariants:
    def test_poisson_traffic_runs(self):
        result = run_scenario(quick(MODEL_SENSOR, traffic="poisson"))
        assert result.goodput > 0.8

    def test_audio_traffic_runs(self):
        result = run_scenario(
            quick(MODEL_DUAL, traffic="audio", burst_packets=50,
                  sim_time_s=120.0)
        )
        assert result.generated_bits > 0
