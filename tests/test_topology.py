"""Layouts, geometry and connectivity graphs."""

import pytest

from repro.sim import Simulator
from repro.topology import (
    Layout,
    Position,
    grid_layout,
    in_range,
    line_layout,
    random_layout,
)


class TestGeometry:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_in_range_inclusive_at_boundary(self):
        assert in_range(Position(0, 0), Position(40, 0), 40.0)

    def test_out_of_range(self):
        assert not in_range(Position(0, 0), Position(40.1, 0), 40.0)


class TestGridLayout:
    def test_paper_grid_dimensions(self):
        """Section 4.1: 36 nodes covering 200x200 m."""
        grid = grid_layout(6, 6, 40.0)
        assert len(grid) == 36
        xs = [grid.position(n).x for n in grid.node_ids]
        ys = [grid.position(n).y for n in grid.node_ids]
        assert min(xs) == 0.0 and max(xs) == 200.0
        assert min(ys) == 0.0 and max(ys) == 200.0

    def test_row_major_ids(self):
        grid = grid_layout(2, 3, 10.0)
        assert grid.position(0) == Position(0.0, 0.0)
        assert grid.position(2) == Position(20.0, 0.0)
        assert grid.position(3) == Position(0.0, 10.0)

    def test_neighbors_at_sensor_range(self):
        grid = grid_layout(3, 3, 40.0)
        center = 4
        neighbors = sorted(grid.neighbors_within(center, 40.0))
        assert neighbors == [1, 3, 5, 7]  # orthogonal only; diagonal is 56m

    def test_connectivity_graph_connected_at_40m(self):
        import networkx

        grid = grid_layout(6, 6, 40.0)
        graph = grid.graph(40.0)
        assert networkx.is_connected(graph)

    def test_graph_disconnected_below_spacing(self):
        import networkx

        grid = grid_layout(3, 3, 40.0)
        graph = grid.graph(30.0)
        assert not networkx.is_connected(graph)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            grid_layout(0, 3)


class TestLineLayout:
    def test_section22_line(self):
        """Source and destination 200 m apart: 5 sensor hops."""
        line = line_layout(6, 40.0)
        assert line.distance(0, 5) == pytest.approx(200.0)
        graph = line.graph(40.0)
        import networkx

        assert networkx.shortest_path_length(graph, 0, 5) == 5

    def test_one_cabletron_hop(self):
        line = line_layout(6, 40.0)
        graph = line.graph(250.0)
        assert graph.has_edge(0, 5)

    def test_minimum_two_nodes(self):
        with pytest.raises(ValueError):
            line_layout(1)


class TestRandomLayout:
    def test_bounds_respected(self):
        sim = Simulator(seed=9)
        layout = random_layout(50, 100.0, 60.0, sim.rng.stream("layout"))
        for node in layout.node_ids:
            position = layout.position(node)
            assert 0.0 <= position.x <= 100.0
            assert 0.0 <= position.y <= 60.0

    def test_deterministic_given_stream(self):
        a = random_layout(10, 50, 50, Simulator(seed=5).rng.stream("layout"))
        b = random_layout(10, 50, 50, Simulator(seed=5).rng.stream("layout"))
        assert all(a.position(n) == b.position(n) for n in a.node_ids)

    def test_needs_nodes(self):
        with pytest.raises(ValueError):
            random_layout(0, 10, 10, Simulator(seed=1).rng.stream("x"))


class TestLayoutValidation:
    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError):
            Layout({})

    def test_contains(self):
        grid = grid_layout(2, 2)
        assert 0 in grid
        assert 99 not in grid
