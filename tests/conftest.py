"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.channel.medium import Medium
from repro.energy.meter import EnergyMeter
from repro.energy.radio_specs import LUCENT_11, MICAZ
from repro.mac.csma import SensorCsmaMac
from repro.mac.dcf import DcfMac
from repro.radio.radio import HighPowerRadio, LowPowerRadio
from repro.sim.simulator import Simulator
from repro.topology.layout import grid_layout, line_layout


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=12345)


@pytest.fixture
def small_grid():
    """A 2×2 grid with 40 m spacing (orthogonal neighbors connected)."""
    return grid_layout(2, 2, 40.0)


@pytest.fixture
def three_line():
    """Three nodes in a line, 40 m apart (0-1-2; 0 and 2 out of range)."""
    return line_layout(3, 40.0)


class LowStack:
    """A complete low-power stack (radios + MACs) over one medium."""

    def __init__(self, sim: Simulator, layout, spec=MICAZ, loss=None):
        self.sim = sim
        self.layout = layout
        self.medium = Medium(sim, layout, name="low", loss=loss)
        self.meters = {n: EnergyMeter(f"node{n}") for n in layout.node_ids}
        self.radios = {
            n: LowPowerRadio(sim, n, spec, self.medium, self.meters[n])
            for n in layout.node_ids
        }
        self.macs = {n: SensorCsmaMac(sim, self.radios[n]) for n in layout.node_ids}


class HighStack:
    """A complete high-power stack (radios + MACs) over one medium."""

    def __init__(self, sim: Simulator, layout, spec=LUCENT_11, loss=None):
        self.sim = sim
        self.layout = layout
        self.medium = Medium(sim, layout, name="high", loss=loss)
        self.meters = {n: EnergyMeter(f"node{n}") for n in layout.node_ids}
        self.radios = {
            n: HighPowerRadio(sim, n, spec, self.medium, self.meters[n])
            for n in layout.node_ids
        }
        self.macs = {n: DcfMac(sim, self.radios[n]) for n in layout.node_ids}


@pytest.fixture
def low_stack(sim, three_line) -> LowStack:
    """Low-power stack on the three-node line."""
    return LowStack(sim, three_line)


@pytest.fixture
def high_stack(sim, three_line) -> HighStack:
    """High-power stack on the three-node line."""
    return HighStack(sim, three_line)
