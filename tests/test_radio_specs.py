"""Table 1 radio characteristics and derived quantities."""

import pytest

from repro.energy.radio_specs import (
    CABLETRON,
    HIGH_POWER_RADIOS,
    LOW_POWER_RADIOS,
    LUCENT_2,
    LUCENT_11,
    MICA,
    MICA2,
    MICAZ,
    TABLE_1,
    RadioSpec,
    get_spec,
)


class TestTable1Values:
    """The constants must match the paper's Table 1 exactly."""

    def test_cabletron(self):
        assert CABLETRON.rate_bps == 2e6
        assert CABLETRON.p_tx_w == pytest.approx(1.400)
        assert CABLETRON.p_rx_w == pytest.approx(1.000)
        assert CABLETRON.p_idle_w == pytest.approx(0.830)
        assert CABLETRON.e_wakeup_j == pytest.approx(1.328e-3)

    def test_lucent_2(self):
        assert LUCENT_2.rate_bps == 2e6
        assert LUCENT_2.p_tx_w == pytest.approx(1.3272)
        assert LUCENT_2.p_rx_w == pytest.approx(0.9669)
        assert LUCENT_2.p_idle_w == pytest.approx(0.8437)
        assert LUCENT_2.e_wakeup_j == pytest.approx(0.6e-3)

    def test_lucent_11(self):
        assert LUCENT_11.rate_bps == 11e6
        assert LUCENT_11.p_tx_w == pytest.approx(1.3461)
        assert LUCENT_11.p_rx_w == pytest.approx(0.9006)
        assert LUCENT_11.p_idle_w == pytest.approx(0.7394)

    def test_mica(self):
        assert MICA.rate_bps == 40e3
        assert MICA.p_tx_w == pytest.approx(0.081)
        assert MICA.p_rx_w == pytest.approx(0.030)
        assert MICA.p_idle_w == pytest.approx(0.030)

    def test_mica2(self):
        assert MICA2.rate_bps == 38.4e3
        assert MICA2.p_tx_w == pytest.approx(0.042)
        assert MICA2.p_rx_w == pytest.approx(0.029)

    def test_micaz(self):
        assert MICAZ.rate_bps == 250e3
        assert MICAZ.p_tx_w == pytest.approx(0.051)
        assert MICAZ.p_rx_w == pytest.approx(0.0591)

    def test_sensor_radios_have_no_wakeup_cost(self):
        for spec in LOW_POWER_RADIOS:
            assert spec.e_wakeup_j == 0.0

    def test_table_has_six_radios(self):
        assert len(TABLE_1) == 6

    def test_kinds(self):
        assert all(spec.kind == "high" for spec in HIGH_POWER_RADIOS)
        assert all(spec.kind == "low" for spec in LOW_POWER_RADIOS)


class TestRangesSection22:
    def test_2mbps_radios_reach_250m(self):
        assert CABLETRON.range_m == 250.0
        assert LUCENT_2.range_m == 250.0

    def test_lucent11_has_sensor_range(self):
        assert LUCENT_11.range_m == MICAZ.range_m == 40.0


class TestDerived:
    def test_packet_sizes_match_section41(self):
        assert MICAZ.payload_bytes == 32
        assert LUCENT_11.payload_bytes == 1024

    def test_packet_bits(self):
        assert MICAZ.packet_bits == (32 + 8) * 8

    def test_link_power(self):
        assert MICAZ.link_power_w == pytest.approx(0.051 + 0.0591)

    def test_airtime(self):
        assert MICAZ.airtime(250e3) == pytest.approx(1.0)

    def test_packet_airtime_includes_header(self):
        expected = (32 + 8) * 8 / 250e3
        assert MICAZ.packet_airtime() == pytest.approx(expected)

    def test_energy_per_payload_bit_micaz_beats_2mbps_cards(self):
        """The Fig. 1 infeasibility: Micaz per-bit beats Cabletron/Lucent-2."""
        assert MICAZ.energy_per_payload_bit() < CABLETRON.energy_per_payload_bit()
        assert MICAZ.energy_per_payload_bit() < LUCENT_2.energy_per_payload_bit()

    def test_lucent11_beats_micaz_per_bit(self):
        assert LUCENT_11.energy_per_payload_bit() < MICAZ.energy_per_payload_bit()

    def test_replace_creates_modified_copy(self):
        longer = CABLETRON.replace(range_m=290.0)
        assert longer.range_m == 290.0
        assert CABLETRON.range_m == 250.0
        assert longer.p_tx_w == CABLETRON.p_tx_w


class TestValidationAndLookup:
    def test_get_spec_case_insensitive(self):
        assert get_spec("micaz") is MICAZ
        assert get_spec("Lucent (11Mbps)") is LUCENT_11

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown radio"):
            get_spec("WiMax")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            RadioSpec(name="x", kind="medium", rate_bps=1.0,
                      p_tx_w=1, p_rx_w=1, p_idle_w=1)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            RadioSpec(name="x", kind="low", rate_bps=1.0,
                      p_tx_w=-1, p_rx_w=1, p_idle_w=1)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            RadioSpec(name="x", kind="low", rate_bps=0.0,
                      p_tx_w=1, p_rx_w=1, p_idle_w=1)
