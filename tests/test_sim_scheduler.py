"""Scheduler protocol conformance, cancellation, and the timeout free-list."""

import pytest

from repro.sim import (
    NORMAL,
    URGENT,
    CalendarScheduler,
    HeapScheduler,
    Simulator,
    build_scheduler,
)
from repro.sim.scheduler import SCHEDULER_MODES, SCHEDULERS


class _FakeEvent:
    """A stand-in payload: schedulers must treat events as opaque."""

    def __init__(self, label):
        self.label = label

    def __repr__(self):
        return f"<fake {self.label}>"


@pytest.fixture(params=["heap", "calendar"])
def scheduler(request):
    return SCHEDULERS[request.param]()


class TestProtocolConformance:
    """Both backends must present the exact same ordering semantics."""

    def test_pop_orders_by_time(self, scheduler):
        for when in (5.0, 1.0, 3.0):
            scheduler.push(when, NORMAL, _FakeEvent(when))
        assert [scheduler.pop()[0] for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_fifo_within_time_and_priority(self, scheduler):
        events = [_FakeEvent(index) for index in range(4)]
        for event in events:
            scheduler.push(2.0, NORMAL, event)
        assert [scheduler.pop()[1] for _ in range(4)] == events

    def test_urgent_pops_before_normal_at_same_time(self, scheduler):
        normal = _FakeEvent("normal")
        urgent = _FakeEvent("urgent")
        # The urgent entry arrives AFTER the normal one: priority must
        # still beat insertion order, exactly as heap (time, prio, seq)
        # tuples order it.
        scheduler.push(1.0, NORMAL, normal)
        scheduler.push(1.0, URGENT, urgent)
        assert scheduler.pop()[1] is urgent
        assert scheduler.pop()[1] is normal

    def test_earlier_time_beats_priority(self, scheduler):
        late_urgent = _FakeEvent("late")
        early_normal = _FakeEvent("early")
        scheduler.push(2.0, URGENT, late_urgent)
        scheduler.push(1.0, NORMAL, early_normal)
        assert scheduler.pop()[1] is early_normal

    def test_pop_empty_raises_indexerror(self, scheduler):
        with pytest.raises(IndexError):
            scheduler.pop()

    def test_peek_empty_is_infinity(self, scheduler):
        assert scheduler.peek() == float("inf")

    def test_peek_reports_next_time_without_consuming(self, scheduler):
        scheduler.push(4.0, NORMAL, _FakeEvent("a"))
        assert scheduler.peek() == 4.0
        assert len(scheduler) == 1

    def test_len_counts_entries(self, scheduler):
        for index in range(5):
            scheduler.push(float(index % 2), NORMAL, _FakeEvent(index))
        assert len(scheduler) == 5
        scheduler.pop()
        assert len(scheduler) == 4

    def test_interleaved_push_pop(self, scheduler):
        scheduler.push(1.0, NORMAL, _FakeEvent("a"))
        assert scheduler.pop()[1].label == "a"
        # A push at the just-drained time must still be retrievable
        # (calendar buckets are retired and recreated exactly here).
        scheduler.push(1.0, NORMAL, _FakeEvent("b"))
        scheduler.push(0.5, NORMAL, _FakeEvent("c"))
        assert scheduler.pop()[1].label == "c"
        assert scheduler.pop()[1].label == "b"
        assert len(scheduler) == 0


class TestCalendarBucketRetirement:
    """The calendar's drained-bucket cleanup must not strand the memo."""

    def test_peek_retires_drained_buckets(self):
        scheduler = CalendarScheduler()
        scheduler.push(1.0, NORMAL, _FakeEvent("a"))
        scheduler.pop()
        scheduler.push(2.0, NORMAL, _FakeEvent("b"))
        # The 1.0 bucket is empty; peek must skip past its carcass.
        assert scheduler.peek() == 2.0
        assert len(scheduler) == 1

    def test_push_after_bucket_retired_by_pop(self):
        scheduler = CalendarScheduler()
        scheduler.push(1.0, NORMAL, _FakeEvent("a"))
        scheduler.push(1.0, NORMAL, _FakeEvent("b"))
        assert scheduler.pop()[1].label == "a"
        assert scheduler.pop()[1].label == "b"
        with pytest.raises(IndexError):
            scheduler.pop()
        # The memo pointed at the now-dead 1.0 bucket; a fresh push at
        # the same time must land in a live bucket, not the orphan.
        scheduler.push(1.0, NORMAL, _FakeEvent("c"))
        assert scheduler.pop()[1].label == "c"


class TestBuildScheduler:
    def test_default_is_heap(self):
        assert isinstance(build_scheduler(), HeapScheduler)
        assert isinstance(build_scheduler(None), HeapScheduler)

    def test_registry_names(self):
        assert isinstance(build_scheduler("heap"), HeapScheduler)
        assert isinstance(build_scheduler("calendar"), CalendarScheduler)
        assert SCHEDULER_MODES == ("heap", "calendar")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            build_scheduler("splay-tree")

    def test_instance_passes_through(self):
        backend = CalendarScheduler()
        assert build_scheduler(backend) is backend

    def test_non_scheduler_object_raises(self):
        with pytest.raises(TypeError, match="Scheduler protocol"):
            build_scheduler(object())


class _RecordingScheduler(HeapScheduler):
    """A bring-your-own backend: drives the generic (protocol-only) loop."""

    def __init__(self):
        super().__init__()
        self.pushes = 0

    def push(self, when, priority, event):
        self.pushes += 1
        super().push(when, priority, event)


class TestCustomScheduler:
    def test_simulator_runs_on_custom_backend(self):
        backend = _RecordingScheduler()
        sim = Simulator(seed=1, scheduler=backend)
        assert sim.scheduler is backend
        fired = []

        def proc():
            yield sim.timeout(1.0)
            fired.append(sim.now)
            yield sim.timeout(2.0)
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [1.0, 3.0]
        assert backend.pushes > 0

    def test_custom_backend_honors_horizon(self):
        sim = Simulator(seed=1, scheduler=_RecordingScheduler())
        fired = []
        sim.call_later(1.0, lambda: fired.append(1))
        sim.call_later(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0


@pytest.fixture(params=["heap", "calendar"])
def sim(request):
    return Simulator(seed=1, scheduler=request.param)


class TestCancellation:
    def test_cancelled_timer_never_fires(self, sim):
        fired = []
        timeout = sim.timeout(1.0)
        timeout.callbacks.append(lambda _e: fired.append("t"))
        assert timeout.cancel() is True
        assert timeout.cancelled
        sim.run()
        assert fired == []
        assert not timeout.processed

    def test_cancelled_events_counted_separately(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0).cancel()
        sim.run()
        assert sim.events_processed == 1
        assert sim.events_cancelled == 1

    def test_clock_never_advances_to_cancelled_only_time(self, sim):
        sim.timeout(1.0)
        sim.timeout(5.0).cancel()
        sim.run()
        assert sim.now == 1.0

    def test_cancel_after_processed_is_a_noop(self, sim):
        timeout = sim.timeout(1.0)
        sim.run()
        assert timeout.cancel() is False
        assert not timeout.cancelled

    def test_cancel_mid_run_from_a_callback(self, sim):
        doomed = sim.timeout(2.0)
        fired = []
        doomed.callbacks.append(lambda _e: fired.append("doomed"))
        sim.call_later(1.0, doomed.cancel)
        sim.run()
        assert fired == []
        assert sim.events_cancelled == 1

    def test_run_until_event_skips_cancelled(self, sim):
        sim.timeout(1.0).cancel()
        target = sim.timeout(2.0, value="done")
        assert sim.run(until=target) == "done"
        assert sim.events_cancelled == 1

    def test_step_skips_cancelled(self, sim):
        sim.timeout(1.0).cancel()
        sim.timeout(2.0)
        sim.step()
        assert sim.now == 2.0
        assert sim.events_cancelled == 1


class TestTimeoutFreeList:
    def test_processed_timeout_is_recycled(self, sim):
        first = sim.timeout(1.0, value="a")
        sim.run()
        assert first.processed
        second = sim.timeout(1.0, value="b")
        # The kernel proved `first` unreferenced-by-the-model at pop time
        # is false here (we hold it) — so recycling must NOT have reused
        # it. Drop our reference pattern instead: timers created and
        # consumed entirely inside the loop are the recycled population.
        assert second is not first

    def test_unreferenced_timers_are_reused(self, sim):
        def proc():
            for _ in range(3):
                yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        before = sim.events_processed
        # The free-list is warm; a fresh timeout comes from the pool with
        # fully reset state.
        fresh = sim.timeout(2.0, value="fresh")
        assert fresh.callbacks == []
        assert not fresh.processed
        assert not fresh.cancelled
        sim.run()
        assert fresh.value == "fresh"
        assert sim.events_processed == before + 1

    def test_recycled_timer_value_not_leaked(self, sim):
        def proc(values):
            value = yield sim.timeout(1.0, value="secret")
            values.append(value)
            value = yield sim.timeout(1.0)
            values.append(value)

        values = []
        sim.process(proc(values))
        sim.run()
        assert values == ["secret", None]
