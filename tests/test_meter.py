"""Energy meters and power integrators."""

import pytest

from repro.energy.meter import EnergyMeter, PowerIntegrator
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestEnergyMeter:
    def test_starts_empty(self):
        assert EnergyMeter("m").total() == 0.0

    def test_charge_accumulates(self):
        meter = EnergyMeter("m")
        meter.charge(1.0, "radio", "tx")
        meter.charge(2.0, "radio", "tx")
        assert meter.total() == 3.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            EnergyMeter("m").charge(-0.1, "radio", "tx")

    def test_filter_by_component(self):
        meter = EnergyMeter("m")
        meter.charge(1.0, "radio.low", "tx")
        meter.charge(2.0, "radio.high", "tx")
        assert meter.total(component="radio.low") == 1.0

    def test_filter_by_categories(self):
        meter = EnergyMeter("m")
        meter.charge(1.0, "r", "tx")
        meter.charge(2.0, "r", "rx")
        meter.charge(4.0, "r", "idle")
        assert meter.total(categories=("tx", "rx")) == 3.0

    def test_by_category(self):
        meter = EnergyMeter("m")
        meter.charge(1.0, "a", "tx")
        meter.charge(2.0, "b", "tx")
        meter.charge(3.0, "a", "rx")
        assert meter.by_category() == {"tx": 3.0, "rx": 3.0}
        assert meter.by_category(component="a") == {"tx": 1.0, "rx": 3.0}

    def test_breakdown_is_copy(self):
        meter = EnergyMeter("m")
        meter.charge(1.0, "a", "tx")
        breakdown = meter.breakdown()
        breakdown[("a", "tx")] = 99.0
        assert meter.total() == 1.0


class TestPowerIntegrator:
    def test_integrates_constant_power(self, sim):
        meter = EnergyMeter("m")
        integrator = PowerIntegrator(sim, meter, "radio")
        integrator.set_power(2.0, "idle")
        sim.timeout(5.0)
        sim.run()
        integrator.flush()
        assert meter.total() == pytest.approx(10.0)

    def test_segments_by_category(self, sim):
        meter = EnergyMeter("m")
        integrator = PowerIntegrator(sim, meter, "radio")
        integrator.set_power(1.0, "idle")
        sim.call_later(2.0, lambda: integrator.set_power(3.0, "tx"))
        sim.timeout(5.0)
        sim.run()
        integrator.flush()
        categories = meter.by_category()
        assert categories["idle"] == pytest.approx(2.0)
        assert categories["tx"] == pytest.approx(9.0)

    def test_zero_power_charges_nothing(self, sim):
        meter = EnergyMeter("m")
        integrator = PowerIntegrator(sim, meter, "radio")
        sim.timeout(10.0)
        sim.run()
        integrator.flush()
        assert meter.total() == 0.0

    def test_negative_power_rejected(self, sim):
        integrator = PowerIntegrator(sim, EnergyMeter("m"), "radio")
        with pytest.raises(ValueError):
            integrator.set_power(-1.0, "idle")

    def test_double_flush_no_double_charge(self, sim):
        meter = EnergyMeter("m")
        integrator = PowerIntegrator(sim, meter, "radio")
        integrator.set_power(1.0, "idle")
        sim.timeout(4.0)
        sim.run()
        integrator.flush()
        integrator.flush()
        assert meter.total() == pytest.approx(4.0)
