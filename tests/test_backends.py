"""The pluggable backend layer: protocol, parsing, env selection."""

import pytest

from repro.models.scenario import ScenarioConfig, run_scenario
from repro.runner import (
    ProcessBackend,
    ResultCache,
    SerialBackend,
    ShardBackend,
    ShardSpec,
    SweepRunner,
    default_backend,
    parse_backend,
)
from repro.runner.backends import BACKEND_ENV

TINY = ScenarioConfig(
    rows=3, cols=3, sink=4, n_senders=2, sim_time_s=10.0, burst_packets=10
)
CONFIGS = [TINY.replace(seed=seed) for seed in (1, 2, 3)]


def collect(backend, fn, configs, pending=None):
    """Drive a backend directly, the way the runner does."""
    results = {}
    backend.execute(
        fn,
        configs,
        list(range(len(configs))) if pending is None else pending,
        lambda index, result: results.__setitem__(index, result),
    )
    return results


class TestSerialBackend:
    def test_executes_in_order(self):
        seen = []

        def fn(config):
            seen.append(config.seed)
            return config.seed * 10

        results = collect(SerialBackend(), fn, CONFIGS)
        assert seen == [1, 2, 3]
        assert results == {0: 10, 1: 20, 2: 30}

    def test_respects_pending_subset(self):
        results = collect(
            SerialBackend(), lambda c: c.seed, CONFIGS, pending=[2]
        )
        assert results == {2: 3}

    def test_name(self):
        assert SerialBackend().name == "serial"
        assert not SerialBackend().requires_cache


class TestProcessBackend:
    def test_matches_serial_byte_for_byte(self):
        serial = collect(SerialBackend(), run_scenario, CONFIGS)
        process = collect(ProcessBackend(2), run_scenario, CONFIGS)
        assert process == serial

    def test_single_pending_cell_runs_in_process(self):
        # One cell costs less than a pool spawn; the backend shortcuts.
        seen = []

        def local_closure(config):  # unpicklable on purpose
            seen.append(config.seed)
            return config.seed

        results = collect(ProcessBackend(4), local_closure, CONFIGS, [1])
        assert results == {1: 2}
        assert seen == [2]

    def test_zero_jobs_means_all_cores(self):
        assert ProcessBackend(0).jobs >= 1

    def test_name_carries_worker_count(self):
        assert ProcessBackend(3).name == "process:3"


class TestParseBackend:
    def test_serial(self):
        assert isinstance(parse_backend("serial"), SerialBackend)
        assert isinstance(parse_backend(" SERIAL "), SerialBackend)

    def test_process_defaults_to_at_least_two_workers(self):
        backend = parse_backend("process", jobs=1)
        assert isinstance(backend, ProcessBackend)
        assert backend.jobs == 2
        assert parse_backend("process", jobs=6).jobs == 6

    def test_process_with_explicit_count(self):
        assert parse_backend("process:5").jobs == 5

    def test_shard_wraps_jobs_backend(self):
        backend = parse_backend("shard:1/3", jobs=1)
        assert isinstance(backend, ShardBackend)
        assert backend.spec == ShardSpec(1, 3)
        assert isinstance(backend.inner, SerialBackend)
        parallel = parse_backend("shard:0/2", jobs=4)
        assert isinstance(parallel.inner, ProcessBackend)
        assert parallel.inner.jobs == 4

    def test_garbage_rejected(self):
        for bad in ("cluster", "process:many", "shard:x/y", "shard:3"):
            with pytest.raises(ValueError):
                parse_backend(bad)


class TestDefaultBackend:
    def test_jobs_imply_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(default_backend(1), SerialBackend)
        fanned = default_backend(4)
        assert isinstance(fanned, ProcessBackend)
        assert fanned.jobs == 4

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "serial")
        assert isinstance(default_backend(8), SerialBackend)
        monkeypatch.setenv(BACKEND_ENV, "process:3")
        assert default_backend(1).jobs == 3

    def test_runner_uses_env_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "serial")
        assert isinstance(SweepRunner(jobs=8).backend, SerialBackend)

    def test_env_cannot_inject_shard_backend(self, monkeypatch):
        # A full-batch sweep (run_sweep, the figures) expects a complete
        # result list; an env-injected shard would hand it None holes.
        monkeypatch.setenv(BACKEND_ENV, "shard:0/2")
        with pytest.raises(ValueError, match="--shard"):
            default_backend(1)
        with pytest.raises(ValueError, match="--shard"):
            SweepRunner()

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process:3")
        runner = SweepRunner(backend=SerialBackend())
        assert isinstance(runner.backend, SerialBackend)


class TestRunnerBackendIntegration:
    def test_shard_backend_requires_cache(self):
        with pytest.raises(ValueError, match="requires a result cache"):
            SweepRunner(backend=ShardBackend(ShardSpec(0, 2)))

    def test_shard_backend_with_cache_accepted(self, tmp_path):
        runner = SweepRunner(
            cache=ResultCache(tmp_path),
            backend=ShardBackend(ShardSpec(0, 2)),
        )
        assert runner.backend.requires_cache

    def test_all_backends_agree(self, tmp_path):
        serial = SweepRunner(backend=SerialBackend()).map(run_scenario, CONFIGS)
        process = SweepRunner(backend=ProcessBackend(2)).map(
            run_scenario, CONFIGS
        )
        assert process == serial
        cache = ResultCache(tmp_path)
        for index in range(2):
            SweepRunner(
                cache=cache,
                backend=ShardBackend(ShardSpec(index, 2)),
            ).map(run_scenario, CONFIGS)
        merged = SweepRunner(cache=ResultCache(tmp_path)).map(
            run_scenario, CONFIGS
        )
        assert merged == serial
