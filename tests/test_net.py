"""Network layer: packets, dual-radio addressing, routing tables, shortcuts."""

import pytest

from repro.net.addressing import (
    HIGH_INTERFACE,
    LOW_INTERFACE,
    AddressMap,
    format_eui48,
    format_short_address,
)
from repro.net.packets import DataPacket
from repro.net.routing import RoutingError, build_routing, tree_depths
from repro.net.shortcut import ShortcutLearner
from repro.topology import grid_layout, line_layout


class TestDataPacket:
    def test_fields(self):
        packet = DataPacket(src=3, dst=0, payload_bits=256, created_s=1.5)
        assert packet.payload_bytes == 32
        assert packet.hops == 0

    def test_unique_ids(self):
        a = DataPacket(0, 1, 8, 0.0)
        b = DataPacket(0, 1, 8, 0.0)
        assert a.packet_id != b.packet_id

    def test_positive_payload_required(self):
        with pytest.raises(ValueError):
            DataPacket(0, 1, 0, 0.0)


class TestAddressing:
    def test_short_address_format(self):
        assert format_short_address(5) == "0x0005"
        assert format_short_address(0xBEEF) == "0xbeef"

    def test_short_address_range(self):
        with pytest.raises(ValueError):
            format_short_address(0x1_0000)

    def test_eui48_format(self):
        address = format_eui48(1)
        assert address == "02:11:00:00:00:01"

    def test_register_node_both_interfaces(self):
        addresses = AddressMap()
        addresses.register_node(7)
        assert addresses.has_interface(7, LOW_INTERFACE)
        assert addresses.has_interface(7, HIGH_INTERFACE)
        assert len(addresses) == 2

    def test_low_only_node(self):
        addresses = AddressMap()
        addresses.register_node(7, has_high_radio=False)
        assert not addresses.has_interface(7, HIGH_INTERFACE)

    def test_roundtrip(self):
        addresses = AddressMap()
        addresses.register_node(9)
        high = addresses.address_of(9, HIGH_INTERFACE)
        assert addresses.node_of(high) == 9

    def test_duplicate_interface_rejected(self):
        addresses = AddressMap()
        addresses.register(1, LOW_INTERFACE, "a")
        with pytest.raises(ValueError):
            addresses.register(1, LOW_INTERFACE, "b")

    def test_duplicate_address_rejected(self):
        addresses = AddressMap()
        addresses.register(1, LOW_INTERFACE, "a")
        with pytest.raises(ValueError):
            addresses.register(2, LOW_INTERFACE, "a")


class TestRouting:
    def test_line_next_hops(self):
        table = build_routing(line_layout(4, 40.0), 40.0)
        assert table.next_hop(0, 3) == 1
        assert table.next_hop(1, 3) == 2
        assert table.next_hop(3, 0) == 2

    def test_hop_counts(self):
        table = build_routing(line_layout(5, 40.0), 40.0)
        assert table.hops(0, 4) == 4
        assert table.hops(2, 2) == 0

    def test_path_reconstruction(self):
        table = build_routing(line_layout(4, 40.0), 40.0)
        assert table.path(0, 3) == [0, 1, 2, 3]
        assert table.path(2, 2) == [2]

    def test_self_route_raises(self):
        table = build_routing(line_layout(3, 40.0), 40.0)
        with pytest.raises(RoutingError):
            table.next_hop(1, 1)

    def test_disconnected_raises(self):
        table = build_routing(line_layout(3, 100.0), 40.0)
        with pytest.raises(RoutingError):
            table.next_hop(0, 2)
        assert not table.has_route(0, 2)

    def test_grid_routes_are_shortest(self):
        import networkx

        layout = grid_layout(6, 6, 40.0)
        table = build_routing(layout, 40.0)
        graph = layout.graph(40.0)
        for src in (35, 17, 5):
            assert table.hops(src, 0) == networkx.shortest_path_length(
                graph, src, 0
            )

    def test_deterministic_tie_breaking(self):
        table_a = build_routing(grid_layout(4, 4, 40.0), 40.0)
        table_b = build_routing(grid_layout(4, 4, 40.0), 40.0)
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    assert table_a.next_hop(src, dst) == table_b.next_hop(
                        src, dst
                    )

    def test_long_range_single_hop(self):
        """MH case: a 290 m radio reaches the far corner directly."""
        table = build_routing(grid_layout(6, 6, 40.0), 290.0)
        assert table.hops(35, 0) == 1

    def test_tree_depths(self):
        depths = tree_depths(build_routing(grid_layout(3, 3, 40.0), 40.0), 0)
        assert depths[0] == 0
        assert depths[8] == 4  # manhattan distance in hops

    def test_routes_converge_to_destination(self):
        table = build_routing(grid_layout(5, 5, 40.0), 40.0)
        for src in range(25):
            if src == 12:
                continue
            node, steps = src, 0
            while node != 12:
                node = table.next_hop(node, 12)
                steps += 1
                assert steps <= 25, "routing loop"


class TestShortcutLearner:
    def make(self):
        layout = line_layout(4, 40.0)
        low = build_routing(layout, 40.0)
        high = build_routing(layout, 100.0)  # can reach 2 hops away
        return ShortcutLearner(0, low, high), low, high

    def test_initial_next_hop_follows_low_route(self):
        learner, low, _high = self.make()
        assert learner.next_hop(3) == low.next_hop(0, 3) == 1

    def test_learns_reachable_farther_forwarder(self):
        learner, _low, _high = self.make()
        assert learner.observe_forwarding(3, forwarder=2)
        assert learner.next_hop(3) == 2
        assert learner.shortcuts_learned == 1

    def test_rejects_unreachable_forwarder(self):
        learner, _low, _high = self.make()
        assert not learner.observe_forwarding(3, forwarder=3)  # 120 m away
        assert learner.next_hop(3) == 1

    def test_rejects_not_closer_forwarder(self):
        learner, _low, _high = self.make()
        learner.observe_forwarding(3, forwarder=2)
        assert not learner.observe_forwarding(3, forwarder=1)
        assert learner.next_hop(3) == 2

    def test_ignores_self(self):
        learner, _low, _high = self.make()
        assert not learner.observe_forwarding(3, forwarder=0)

    def test_forget_restores_default(self):
        learner, low, _high = self.make()
        learner.observe_forwarding(3, forwarder=2)
        learner.forget(3)
        assert learner.next_hop(3) == low.next_hop(0, 3)
