"""The shared medium: delivery, collisions, hidden terminals, loss,
carrier sense and overhearing energy."""

import pytest

from repro.channel.medium import LossModel, Medium
from repro.energy.meter import EnergyMeter
from repro.energy.radio_specs import MICAZ
from repro.mac.frames import BROADCAST, Frame, FrameKind
from repro.radio.radio import LowPowerRadio
from repro.sim import Simulator
from repro.topology import line_layout


def data_frame(src, dst, payload_bits=256, header_bits=64):
    return Frame(
        kind=FrameKind.DATA,
        src=src,
        dst=dst,
        payload_bits=payload_bits,
        header_bits=header_bits,
        require_ack=False,
    )


class Harness:
    """Raw radios on a line, bypassing MACs (frames delivered to lists)."""

    def __init__(self, n=3, spacing=40.0, loss=None, seed=1):
        self.sim = Simulator(seed=seed)
        self.layout = line_layout(n, spacing)
        self.medium = Medium(self.sim, self.layout, "test", loss=loss)
        self.meters = {i: EnergyMeter(str(i)) for i in range(n)}
        self.radios = {
            i: LowPowerRadio(self.sim, i, MICAZ, self.medium, self.meters[i])
            for i in range(n)
        }
        self.received = {i: [] for i in range(n)}
        for i in range(n):
            self.radios[i].set_receiver(
                lambda frame, i=i: self.received[i].append(frame)
            )


class TestDelivery:
    def test_in_range_unicast_delivers(self):
        h = Harness()
        h.radios[0].transmit(data_frame(0, 1))
        h.sim.run()
        assert len(h.received[1]) == 1

    def test_out_of_range_not_delivered(self):
        h = Harness()  # nodes 0 and 2 are 80 m apart
        h.radios[0].transmit(data_frame(0, 2))
        h.sim.run()
        assert h.received[2] == []

    def test_sender_does_not_hear_itself(self):
        h = Harness()
        h.radios[0].transmit(data_frame(0, 1))
        h.sim.run()
        assert h.received[0] == []

    def test_broadcast_reaches_all_in_range(self):
        h = Harness()
        h.radios[1].transmit(data_frame(1, BROADCAST))
        h.sim.run()
        assert len(h.received[0]) == 1
        assert len(h.received[2]) == 1

    def test_unknown_destination_ignored(self):
        h = Harness()
        h.radios[0].transmit(data_frame(0, 77))
        h.sim.run()  # no exception, no delivery

    def test_duplicate_registration_rejected(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.medium.register(h.radios[0])

    def test_delivery_takes_airtime(self):
        h = Harness()
        frame = data_frame(0, 1, payload_bits=256, header_bits=64)
        h.radios[0].transmit(frame)
        h.sim.run()
        assert h.sim.now == pytest.approx(320 / MICAZ.rate_bps)


class TestCollisions:
    def test_concurrent_same_receiver_collide(self):
        h = Harness()
        h.radios[0].transmit(data_frame(0, 1))
        h.radios[2].transmit(data_frame(2, 1))
        h.sim.run()
        assert h.received[1] == []
        assert h.medium.frames_collided == 2

    def test_hidden_terminal_collision(self):
        """0 and 2 cannot hear each other but both reach 1."""
        h = Harness()
        h.radios[0].transmit(data_frame(0, 1, payload_bits=8192))

        def late_interferer():
            yield h.sim.timeout(0.001)  # mid-flight of the first frame
            h.radios[2].transmit(data_frame(2, 1, payload_bits=64))

        h.sim.process(late_interferer())
        h.sim.run()
        assert h.received[1] == []

    def test_receiver_transmitting_misses_frame(self):
        """Half duplex: a node cannot receive while sending."""
        h = Harness()
        h.radios[1].transmit(data_frame(1, 2, payload_bits=8192))
        h.radios[0].transmit(data_frame(0, 1, payload_bits=64))
        h.sim.run()
        assert h.received[1] == []
        assert len(h.received[2]) == 1  # 1's own frame still lands at 2

    def test_disjoint_pairs_no_collision(self):
        h = Harness(n=4, spacing=40.0)
        # 0->1 and 3->2: senders 120m apart; receivers hear one tx each...
        # Actually 1 is 80m from 3, 2 is 40m from 1: 1->? no; check 0->1 ok
        h.radios[0].transmit(data_frame(0, 1))
        h.sim.run()
        h.radios[3].transmit(data_frame(3, 2))
        h.sim.run()
        assert len(h.received[1]) == 1
        assert len(h.received[2]) == 1

    def test_back_to_back_no_collision(self):
        """Sequential (non-overlapping) frames both deliver."""
        h = Harness()

        def sender():
            yield h.radios[0].transmit(data_frame(0, 1))
            yield h.radios[0].transmit(data_frame(0, 1))

        h.sim.process(sender())
        h.sim.run()
        assert len(h.received[1]) == 2


class TestCarrierSense:
    def test_idle_channel(self):
        h = Harness()
        assert not h.medium.is_busy_for(0)

    def test_busy_during_neighbor_tx(self):
        h = Harness()
        h.radios[0].transmit(data_frame(0, 1, payload_bits=8192))
        busy_state = []

        def probe():
            yield h.sim.timeout(0.001)
            busy_state.append(h.medium.is_busy_for(1))
            busy_state.append(h.medium.is_busy_for(2))  # out of 0's range

        h.sim.process(probe())
        h.sim.run()
        assert busy_state == [True, False]

    def test_own_transmission_is_busy(self):
        h = Harness()
        h.radios[0].transmit(data_frame(0, 1, payload_bits=8192))
        state = []

        def probe():
            yield h.sim.timeout(0.001)
            state.append(h.medium.is_busy_for(0))

        h.sim.process(probe())
        h.sim.run()
        assert state == [True]


class TestLoss:
    def test_loss_probability_validated(self):
        with pytest.raises(ValueError):
            LossModel(1.5)

    def test_zero_loss_never_drops(self):
        model = LossModel(0.0)
        assert not any(model.is_lost() for _ in range(100))

    def test_full_loss_blocks_delivery(self):
        sim = Simulator(seed=2)
        loss = LossModel(0.99, sim.rng.stream("loss"))
        h = Harness(loss=loss, seed=2)
        for _ in range(50):
            h.radios[0].transmit(data_frame(0, 1))
            h.sim.run()
        assert len(h.received[1]) < 10  # ~0.5 expected
        assert h.medium.frames_lost > 40

    def test_loss_rate_statistics(self):
        sim = Simulator(seed=3)
        model = LossModel(0.3, sim.rng.stream("loss"))
        losses = sum(model.is_lost() for _ in range(10_000))
        assert 0.27 < losses / 10_000 < 0.33


class TestOverhearingEnergy:
    def test_third_party_charged_header_and_body(self):
        h = Harness()
        h.radios[1].transmit(data_frame(1, 2))
        h.sim.run()
        categories = h.meters[0].by_category()
        assert categories["overhear_header"] > 0
        assert categories["overhear_body"] > 0
        header_s = 64 / MICAZ.rate_bps
        assert categories["overhear_header"] == pytest.approx(
            MICAZ.p_rx_w * header_s
        )

    def test_addressed_receiver_charged_rx(self):
        h = Harness()
        h.radios[0].transmit(data_frame(0, 1))
        h.sim.run()
        duration = 320 / MICAZ.rate_bps
        assert h.meters[1].by_category()["rx"] == pytest.approx(
            MICAZ.p_rx_w * duration
        )

    def test_out_of_range_not_charged(self):
        h = Harness()
        h.radios[0].transmit(data_frame(0, 1))
        h.sim.run()
        assert h.meters[2].total() == 0.0
