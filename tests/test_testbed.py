"""Prototype testbed: event logging, emulation, accounting, experiments."""


import pytest

from repro.energy.radio_specs import LUCENT_11
from repro.sim import Simulator
from repro.testbed import (
    TMOTE_CC2420,
    EmulatedWifiMac,
    EventLog,
    PrototypeConfig,
    SensorLink,
    account_experiment,
    account_mote,
    default_threshold_sweep,
    run_prototype,
    sweep_thresholds,
)
from repro.testbed import eventlog


class TestEventLog:
    def test_append_and_filter(self):
        log = EventLog()
        log.log(0.0, "sender", eventlog.SENSOR_TX, 0.001)
        log.log(0.0, "receiver", eventlog.SENSOR_RX, 0.001)
        log.log(1.0, "sender", eventlog.WIFI_WAKEUP)
        assert len(log) == 3
        assert len(log.of_type(eventlog.SENSOR_TX)) == 1
        assert len(log.of_type(eventlog.SENSOR_RX, mote="sender")) == 0


class TestEmulation:
    def test_sensor_link_logs_both_ends(self):
        sim = Simulator(seed=1)
        log = EventLog()
        link = SensorLink(sim, log)
        done = link.transfer("sender", "receiver", 16)
        sim.run(until=done)
        expected = (16 * 8 + TMOTE_CC2420.header_bits) / TMOTE_CC2420.rate_bps
        assert sim.now == pytest.approx(expected)
        assert log.of_type(eventlog.SENSOR_TX, "sender")
        assert log.of_type(eventlog.SENSOR_RX, "receiver")

    def test_wifi_transfer_requires_awake(self):
        sim = Simulator(seed=1)
        log = EventLog()
        a = EmulatedWifiMac(sim, log, "sender", LUCENT_11)
        b = EmulatedWifiMac(sim, log, "receiver", LUCENT_11)
        with pytest.raises(RuntimeError):
            a.transfer_frame(b, 1024)
        sim.run(until=a.wake())
        sim.run(until=b.wake())
        done = a.transfer_frame(b, 1024)
        sim.run(until=done)
        assert log.of_type(eventlog.WIFI_TX, "sender")
        assert log.of_type(eventlog.WIFI_RX, "receiver")

    def test_wake_logs_event(self):
        sim = Simulator(seed=1)
        log = EventLog()
        mac = EmulatedWifiMac(sim, log, "sender", LUCENT_11)
        mac.wake()
        assert len(log.of_type(eventlog.WIFI_WAKEUP)) == 1


class TestAccounting:
    def test_sensor_event_energy(self):
        log = EventLog()
        log.log(0.0, "sender", eventlog.SENSOR_TX, 0.002)
        log.log(0.0, "receiver", eventlog.SENSOR_RX, 0.002)
        sender = account_mote(log, "sender", TMOTE_CC2420, LUCENT_11, 1.0)
        receiver = account_mote(log, "receiver", TMOTE_CC2420, LUCENT_11, 1.0)
        assert sender.sensor_tx == pytest.approx(TMOTE_CC2420.p_tx_w * 0.002)
        assert receiver.sensor_rx == pytest.approx(TMOTE_CC2420.p_rx_w * 0.002)

    def test_wifi_idle_is_awake_minus_busy(self):
        log = EventLog()
        log.log(0.0, "m", eventlog.WIFI_WAKEUP)
        log.log(0.1, "m", eventlog.WIFI_TX, 0.2)
        log.log(1.0, "m", eventlog.WIFI_SLEEP)
        out = account_mote(log, "m", TMOTE_CC2420, LUCENT_11, 2.0)
        assert out.wifi_wakeup == pytest.approx(LUCENT_11.e_wakeup_j)
        assert out.wifi_tx == pytest.approx(LUCENT_11.p_tx_w * 0.2)
        assert out.wifi_idle == pytest.approx(LUCENT_11.p_idle_w * 0.8)

    def test_open_wake_interval_closed_at_end(self):
        log = EventLog()
        log.log(0.0, "m", eventlog.WIFI_WAKEUP)
        out = account_mote(log, "m", TMOTE_CC2420, LUCENT_11, 3.0)
        assert out.wifi_idle == pytest.approx(LUCENT_11.p_idle_w * 3.0)

    def test_experiment_sums_motes(self):
        log = EventLog()
        log.log(0.0, "a", eventlog.SENSOR_TX, 0.001)
        log.log(0.0, "b", eventlog.SENSOR_RX, 0.001)
        total = account_experiment(log, TMOTE_CC2420, LUCENT_11, 1.0)
        assert total.total == pytest.approx(
            TMOTE_CC2420.p_tx_w * 0.001 + TMOTE_CC2420.p_rx_w * 0.001
        )

    def test_breakdown_addition(self):
        from repro.testbed.accounting import EnergyBreakdown

        a = EnergyBreakdown(sensor_tx=1.0, wifi_idle=2.0)
        b = EnergyBreakdown(sensor_tx=0.5, wifi_tx=1.5)
        combined = a + b
        assert combined.sensor_tx == 1.5
        assert combined.total == pytest.approx(5.0)


class TestPrototypeExperiment:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PrototypeConfig(threshold_bytes=0)
        with pytest.raises(ValueError):
            PrototypeConfig(n_messages=0)
        with pytest.raises(ValueError):
            PrototypeConfig(message_bytes=64, frame_payload_bytes=32)

    def test_all_messages_delivered_with_flush(self):
        result = run_prototype(PrototypeConfig(threshold_bytes=1024,
                                               n_messages=100))
        assert result.messages_delivered == 100

    def test_paper_claim_crossover_near_1kb(self):
        """Fig. 11: s* occurs around 1 KB on the prototype."""
        low = run_prototype(PrototypeConfig(threshold_bytes=512))
        high = run_prototype(PrototypeConfig(threshold_bytes=2048))
        assert low.dual_energy_per_packet_uj > low.sensor_energy_per_packet_uj
        assert high.dual_energy_per_packet_uj < high.sensor_energy_per_packet_uj

    def test_paper_claim_diminishing_returns(self):
        """Fig. 11: the drop flattens beyond a few KB."""
        r1 = run_prototype(PrototypeConfig(threshold_bytes=512))
        r2 = run_prototype(PrototypeConfig(threshold_bytes=2048))
        r3 = run_prototype(PrototypeConfig(threshold_bytes=4096))
        drop_early = r1.dual_energy_per_packet_uj - r2.dual_energy_per_packet_uj
        drop_late = r2.dual_energy_per_packet_uj - r3.dual_energy_per_packet_uj
        assert drop_early > drop_late > -1e-9

    def test_paper_claim_sawtooth_nonmonotonic(self):
        """Fig. 11: energy per packet is NOT monotone in the threshold —
        crossing a 1024 B frame boundary adds a frame's overhead."""
        results = sweep_thresholds(list(range(512, 4097, 32)))
        values = [r.dual_energy_per_packet_uj for r in results]
        rises = sum(1 for a, b in zip(values, values[1:]) if b > a + 1e-9)
        assert rises > 0

    def test_sensor_baseline_flat(self):
        results = sweep_thresholds([512, 1024, 4096])
        sensor = {r.sensor_energy_per_packet_uj for r in results}
        assert len(sensor) == 1

    def test_delay_grows_with_threshold(self):
        """Fig. 12: buffering delay is the price of energy savings."""
        results = sweep_thresholds([512, 1024, 2048, 4096])
        delays = [r.mean_delay_per_packet_ms for r in results]
        assert delays == sorted(delays)

    def test_delay_scale_matches_paper(self):
        """Fig. 12's x-axis reaches ~25 s at the 5 KB threshold."""
        result = run_prototype(PrototypeConfig(threshold_bytes=4992))
        assert 5_000 < result.mean_delay_per_packet_ms < 60_000

    def test_energy_computed_from_log_only(self):
        """The result's breakdown must equal re-accounting its log — i.e.
        the experiment carries no hidden energy state."""
        config = PrototypeConfig(threshold_bytes=1024, n_messages=50)
        result = run_prototype(config)
        assert result.dual_breakdown.total > 0
        assert result.dual_energy_per_packet_uj == pytest.approx(
            result.dual_breakdown.total / result.messages_delivered * 1e6
        )

    def test_default_sweep_range(self):
        sweep = default_threshold_sweep()
        assert sweep[0] == 512
        assert sweep[-1] <= 5000
        assert all(b - a == 128 for a, b in zip(sweep, sweep[1:]))

    def test_deterministic(self):
        config = PrototypeConfig(threshold_bytes=2048, n_messages=100)
        a = run_prototype(config)
        b = run_prototype(config)
        assert a.dual_energy_per_packet_uj == b.dual_energy_per_packet_uj
        assert a.mean_delay_per_packet_ms == b.mean_delay_per_packet_ms
