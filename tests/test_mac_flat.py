"""Flat MAC engine: trace identity vs the generator reference.

The flat callback state machine in :mod:`repro.mac.base` claims
*byte-identical* behaviour to the historical generator engine: same agenda
entries, same rng draw order, same counters, same energy.  These tests pin
that claim — a hypothesis property over random traffic plans plus
deterministic contention/edge-case scenarios parametrized over the full
engine x scheduler grid.
"""

import collections
import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.medium import LossModel, Medium
from repro.energy.meter import EnergyMeter
from repro.energy.radio_specs import LUCENT_11, MICAZ
from repro.mac.base import _DEDUP_WINDOW, MAC_ENGINES, ContentionMac
from repro.mac.csma import SensorCsmaMac
from repro.mac.dcf import DcfMac
from repro.mac.frames import BROADCAST, Frame, FrameKind
from repro.mac.timing import sensor_csma_params
from repro.radio.radio import HighPowerRadio, LowPowerRadio
from repro.sim.simulator import Simulator
from repro.topology import line_layout

SCHEDULERS = ("heap", "calendar")

GRID = [
    (engine, scheduler)
    for engine in MAC_ENGINES
    for scheduler in SCHEDULERS
]


def data_frame(src, dst, payload_bits=256, require_ack=True):
    return Frame(
        kind=FrameKind.DATA,
        src=src,
        dst=dst,
        payload_bits=payload_bits,
        header_bits=64,
        require_ack=require_ack,
    )


def run_plan(engine, scheduler, *, n, loss_p, plan, seed, params=None):
    """Run a traffic plan; return the full observable trace.

    The trace captures everything the engines could plausibly diverge on:
    final clock, kernel event counts, timestamped deliveries, every MAC
    counter, and exact per-node energy floats.
    """
    sim = Simulator(seed=seed, scheduler=scheduler)
    layout = line_layout(n, 40.0)
    loss = LossModel(loss_p, sim.rng.stream("loss")) if loss_p else None
    medium = Medium(sim, layout, "m", loss=loss)
    meters = {i: EnergyMeter(str(i)) for i in range(n)}
    radios = {
        i: LowPowerRadio(sim, i, MICAZ, medium, meters[i]) for i in range(n)
    }
    macs = {
        i: SensorCsmaMac(sim, radios[i], params=params, engine=engine)
        for i in range(n)
    }
    deliveries = []
    for i in range(n):
        macs[i].set_data_handler(
            lambda frame, i=i: deliveries.append(
                (sim.now, i, frame.src, frame.seq)
            )
        )
    outcomes = [
        macs[src].send(data_frame(src, dst, require_ack=require_ack))
        for src, dst, require_ack in plan
    ]
    sim.run()
    return {
        "now": sim.now,
        "events_processed": sim.events_processed,
        "events_cancelled": sim.events_cancelled,
        "deliveries": deliveries,
        "outcomes": [event.value for event in outcomes],
        "counters": {
            i: (
                mac.sent_ok,
                mac.sent_failed,
                mac.queue_drops,
                mac.retransmissions,
                mac.acks_dropped,
            )
            for i, mac in macs.items()
        },
        "collisions": medium.frames_collided,
        "energy": {i: meters[i].by_category() for i in range(n)},
    }


# A traffic step: sender, destination offset (BROADCAST for -1), ack flag.
plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from([0, 1, 2, BROADCAST]),
        st.booleans(),
    ),
    min_size=1,
    max_size=10,
).map(
    lambda steps: [
        (src, dst, require_ack)
        for src, dst, require_ack in steps
        if dst != src
    ]
)


class TestTraceIdentity:
    @given(
        plan=plans,
        loss_p=st.sampled_from([0.0, 0.3, 0.6]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_flat_matches_generator(self, plan, loss_p, seed):
        """Random plans, lossy or clean: the traces must be identical —
        including exact float equality on timestamps and joules."""
        traces = [
            run_plan(
                engine, "heap", n=3, loss_p=loss_p, plan=plan, seed=seed
            )
            for engine in MAC_ENGINES
        ]
        assert traces[0] == traces[1]

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_scheduler_backends_agree(self, scheduler):
        """Both engines stay identical on the calendar agenda too."""
        plan = [(0, 1, True), (2, 1, True), (1, BROADCAST, False)] * 3
        reference = run_plan(
            "flat", "heap", n=3, loss_p=0.4, plan=plan, seed=7
        )
        for engine in MAC_ENGINES:
            trace = run_plan(
                engine, scheduler, n=3, loss_p=0.4, plan=plan, seed=7
            )
            assert trace == reference


class TestContentionStats:
    """Deterministic hidden-terminal cell: stats must be engine-invariant
    and actually exercise the retry/drop/fail machinery."""

    # The out-of-range 0->2 frame leads the plan so it reaches the air
    # before node 0's queue fills up.
    PLAN = [(0, 2, True)] + [(0, 1, True), (2, 1, True)] * 8

    @pytest.mark.parametrize("engine,scheduler", GRID)
    def test_hidden_terminal_counters(self, engine, scheduler):
        params = sensor_csma_params(queue_capacity=4)
        trace = run_plan(
            engine,
            scheduler,
            n=3,
            loss_p=0.0,
            plan=self.PLAN,
            seed=3,
            params=params,
        )
        reference = run_plan(
            "flat",
            "heap",
            n=3,
            loss_p=0.0,
            plan=self.PLAN,
            seed=3,
            params=params,
        )
        assert trace == reference
        sent_ok, sent_failed, queue_drops, retransmissions, acks_dropped = (
            trace["counters"][0]
        )
        # Nodes 0 and 2 are hidden from each other: collisions at node 1
        # force retransmissions; the 80 m 0->2 frame exhausts its retries;
        # the 4-deep queue drops part of the 9-frame burst.
        assert retransmissions > 0
        assert sent_failed >= 1  # the out-of-range 0->2 send
        assert queue_drops >= 1
        assert acks_dropped == 0
        assert sent_ok + sent_failed + queue_drops == 9


class TestAcksDropped:
    @pytest.mark.parametrize("engine", MAC_ENGINES)
    def test_receiver_sleeping_during_sifs_drops_ack(self, engine):
        """The half-duplex race on _transmit_ack: the receiving DCF radio
        goes to sleep between queueing the ACK and the SIFS expiry, so the
        ACK is dropped (and counted) rather than sent from a dead radio."""
        sim = Simulator(seed=9)
        layout = line_layout(2, 40.0)
        medium = Medium(sim, layout, "m")
        meters = {i: EnergyMeter(str(i)) for i in range(2)}
        radios = {
            i: HighPowerRadio(sim, i, LUCENT_11, medium, meters[i])
            for i in range(2)
        }
        macs = {
            i: DcfMac(sim, radios[i], engine=engine) for i in range(2)
        }
        sim.run(until=radios[0].wake())
        sim.run(until=radios[1].wake())
        # The delivery callback runs after the ACK is queued but before
        # the SIFS timer fires — sleeping the radio here loses the race.
        macs[1].set_data_handler(lambda frame: radios[1].sleep())
        done = macs[0].send(data_frame(0, 1))
        assert sim.run(until=done) is False  # no ACK ever comes back
        assert macs[1].acks_dropped == 1
        assert macs[0].sent_failed == 1
        # The radio slept through every retransmission, so only the first
        # (delivered) attempt queued an ACK.
        assert macs[0].retransmissions == macs[0].params.max_retries


class TestDedupWindow:
    """The deque+set dedup window vs an OrderedDict reference model."""

    @staticmethod
    def reference_is_dup(windows, src, seq):
        window = windows.setdefault(src, collections.OrderedDict())
        if seq in window:
            return True
        window[seq] = None
        if len(window) > _DEDUP_WINDOW:
            window.popitem(last=False)
        return False

    @given(
        stream=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=2 * _DEDUP_WINDOW),
            ),
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_ordered_dict_reference(self, stream):
        mac = types.SimpleNamespace(_seen={})
        windows = {}
        for src, seq in stream:
            frame = types.SimpleNamespace(src=src, seq=seq)
            got = ContentionMac._is_duplicate(mac, frame)
            expected = self.reference_is_dup(windows, src, seq)
            assert got == expected
        # Eviction keeps every per-peer window bounded.
        for order, seen in mac._seen.values():
            assert len(order) == len(seen) <= _DEDUP_WINDOW
