"""Sharding: specs, deterministic partitioning, manifests, merging."""

import json

import pytest

from repro.models.scenario import ScenarioConfig, run_scenario
from repro.runner import (
    MergeError,
    ResultCache,
    SerialBackend,
    ShardBackend,
    ShardSpec,
    SweepRunner,
    config_key,
    merge_shards,
    shard_index,
    write_shard_manifest,
)
from repro.runner.shard import manifest_path, read_shard_manifest

TINY = ScenarioConfig(
    rows=3, cols=3, sink=4, n_senders=2, sim_time_s=10.0, burst_packets=10
)
CONFIGS = [TINY.replace(seed=seed) for seed in range(1, 9)]
KEYS = [config_key(config) for config in CONFIGS]


class TestShardSpec:
    def test_parse_round_trip(self):
        spec = ShardSpec.parse("1/3")
        assert (spec.index, spec.count) == (1, 3)
        assert str(spec) == "1/3"
        assert ShardSpec.parse(str(spec)) == spec

    def test_invalid_specs_rejected(self):
        for bad in ("", "1", "1/0", "3/3", "-1/2", "a/b", "1/2/3"):
            with pytest.raises(ValueError):
                ShardSpec.parse(bad)

    def test_owns_matches_shard_index(self):
        for key in KEYS:
            owners = [
                index
                for index in range(3)
                if ShardSpec(index, 3).owns(key)
            ]
            assert owners == [shard_index(key, 3)]


class TestShardIndex:
    def test_partition_is_disjoint_and_exhaustive(self):
        for count in (1, 2, 3, 5):
            assignment = {key: shard_index(key, count) for key in KEYS}
            assert set(assignment.values()) <= set(range(count))
            # every key lands in exactly one shard, by construction of a
            # single-valued function; double-check via per-shard slices
            slices = [
                {key for key, shard in assignment.items() if shard == index}
                for index in range(count)
            ]
            union = set().union(*slices)
            assert union == set(KEYS)
            assert sum(len(piece) for piece in slices) == len(KEYS)

    def test_stable_across_calls_and_key_source(self):
        for key in KEYS:
            assert shard_index(key, 4) == shard_index(key, 4)
        # identity is derived from the config, not the machine: the same
        # config re-keyed gives the same shard
        assert shard_index(config_key(CONFIGS[0]), 4) == shard_index(
            KEYS[0], 4
        )

    def test_cache_key_method_matches_config_key(self):
        assert CONFIGS[0].cache_key() == KEYS[0]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            shard_index("not-hex!", 2)
        with pytest.raises(ValueError):
            shard_index(KEYS[0], 0)


class TestShardBackend:
    def test_complementary_shards_cover_plan_exactly_once(self, tmp_path):
        executed: dict[int, list[int]] = {}
        for index in range(2):
            seen: list[int] = []

            def spy(config, _seen=seen):
                _seen.append(config.seed)
                return run_scenario(config)

            backend = ShardBackend(ShardSpec(index, 2), SerialBackend())
            SweepRunner(
                cache=ResultCache(tmp_path / str(index)), backend=backend
            ).map(spy, CONFIGS)
            executed[index] = seen
            assert backend.owned == len(seen)
            assert backend.skipped == len(CONFIGS) - len(seen)
        all_seeds = sorted(executed[0] + executed[1])
        assert all_seeds == sorted(c.seed for c in CONFIGS)
        assert set(executed[0]).isdisjoint(executed[1])

    def test_out_of_shard_cells_stay_none_unless_cached(self, tmp_path):
        backend = ShardBackend(ShardSpec(0, 2), SerialBackend())
        results = SweepRunner(
            cache=ResultCache(tmp_path), backend=backend
        ).map(run_scenario, CONFIGS)
        owned = [ShardSpec(0, 2).owns(key) for key in KEYS]
        assert 0 < sum(owned) < len(CONFIGS)  # a genuine split
        for result, mine in zip(results, owned):
            assert (result is not None) == mine


class TestManifest:
    def test_write_and_read(self, tmp_path):
        spec = ShardSpec(1, 4)
        path = write_shard_manifest(tmp_path, spec, KEYS[:3], artifact="fig5")
        assert path == manifest_path(tmp_path, spec)
        assert path.name == "shard-1of4.manifest"
        payload = read_shard_manifest(path)
        assert payload["shard"] == {"index": 1, "count": 4}
        assert payload["cells"] == sorted(KEYS[:3])
        assert payload["artifact"] == "fig5"

    def test_manifest_is_not_a_cache_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        write_shard_manifest(tmp_path, ShardSpec(0, 1), KEYS)
        assert len(cache) == 0  # *.json glob must not see manifests

    def test_read_rejects_non_manifests(self, tmp_path):
        bogus = tmp_path / "x.manifest"
        bogus.write_text("{}")
        with pytest.raises(MergeError):
            read_shard_manifest(bogus)
        bogus.write_text("not json")
        with pytest.raises(MergeError):
            read_shard_manifest(bogus)
        with pytest.raises(MergeError):
            read_shard_manifest(tmp_path / "absent.manifest")


def _run_shard(directory, index, count, configs=CONFIGS):
    """Execute one shard into ``directory`` and write its manifest."""
    spec = ShardSpec(index, count)
    cache = ResultCache(directory)
    SweepRunner(
        cache=cache, backend=ShardBackend(spec, SerialBackend())
    ).map(run_scenario, configs)
    keys = [key for key in (config_key(c) for c in configs) if spec.owns(key)]
    write_shard_manifest(directory, spec, keys)
    return keys


class TestMergeShards:
    def test_merge_assembles_union(self, tmp_path):
        keys0 = _run_shard(tmp_path / "s0", 0, 2)
        keys1 = _run_shard(tmp_path / "s1", 1, 2)
        dest = tmp_path / "merged"
        report = merge_shards(dest, [tmp_path / "s0", tmp_path / "s1"])
        assert report.complete
        assert report.copied == len(KEYS)
        assert report.shard_count == 2
        assert report.shards_seen == {0, 1}
        assert sorted(p.stem for p in dest.glob("*.json")) == sorted(
            keys0 + keys1
        )
        # merged cache serves every cell without recomputation
        cache = ResultCache(dest)
        results = SweepRunner(cache=cache).map(run_scenario, CONFIGS)
        assert cache.stats.hits == len(CONFIGS)
        assert cache.stats.stores == 0
        assert all(result is not None for result in results)

    def test_merge_is_idempotent(self, tmp_path):
        _run_shard(tmp_path / "s0", 0, 1)
        dest = tmp_path / "merged"
        first = merge_shards(dest, [tmp_path / "s0"])
        second = merge_shards(dest, [tmp_path / "s0"])
        assert first.copied == len(KEYS)
        assert second.copied == 0
        assert second.already_present == len(KEYS)

    def test_partial_merge_reports_missing_shards(self, tmp_path):
        _run_shard(tmp_path / "s0", 0, 3)
        report = merge_shards(tmp_path / "merged", [tmp_path / "s0"])
        assert not report.complete
        assert report.missing_shards == [1, 2]
        assert "no manifest for shard(s) 1, 2" in report.summary()

    def test_missing_cell_files_tolerated(self, tmp_path):
        keys = _run_shard(tmp_path / "s0", 0, 1)
        victim = tmp_path / "s0" / f"{keys[0]}.json"
        victim.unlink()  # e.g. GC'd after the manifest was written
        report = merge_shards(tmp_path / "merged", [tmp_path / "s0"])
        assert report.missing == 1
        assert report.copied == len(keys) - 1
        assert not report.complete

    def test_refuses_schema_mismatch(self, tmp_path):
        _run_shard(tmp_path / "s0", 0, 1)
        path = manifest_path(tmp_path / "s0", ShardSpec(0, 1))
        payload = json.loads(path.read_text())
        payload["schema"] = payload["schema"] + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(MergeError, match="schema"):
            merge_shards(tmp_path / "merged", [tmp_path / "s0"])

    def test_refuses_version_mismatch(self, tmp_path):
        _run_shard(tmp_path / "s0", 0, 1)
        path = manifest_path(tmp_path / "s0", ShardSpec(0, 1))
        payload = json.loads(path.read_text())
        payload["version"] = "0.0.0-elsewhere"
        path.write_text(json.dumps(payload))
        with pytest.raises(MergeError, match="0.0.0-elsewhere"):
            merge_shards(tmp_path / "merged", [tmp_path / "s0"])

    def test_refuses_shard_count_mismatch(self, tmp_path):
        _run_shard(tmp_path / "s0", 0, 2)
        _run_shard(tmp_path / "s1", 0, 3)
        with pytest.raises(MergeError, match="shard count"):
            merge_shards(tmp_path / "m", [tmp_path / "s0", tmp_path / "s1"])

    def test_refuses_sources_without_manifest(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(MergeError, match="no shard manifest"):
            merge_shards(tmp_path / "merged", [empty])

    def test_refuses_file_destination(self, tmp_path):
        _run_shard(tmp_path / "s0", 0, 1)
        occupied = tmp_path / "occupied"
        occupied.write_text("")
        with pytest.raises(MergeError, match="not a directory"):
            merge_shards(occupied, [tmp_path / "s0"])
