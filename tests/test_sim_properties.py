"""Property-based tests of the kernel's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.rng import derive_seed

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


@given(delays)
def test_events_process_in_nondecreasing_time_order(delay_list):
    """The clock never runs backwards, whatever the scheduling order."""
    sim = Simulator(seed=0)
    seen = []
    for delay in delay_list:
        sim.call_later(delay, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delay_list)


@given(delays)
def test_equal_time_events_preserve_insertion_order(delay_list):
    """Ties break by insertion order (determinism requirement)."""
    sim = Simulator(seed=0)
    common = 5.0
    order = []
    for index, _ in enumerate(delay_list):
        sim.call_later(common, lambda index=index: order.append(index))
    sim.run()
    assert order == list(range(len(delay_list)))


@given(delays, st.integers(min_value=0, max_value=2**31))
def test_run_until_never_overshoots(delay_list, seed):
    """After run(until=h) the clock equals h and no later event has run."""
    sim = Simulator(seed=seed)
    horizon = 100.0
    fired = []
    for delay in delay_list:
        sim.call_later(delay, lambda delay=delay: fired.append(delay))
    sim.run(until=horizon)
    assert sim.now == horizon
    assert all(delay <= horizon for delay in fired)


@given(st.integers(min_value=0, max_value=2**62), st.text(max_size=30))
def test_derive_seed_is_pure(master, name):
    assert derive_seed(master, name) == derive_seed(master, name)


@settings(max_examples=25)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=0, max_value=1000),
)
def test_process_timeout_accumulation(steps, seed):
    """A process sleeping a series of timeouts wakes at their prefix sums."""
    sim = Simulator(seed=seed)
    wake_times = []

    def sleeper():
        for delay, repeat in steps:
            for _ in range(repeat):
                yield sim.timeout(delay)
            wake_times.append(sim.now)

    sim.process(sleeper())
    sim.run()
    expected = []
    acc = 0.0
    for delay, repeat in steps:
        acc += delay * repeat
        expected.append(acc)
    for measured, exact in zip(wake_times, expected):
        assert abs(measured - exact) < 1e-6 * max(1.0, exact)
