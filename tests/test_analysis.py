"""Analysis sweeps behind Figures 1-4."""

import pytest

from repro.analysis import (
    Series,
    burst_savings_fraction,
    crossover_table,
    fig1_energy_vs_size,
    fig2_breakeven_vs_idle,
    fig3_breakeven_vs_forward_progress,
    fig4_savings_vs_burst,
    knee_burst_size,
)
from repro.energy.radio_specs import CABLETRON, LUCENT_2, LUCENT_11


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("x", (1.0, 2.0), (1.0,))


class TestFig1:
    def test_six_curves(self):
        series = fig1_energy_vs_size()
        labels = [s.label for s in series]
        assert labels == [
            "Mica",
            "Mica2",
            "Micaz",
            "Cabletron-Micaz",
            "Lucent (2Mbps)-Micaz",
            "Lucent (11Mbps)-Micaz",
        ]

    def test_energies_increase_with_size(self):
        for series in fig1_energy_vs_size():
            assert list(series.y) == sorted(series.y)

    def test_lucent11_crosses_micaz(self):
        """The headline crossover: dual beats Micaz at large sizes only."""
        series = {s.label: s for s in fig1_energy_vs_size()}
        micaz = series["Micaz"]
        dual = series["Lucent (11Mbps)-Micaz"]
        assert dual.y[0] > micaz.y[0]  # at 0.1 KB the fixed cost dominates
        assert dual.y[-1] < micaz.y[-1]  # at 10 KB the dual radio wins

    def test_crossover_table(self):
        table = crossover_table()
        assert table["Cabletron-Micaz"] == float("inf")
        assert table["Lucent (2Mbps)-Micaz"] == float("inf")
        assert 0 < table["Lucent (11Mbps)-Micaz"] < 1.0  # below 1 KB


class TestFig2:
    def test_seven_pairings(self):
        assert len(fig2_breakeven_vs_idle()) == 7

    def test_breakeven_grows_with_idle(self):
        for series in fig2_breakeven_vs_idle():
            finite = [y for y in series.y if y != float("inf")]
            assert finite == sorted(finite)

    def test_paper_range_at_1s(self):
        """Fig. 2: tens to hundreds of KB at ~1 s of idling."""
        for series in fig2_breakeven_vs_idle(idle_times_s=[1.0]):
            value = series.y[0]
            assert 10 < value < 1000


class TestFig3:
    def test_six_pairings(self):
        assert len(fig3_breakeven_vs_forward_progress()) == 6

    def test_monotone_decreasing(self):
        for series in fig3_breakeven_vs_forward_progress():
            finite = [y for y in series.y if y != float("inf")]
            assert finite == sorted(finite, reverse=True)

    def test_micaz_pairs_become_feasible_with_hops(self):
        """Fig. 3's key point: Cabletron/Lucent-2 + Micaz need hops."""
        for series in fig3_breakeven_vs_forward_progress():
            if series.label.endswith("Micaz"):
                assert series.y[0] == float("inf")
                assert series.y[-1] != float("inf")

    def test_mica_pairs_always_feasible(self):
        for series in fig3_breakeven_vs_forward_progress():
            if series.label.endswith("-Mica"):
                assert all(y != float("inf") for y in series.y)


class TestFig4:
    def test_six_curves_with_idle_variants(self):
        labels = [s.label for s in fig4_savings_vs_burst()]
        assert "Cabletron" in labels
        assert "Cabletron-Idle" in labels
        assert len(labels) == 6

    def test_savings_zero_at_one_packet(self):
        for spec in (CABLETRON, LUCENT_2, LUCENT_11):
            assert burst_savings_fraction(spec, 1) == pytest.approx(0.0)

    def test_savings_monotone_in_burst(self):
        for series in fig4_savings_vs_burst():
            assert list(series.y) == sorted(series.y)

    def test_savings_bounded_below_one(self):
        for series in fig4_savings_vs_burst():
            assert all(0.0 <= y < 1.0 for y in series.y)

    def test_idle_variant_saves_more(self):
        """Fig. 4: 'the energy savings are greater when nodes idle 100 ms
        before turning off'."""
        by_label = {s.label: s for s in fig4_savings_vs_burst()}
        for name in ("Cabletron", "Lucent (2Mbps)", "Lucent (11Mbps)"):
            base = by_label[name]
            idle = by_label[f"{name}-Idle"]
            assert all(i >= b for b, i in zip(base.y[1:], idle.y[1:]))

    def test_idle_savings_reach_high_fractions(self):
        """Fig. 4: idle curves approach 0.8-0.95."""
        by_label = {s.label: s for s in fig4_savings_vs_burst()}
        for name in ("Cabletron", "Lucent (2Mbps)", "Lucent (11Mbps)"):
            assert by_label[f"{name}-Idle"].y[-1] > 0.75

    def test_paper_rule_of_thumb_knee(self):
        """Fig. 4: 'the majority of savings are obtained when n = 10'."""
        for spec in (CABLETRON, LUCENT_2, LUCENT_11):
            assert knee_burst_size(spec) <= 10

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            burst_savings_fraction(CABLETRON, 0)

    def test_invalid_capture_fraction(self):
        with pytest.raises(ValueError):
            knee_burst_size(CABLETRON, capture_fraction=1.0)
