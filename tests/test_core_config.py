"""BCP configuration: thresholds from break-even analysis and burst sizes."""

import pytest

from repro.core.config import RULE_OF_THUMB_THRESHOLD_BYTES, BcpConfig
from repro.core.messages import (
    ControlEnvelope,
    Wakeup,
    WakeupAck,
    new_session_id,
)
from repro.energy.breakeven import DualRadioLink, breakeven_bits
from repro.energy.radio_specs import CABLETRON, LUCENT_11, MICAZ


class TestBcpConfig:
    def test_defaults_use_rule_of_thumb(self):
        assert BcpConfig().threshold_bytes == RULE_OF_THUMB_THRESHOLD_BYTES

    def test_threshold_positive(self):
        with pytest.raises(ValueError):
            BcpConfig(threshold_bytes=0)

    def test_buffer_must_hold_threshold(self):
        with pytest.raises(ValueError):
            BcpConfig(threshold_bytes=1000, buffer_capacity_bytes=500)

    def test_from_breakeven_scales_by_alpha(self):
        link = DualRadioLink(low=MICAZ, high=LUCENT_11)
        config = BcpConfig.from_breakeven(link, alpha=2.0)
        expected = 2.0 * breakeven_bits(link) / 8.0
        assert config.threshold_bytes == pytest.approx(expected)

    def test_from_breakeven_infeasible_falls_back(self):
        """Section 3: without known characteristics use ~10 KB."""
        link = DualRadioLink(low=MICAZ, high=CABLETRON)
        config = BcpConfig.from_breakeven(link, alpha=2.0)
        assert config.threshold_bytes == RULE_OF_THUMB_THRESHOLD_BYTES

    def test_from_breakeven_alpha_positive(self):
        link = DualRadioLink(low=MICAZ, high=LUCENT_11)
        with pytest.raises(ValueError):
            BcpConfig.from_breakeven(link, alpha=0)

    def test_for_burst_packets_matches_section41(self):
        config = BcpConfig.for_burst_packets(500)
        assert config.threshold_bytes == 500 * 32

    def test_for_burst_packets_positive(self):
        with pytest.raises(ValueError):
            BcpConfig.for_burst_packets(0)

    def test_overrides_flow_through(self):
        config = BcpConfig.for_burst_packets(
            10, flow_control=False, idle_linger_s=0.1
        )
        assert not config.flow_control
        assert config.idle_linger_s == 0.1


class TestMessages:
    def test_session_ids_unique(self):
        assert new_session_id() != new_session_id()

    def test_wakeup_fields(self):
        wakeup = Wakeup(origin=1, target=2, session_id=9, burst_bytes=16000)
        assert wakeup.burst_bytes == 16000

    def test_ack_fields(self):
        ack = WakeupAck(origin=2, target=1, session_id=9, allowed_bytes=8000)
        assert ack.allowed_bytes == 8000

    def test_envelope_forwarding_decrements_ttl(self):
        envelope = ControlEnvelope("msg", src=1, dst=5, ttl=3)
        hop = envelope.forwarded()
        assert hop.ttl == 2
        assert hop.message == "msg"
        assert envelope.ttl == 3  # original untouched
