"""Property tests: the lazy and eager routing engines are equivalent.

The contract (ISSUE 4): for grid, uniform-random and clustered
deployments, in both tie-break modes, the two engines agree on next-hop
and hop-count for every reachable pair — and the lazy engine's answers do
not depend on the order destinations are first queried in.

The seeded-rng comparison uses the shared *per-destination* tie-break
scheme (``RoutingTable(..., tie_break="per-destination")``), the only
seeded scheme that is computable lazily; the eager default ``threaded``
scheme stays pinned separately by the golden digests
(tests/test_determinism.py).  Against ``threaded`` we still assert
hop-count equality: tie-breaking chooses *which* shortest path, never its
length.

PR 10 adds a third engine — :class:`DijkstraRoutingTable`, the cost
engine behind the routing policies — whose contract is stronger than
shortest-path agreement: under **unit edge costs** its trees must be
*draw-for-draw identical* to the BFS engines' (FIFO heap order == BFS
frontier order; one shuffle per settled node).  That exact equivalence is
what lets the policy machinery ship without re-pinning a single
``policy="hops"`` golden digest, so it gets its own property tests here,
including through an ``invalidate_epoch`` after node deaths.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.csr import CsrGraph
from repro.net.routing import (
    DijkstraRoutingTable,
    LazyRoutingTable,
    RoutingTable,
)
from repro.topology.layout import clustered_layout, grid_layout, random_layout

RANGE_M = 60.0


def _make_layout(kind: str, size: int, seed: int):
    if kind == "grid":
        rows = max(2, size // 6)
        return grid_layout(rows, 6, 40.0)
    if kind == "uniform-random":
        return random_layout(size, 180.0, 180.0, random.Random(seed))
    return clustered_layout(
        size, 180.0, 180.0, random.Random(seed), clusters=3, sigma_m=25.0
    )


topology_kinds = st.sampled_from(["grid", "uniform-random", "clustered"])
sizes = st.integers(min_value=6, max_value=36)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
modes = st.sampled_from(["sorted", "seeded"])


def _engines(kind, size, seed, mode):
    layout = _make_layout(kind, size, seed)
    graph = layout.graph(RANGE_M)
    if mode == "sorted":
        eager = RoutingTable(graph)
        lazy = LazyRoutingTable(CsrGraph.from_layout(layout, RANGE_M))
    else:
        eager = RoutingTable(
            graph, rng=random.Random(seed), tie_break="per-destination"
        )
        lazy = LazyRoutingTable(
            CsrGraph.from_layout(layout, RANGE_M), rng=random.Random(seed)
        )
    return layout, eager, lazy


@given(kind=topology_kinds, size=sizes, seed=seeds, mode=modes)
@settings(max_examples=40, deadline=None)
def test_engines_agree_on_next_hop_and_hops(kind, size, seed, mode):
    layout, eager, lazy = _engines(kind, size, seed, mode)
    # Query the lazy engine in a shuffled pair order: agreement must hold
    # regardless of which destination's tree materializes first.
    pairs = [
        (a, b) for a in layout.node_ids for b in layout.node_ids if a != b
    ]
    random.Random(seed ^ 0xA5A5).shuffle(pairs)
    for src, dst in pairs:
        assert lazy.has_route(src, dst) == eager.has_route(src, dst)
        if eager.has_route(src, dst):
            assert lazy.hops(src, dst) == eager.hops(src, dst)
            assert lazy.next_hop(src, dst) == eager.next_hop(src, dst)


@given(kind=topology_kinds, size=sizes, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_lazy_hops_match_threaded_eager(kind, size, seed):
    """Hop counts are tie-break-invariant: lazy(rng) == eager threaded."""
    layout = _make_layout(kind, size, seed)
    threaded = RoutingTable(layout.graph(RANGE_M), rng=random.Random(seed))
    lazy = LazyRoutingTable(
        CsrGraph.from_layout(layout, RANGE_M), rng=random.Random(seed + 1)
    )
    for src in layout.node_ids:
        for dst in layout.node_ids:
            if src == dst:
                continue
            assert lazy.has_route(src, dst) == threaded.has_route(src, dst)
            if threaded.has_route(src, dst):
                assert lazy.hops(src, dst) == threaded.hops(src, dst)


class _UnitCost:
    """A hand-rolled LinkCostModel charging 1.0 per hop, no factors.

    Deliberately *not* the registry's ``hops`` policy (which maps to the
    BFS engines): this exercises the Dijkstra engine itself on the exact
    cost surface where its trees must reproduce BFS byte-for-byte.
    """

    dynamic = False

    def edge_costs(self, csr, layout):
        return [1.0] * len(csr.indices)

    def node_factors(self, csr):
        return None


def _dijkstra(layout, seed=None):
    rng = None if seed is None else random.Random(seed)
    return DijkstraRoutingTable(
        CsrGraph.from_layout(layout, RANGE_M),
        _UnitCost(),
        layout=layout,
        rng=rng,
    )


def _assert_same_routes(layout, reference, dijkstra, pair_seed=0):
    """Next-hop/hops/reachability identity over every (src, dst) pair.

    Pairs are queried in a shuffled order so tree materialization order
    can't mask an order dependence in either lazy engine.
    """
    pairs = [
        (a, b) for a in layout.node_ids for b in layout.node_ids if a != b
    ]
    random.Random(pair_seed ^ 0x5A5A).shuffle(pairs)
    for src, dst in pairs:
        assert dijkstra.has_route(src, dst) == reference.has_route(src, dst)
        if reference.has_route(src, dst):
            assert dijkstra.hops(src, dst) == reference.hops(src, dst)
            assert dijkstra.next_hop(src, dst) == reference.next_hop(src, dst)


@given(kind=topology_kinds, size=sizes, seed=seeds, mode=modes)
@settings(max_examples=40, deadline=None)
def test_dijkstra_unit_costs_reproduce_bfs_trees(kind, size, seed, mode):
    """Unit-cost Dijkstra == lazy BFS == per-destination eager, exactly."""
    layout, eager, lazy = _engines(kind, size, seed, mode)
    dijkstra = _dijkstra(layout, seed=None if mode == "sorted" else seed)
    _assert_same_routes(layout, lazy, dijkstra, pair_seed=seed)
    _assert_same_routes(layout, eager, dijkstra, pair_seed=seed + 1)


@given(kind=topology_kinds, size=sizes, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_dijkstra_equivalence_survives_epoch_invalidation(kind, size, seed):
    """After node deaths both engines re-agree on the surviving topology.

    Also pins the epoch bookkeeping itself: dead nodes neither originate,
    relay, nor terminate routes on either engine.
    """
    layout = _make_layout(kind, size, seed)
    nodes = list(layout.node_ids)
    lazy = LazyRoutingTable(
        CsrGraph.from_layout(layout, RANGE_M), rng=random.Random(seed)
    )
    dijkstra = _dijkstra(layout, seed=seed)
    # Settle some pre-death trees so invalidation actually has state to
    # drop, then kill ~1/4 of the fleet (never all of it).
    probe = nodes[len(nodes) // 2]
    for src in nodes:
        if src != probe:
            lazy.has_route(src, probe)
            dijkstra.has_route(src, probe)
    deaths = random.Random(seed ^ 0xD00D)
    dead = set(deaths.sample(nodes, max(1, len(nodes) // 4)))
    lazy.invalidate_epoch(1, dead)
    dijkstra.invalidate_epoch(1, dead)
    assert dijkstra.epoch == lazy.epoch == 1
    _assert_same_routes(layout, lazy, dijkstra, pair_seed=seed)
    for node in dead:
        alive = next(n for n in nodes if n not in dead)
        assert not dijkstra.has_route(alive, node)
        assert not dijkstra.has_route(node, alive)


@given(kind=topology_kinds, size=sizes, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_next_hop_is_a_neighbor_one_step_closer(kind, size, seed):
    """Structural soundness of the lazy trees: each hop descends the tree."""
    layout = _make_layout(kind, size, seed)
    lazy = LazyRoutingTable(
        CsrGraph.from_layout(layout, RANGE_M), rng=random.Random(seed)
    )
    nodes = list(layout.node_ids)
    sink = nodes[0]
    for src in nodes[1:]:
        if not lazy.has_route(src, sink):
            continue
        hop = lazy.next_hop(src, sink)
        assert lazy.has_edge(src, hop)
        expected = 0 if hop == sink else lazy.hops(hop, sink)
        assert expected == lazy.hops(src, sink) - 1
