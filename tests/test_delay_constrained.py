"""Delay-constrained hybrid delivery — the paper's Section 5 future work.

"Based on delay constraints, the low-power radio can also be allowed to
send data."  With ``max_delay_s`` configured, BCP flushes packets over the
low-power radio when buffering would violate their deadline; without it,
data waits for the threshold indefinitely (the paper's pure BCP).
"""

import pytest

from repro.core.config import BcpConfig

from tests.test_bcp import DualNet


def config_with_deadline(max_delay_s, threshold_packets=50):
    return BcpConfig.for_burst_packets(
        threshold_packets, max_delay_s=max_delay_s
    )


class TestDeadlineFlush:
    def test_pure_bcp_waits_forever_below_threshold(self):
        net = DualNet(config=config_with_deadline(None))
        net.inject(0, 5)  # far below the 50-packet threshold
        net.sim.run(until=60.0)
        assert net.delivered == []

    def test_deadline_flushes_over_low_radio(self):
        net = DualNet(config=config_with_deadline(2.0))
        net.inject(0, 5)
        net.sim.run(until=10.0)
        assert len(net.delivered) == 5
        assert net.agents[0].stats.packets_sent_low == 5
        # No bulk machinery was used.
        assert net.agents[0].stats.wakeups_sent == 0
        assert not net.high_radios[0].is_on

    def test_delay_bounded_by_budget(self):
        net = DualNet(config=config_with_deadline(2.0))
        net.inject(0, 5)
        net.sim.run(until=10.0)
        for packet in net.delivered:
            assert packet.created_s + 2.0 <= net.sim.now
        # Delivered shortly after the 2 s budget, not at sim end.
        assert net.sim.now >= 2.0

    def test_threshold_still_preferred_when_reached_in_time(self):
        """Data that fills a burst before its deadline goes high-power."""
        config = BcpConfig.for_burst_packets(4, max_delay_s=30.0)
        net = DualNet(config=config)
        net.inject(0, 4)
        net.sim.run(until=40.0)
        assert len(net.delivered) == 4
        assert net.agents[0].stats.wakeups_sent == 1
        assert net.agents[0].stats.packets_sent_low == 0

    def test_multihop_low_radio_forwarding(self):
        """Flushed packets relay hop-by-hop over the low radio."""
        net = DualNet(n=3, config=config_with_deadline(2.0))
        net.inject(0, 5)  # sink is node 2, two low hops away
        net.sim.run(until=10.0)
        assert len(net.delivered) == 5
        assert all(packet.hops == 2 for packet in net.delivered)
        # The relay (node 1) forwarded over its low radio too.
        assert net.agents[1].stats.packets_sent_low == 5

    def test_mixed_traffic_splits_by_deadline(self):
        """A burst that fills in time rides the 802.11 radio; a trickle
        that cannot is rescued by the low radio."""
        config = BcpConfig.for_burst_packets(10, max_delay_s=5.0)
        net = DualNet(config=config)
        net.inject(0, 10)  # instant burst -> high radio
        net.sim.run(until=2.0)
        net.inject(0, 3)  # trickle -> deadline flush
        net.sim.run(until=20.0)
        assert len(net.delivered) == 13
        assert net.agents[0].stats.packets_sent_low == 3
        assert net.agents[0].stats.wakeups_sent == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BcpConfig(max_delay_s=0.0)
