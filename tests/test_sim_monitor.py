"""Probes, counters and probe sets."""

import pytest

from repro.sim import Counter, Probe, ProbeSet, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestProbe:
    def test_records_with_timestamps(self, sim):
        probe = Probe(sim, "delay")

        def worker():
            for value in (1.0, 2.0, 3.0):
                yield sim.timeout(1)
                probe.record(value)

        sim.process(worker())
        sim.run()
        assert probe.series() == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]

    def test_statistics(self, sim):
        probe = Probe(sim, "p")
        for value in (2.0, 4.0, 6.0):
            probe.record(value)
        assert probe.total == 12.0
        assert probe.mean == 4.0
        assert probe.last == 6.0
        assert len(probe) == 3

    def test_empty_probe_statistics(self, sim):
        probe = Probe(sim, "empty")
        assert probe.mean == 0.0
        assert probe.last is None
        assert probe.total == 0.0


class TestCounter:
    def test_add_default_one(self):
        counter = Counter("c")
        counter.add()
        counter.add()
        assert counter.value == 2.0

    def test_add_amount(self):
        counter = Counter("c")
        counter.add(2.5)
        assert counter.value == 2.5


class TestProbeSet:
    def test_same_name_same_object(self, sim):
        probes = ProbeSet(sim, prefix="node1.")
        assert probes.probe("delay") is probes.probe("delay")
        assert probes.counter("drops") is probes.counter("drops")

    def test_prefix_applied(self, sim):
        probes = ProbeSet(sim, prefix="node1.")
        assert probes.probe("delay").name == "node1.delay"
        assert probes.counter("drops").name == "node1.drops"
