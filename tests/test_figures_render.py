"""Figure rendering with injected sweep data (no simulation cost)."""

import pytest

from repro.models.sweeps import SweepCell, SweepData
from repro.report import figures
from repro.stats.metrics import (
    ENERGY_HIGH_RADIO,
    ENERGY_LOW_RADIO,
    ENERGY_SENSOR_FULL,
    ENERGY_SENSOR_HEADER,
    ENERGY_SENSOR_IDEAL,
    ENERGY_TOTAL,
    RunResult,
)


def fake_result(model, delivered=1000.0, energy=1.0, delay=2.0):
    return RunResult(
        model=model,
        sim_time_s=100.0,
        generated_bits=1200.0,
        delivered_bits=delivered,
        mean_delay_s=delay,
        max_delay_s=delay * 3,
        energy_j={
            ENERGY_TOTAL: energy,
            ENERGY_SENSOR_IDEAL: energy * 0.5,
            ENERGY_SENSOR_HEADER: energy * 0.7,
            ENERGY_SENSOR_FULL: energy * 0.9,
            ENERGY_LOW_RADIO: energy * 0.5,
            ENERGY_HIGH_RADIO: energy * 0.5,
        },
    )


@pytest.fixture
def fake_sweep():
    cells = {
        "DualRadio-10": {
            5: SweepCell([fake_result("dual", energy=2.0, delay=1.0)]),
            35: SweepCell([fake_result("dual", energy=2.5, delay=1.1)]),
        },
        "DualRadio-100": {
            5: SweepCell([fake_result("dual", energy=0.8, delay=6.0)]),
            35: SweepCell([fake_result("dual", energy=1.0, delay=6.5)]),
        },
        "Sensor": {
            5: SweepCell([fake_result("sensor", energy=1.5)]),
            35: SweepCell([fake_result("sensor", energy=3.0,
                                       delivered=400.0)]),
        },
        "802.11": {
            5: SweepCell([fake_result("wifi", energy=300.0)]),
            35: SweepCell([fake_result("wifi", energy=300.0)]),
        },
    }
    return SweepData(case="SH", rate_bps=2000.0, sim_time_s=100.0,
                     n_runs=1, cells=cells)


class TestInjectedSweepRendering:
    def test_fig5_renders_all_labels(self, fake_sweep):
        text = figures.fig5(sweep=fake_sweep)
        for label in ("DualRadio-10", "DualRadio-100", "Sensor", "802.11"):
            assert label in text

    def test_fig6_splits_sensor_and_drops_wifi(self, fake_sweep):
        text = figures.fig6(sweep=fake_sweep)
        assert "Sensor-ideal" in text
        assert "Sensor-header" in text
        assert "802.11" not in text

    def test_fig7_one_line_per_sender_count(self, fake_sweep):
        text = figures.fig7(sweep=fake_sweep)
        assert '# series "0.2Kbps-5"' in text
        assert '# series "0.2Kbps-35"' in text

    def test_fig8_9_10_mh_variants(self, fake_sweep):
        fake_sweep.case = "MH"
        assert "Goodput" in figures.fig8(sweep=fake_sweep)
        assert "J/Kbit" in figures.fig9(sweep=fake_sweep)
        assert "0.2Kbps-5" in figures.fig10(sweep=fake_sweep)

    def test_fig11_12_with_coarse_thresholds(self):
        text11 = figures.fig11(thresholds=[1024, 4096])
        assert "Dual-Radio" in text11 and "Sensor Radio" in text11
        text12 = figures.fig12(thresholds=[1024, 4096])
        assert "Delay / Packet" in text12
