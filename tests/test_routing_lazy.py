"""Unit tests for the CSR adjacency and the lazy routing engine."""

import random

import pytest

from repro.models.scenario import ScenarioConfig
from repro.net.csr import CsrGraph
from repro.net.routing import (
    LazyRoutingTable,
    RoutingError,
    RoutingTable,
    build_routing,
    tree_depths,
)
from repro.topology.layout import (
    Layout,
    grid_layout,
    line_layout,
    random_layout,
)
from repro.topology.geometry import Position


def _edge_set_nx(graph):
    return {tuple(sorted(edge)) for edge in graph.edges}


def _edge_set_csr(csr):
    return {
        tuple(sorted((csr.ids[i], csr.ids[j])))
        for i in range(len(csr.ids))
        for j in csr.indices[csr.indptr[i] : csr.indptr[i + 1]]
    }


class TestCsrGraph:
    def test_from_layout_matches_networkx_grid(self):
        layout = grid_layout(5, 5, 40.0)
        csr = CsrGraph.from_layout(layout, 40.0)
        assert _edge_set_csr(csr) == _edge_set_nx(layout.graph(40.0))

    def test_from_layout_matches_networkx_random(self):
        layout = random_layout(60, 200.0, 200.0, random.Random(11))
        csr = CsrGraph.from_layout(layout, 55.0)
        assert _edge_set_csr(csr) == _edge_set_nx(layout.graph(55.0))

    def test_from_networkx_round_trip(self):
        graph = grid_layout(3, 4, 40.0).graph(40.0)
        csr = CsrGraph.from_networkx(graph)
        assert _edge_set_csr(csr) == _edge_set_nx(graph)

    def test_from_links(self):
        csr = CsrGraph.from_links([3, 1, 2], [(1, 3), (3, 2)])
        assert csr.ids == (1, 2, 3)
        assert csr.neighbor_ids(3) == [1, 2]
        assert csr.neighbor_ids(1) == [3]
        assert csr.n_edges == 2

    def test_has_edge(self):
        csr = CsrGraph.from_links([0, 1, 2], [(0, 1)])
        assert csr.has_edge(0, 1) and csr.has_edge(1, 0)
        assert not csr.has_edge(0, 2)
        assert not csr.has_edge(0, 99)  # unknown node: False, not KeyError

    def test_rows_sorted_ascending(self):
        layout = random_layout(30, 120.0, 120.0, random.Random(5))
        csr = CsrGraph.from_layout(layout, 50.0)
        for node in csr.ids:
            row = csr.neighbor_ids(node)
            assert row == sorted(row)

    def test_membership_and_len(self):
        csr = CsrGraph.from_links([4, 7], [(4, 7)])
        assert 4 in csr and 7 in csr and 5 not in csr
        assert len(csr) == 2

    def test_epsilon_over_range_edge_survives_cell_boundaries(self):
        # in_range() accepts distances up to range + RANGE_EPSILON_M; an
        # edge a hair past the nominal range can straddle two cell
        # boundaries of a range-sized hash, so the cells must be sized to
        # the inclusive reach.  layout.graph is the ground truth.
        layout = Layout(
            {0: Position(39.9999999, 0.0), 1: Position(80.0000004, 0.0)}
        )
        assert _edge_set_nx(layout.graph(40.0)) == {(0, 1)}
        csr = CsrGraph.from_layout(layout, 40.0)
        assert csr.has_edge(0, 1)


def _two_islands() -> Layout:
    """Two 2-node clusters far beyond radio range of each other."""
    return Layout(
        {
            0: Position(0.0, 0.0),
            1: Position(10.0, 0.0),
            2: Position(500.0, 0.0),
            3: Position(510.0, 0.0),
        }
    )


@pytest.mark.parametrize("engine", ["eager", "lazy"])
class TestRoutingErrorPaths:
    """Disconnected pairs raise a documented RoutingError on both engines."""

    def test_next_hop_disconnected_raises(self, engine):
        table = build_routing(_two_islands(), 40.0, engine=engine)
        with pytest.raises(RoutingError, match="no route from 0 to 2"):
            table.next_hop(0, 2)

    def test_hops_disconnected_raises(self, engine):
        table = build_routing(_two_islands(), 40.0, engine=engine)
        with pytest.raises(RoutingError, match="no route"):
            table.hops(3, 1)

    def test_path_disconnected_raises(self, engine):
        table = build_routing(_two_islands(), 40.0, engine=engine)
        with pytest.raises(RoutingError):
            table.path(1, 3)

    def test_has_route_is_the_probe(self, engine):
        table = build_routing(_two_islands(), 40.0, engine=engine)
        assert table.has_route(0, 1)
        assert not table.has_route(0, 2)
        assert table.has_route(2, 2)

    def test_self_routing_raises_but_zero_hops(self, engine):
        table = build_routing(_two_islands(), 40.0, engine=engine)
        with pytest.raises(RoutingError, match="routing to itself"):
            table.next_hop(2, 2)
        assert table.hops(2, 2) == 0
        assert table.path(2, 2) == [2]

    def test_unknown_node_ids_raise_routing_error(self, engine):
        # Ids outside the graph go through the same documented paths as
        # disconnected pairs — RoutingError / has_route False, never a
        # bare KeyError.
        table = build_routing(_two_islands(), 40.0, engine=engine)
        with pytest.raises(RoutingError, match="no route"):
            table.next_hop(0, 99)
        with pytest.raises(RoutingError, match="no route"):
            table.hops(99, 0)
        assert not table.has_route(0, 99)
        assert not table.has_route(99, 0)
        assert table.has_route(99, 99)  # trivially self-routable
        assert table.depths_to(99) == {}


class TestLazyRoutingTable:
    def test_sorted_mode_matches_eager_exactly(self):
        layout = grid_layout(5, 5, 40.0)
        eager = RoutingTable(layout.graph(40.0))
        lazy = build_routing(layout, 40.0, engine="lazy")
        for src in layout.node_ids:
            for dst in layout.node_ids:
                if src == dst:
                    continue
                assert lazy.next_hop(src, dst) == eager.next_hop(src, dst)
                assert lazy.hops(src, dst) == eager.hops(src, dst)

    def test_trees_memoized(self):
        layout = grid_layout(4, 4, 40.0)
        lazy = build_routing(layout, 40.0, engine="lazy")
        assert lazy.trees_computed == 0
        lazy.next_hop(3, 0)
        assert lazy.trees_computed == 1
        lazy.hops(7, 0)
        lazy.next_hop(12, 0)
        assert lazy.trees_computed == 1  # same destination, no new BFS
        lazy.next_hop(0, 5)
        assert lazy.trees_computed == 2

    def test_rng_mode_is_query_order_independent(self):
        layout = random_layout(40, 160.0, 160.0, random.Random(3))
        pairs = [
            (a, b)
            for a in layout.node_ids
            for b in layout.node_ids
            if a != b
        ]
        forward = LazyRoutingTable.from_layout(
            layout, 60.0, rng=random.Random(9)
        )
        backward = LazyRoutingTable.from_layout(
            layout, 60.0, rng=random.Random(9)
        )
        answers_fwd = {}
        for a, b in pairs:
            if forward.has_route(a, b):
                answers_fwd[(a, b)] = forward.next_hop(a, b)
        for a, b in reversed(pairs):
            if backward.has_route(a, b):
                assert backward.next_hop(a, b) == answers_fwd[(a, b)]

    def test_incremental_expansion_matches_one_shot_build(self):
        """Settling a tree level by level across interleaved queries must
        reproduce the exact tree (and rng draw sequence) of building it
        exhaustively in one go."""
        layout = random_layout(60, 200.0, 200.0, random.Random(5))
        incremental = LazyRoutingTable.from_layout(
            layout, 60.0, rng=random.Random(11)
        )
        one_shot = LazyRoutingTable.from_layout(
            layout, 60.0, rng=random.Random(11)
        )
        dst = layout.node_ids[0]
        # Partial, near-to-far queries expand the incremental tree a few
        # levels at a time; depths_to then forces full expansion on both.
        for src in layout.node_ids[1:]:
            if incremental.has_route(src, dst):
                incremental.next_hop(src, dst)
        assert incremental.depths_to(dst) == one_shot.depths_to(dst)
        for src in layout.node_ids:
            if src == dst or not one_shot.has_route(src, dst):
                continue
            assert incremental.next_hop(src, dst) == one_shot.next_hop(
                src, dst
            )
            assert incremental.hops(src, dst) == one_shot.hops(src, dst)

    def test_path_walks_to_destination(self):
        layout = line_layout(6, 40.0)
        lazy = build_routing(layout, 40.0, engine="lazy")
        assert lazy.path(0, 5) == [0, 1, 2, 3, 4, 5]
        assert lazy.path(5, 0) == [5, 4, 3, 2, 1, 0]

    def test_tree_depths_matches_eager(self):
        layout = grid_layout(4, 5, 40.0)
        eager = build_routing(layout, 40.0)
        lazy = build_routing(layout, 40.0, engine="lazy")
        assert tree_depths(lazy, 0) == tree_depths(eager, 0)

    def test_has_edge_and_len(self):
        layout = line_layout(4, 40.0)
        lazy = build_routing(layout, 40.0, engine="lazy")
        assert lazy.has_edge(1, 2) and not lazy.has_edge(0, 2)
        assert len(lazy) == 4

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown routing engine"):
            build_routing(line_layout(3), 40.0, engine="speculative")

    def test_unknown_tie_break_rejected(self):
        graph = line_layout(3).graph(40.0)
        with pytest.raises(ValueError, match="unknown tie_break"):
            RoutingTable(graph, tie_break="coin-flip")


class TestScenarioEngineSelection:
    def test_paper_grid_resolves_eager(self):
        assert ScenarioConfig().routing_engine() == "eager"

    def test_forced_engines(self):
        assert ScenarioConfig(routing="lazy").routing_engine() == "lazy"
        assert ScenarioConfig(routing="eager").routing_engine() == "eager"

    def test_auto_switches_above_threshold(self):
        from repro.topology.registry import TopologySpec

        config = ScenarioConfig(
            topology=TopologySpec.of(
                "uniform-random", n=300, width_m=400.0, height_m=400.0
            ),
            sink=0,
            n_senders=5,
        )
        assert config.routing_engine() == "lazy"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown routing engine"):
            ScenarioConfig(routing="bogus")

    def test_lazy_scenario_runs_end_to_end(self):
        from repro.models.scenario import run_scenario

        result = run_scenario(
            ScenarioConfig(
                routing="lazy",
                n_senders=5,
                rate_bps=2000.0,
                burst_packets=10,
                sim_time_s=30.0,
            )
        )
        assert result.delivered_bits > 0
