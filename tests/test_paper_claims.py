"""End-to-end shape checks of the paper's evaluation claims (Figs. 5-10).

These run the full 36-node grid at reduced time scale (the shapes the
paper reports are driven by mechanisms — wake-up amortization, contention
collapse, buffering delay — that operate identically at a few minutes of
simulated time; only the CIs widen).  They are the slowest tests in the
suite.

Scale note: the largest paper bursts (1000/2500 packets) need thousands of
simulated seconds just to fill their buffers (e.g. 2500 x 32 B at 2 kb/s
is 320 s per burst), so the bench-scale claims here use bursts 10-500;
``repro fig5 --paper`` runs the full parameterization.
"""

import pytest

from repro.models import (
    MODEL_SENSOR,
    MODEL_WIFI,
    multi_hop_config,
    run_scenario,
    single_hop_config,
)
from repro.stats.metrics import (
    ENERGY_SENSOR_HEADER,
    ENERGY_SENSOR_IDEAL,
)


@pytest.fixture(scope="module")
def sh_runs():
    """Single-hop case at 2 kb/s with every non-sink node sending."""
    base = single_hop_config(
        n_senders=35, rate_bps=2000.0, sim_time_s=150.0, seed=3
    )
    return {
        "sensor": run_scenario(base.replace(model=MODEL_SENSOR)),
        "wifi": run_scenario(base.replace(model=MODEL_WIFI)),
        "dual10": run_scenario(base.replace(burst_packets=10)),
        "dual100": run_scenario(base.replace(burst_packets=100)),
        "dual500": run_scenario(base.replace(burst_packets=500)),
    }


@pytest.fixture(scope="module")
def mh_runs():
    """Multi-hop case: Cabletron reaches the sink in one hop."""
    base = multi_hop_config(n_senders=35, sim_time_s=150.0, seed=3)
    return {
        "sensor": run_scenario(base.replace(model=MODEL_SENSOR)),
        "dual10": run_scenario(base.replace(burst_packets=10)),
        "dual100": run_scenario(base.replace(burst_packets=100)),
        "dual500": run_scenario(base.replace(burst_packets=500)),
    }


class TestFig5Shapes:
    def test_sensor_goodput_collapses_under_contention(self, sh_runs):
        """Fig. 5: the sensor model degrades badly with 35 senders at
        2 kb/s (contention + multi-hop losses)."""
        assert sh_runs["sensor"].goodput < 0.6

    def test_dual_small_bursts_match_wifi(self, sh_runs):
        """Fig. 5: DualRadio-10/100 perform close to pure 802.11."""
        wifi = sh_runs["wifi"].goodput
        assert sh_runs["dual10"].goodput > 0.85 * wifi
        assert sh_runs["dual100"].goodput > 0.85 * wifi

    def test_dual_beats_sensor(self, sh_runs):
        assert sh_runs["dual100"].goodput > sh_runs["sensor"].goodput + 0.2


class TestFig6Shapes:
    def test_dual_beats_sensor_header_severalfold(self, sh_runs):
        """Fig. 6: a good burst size is multiple times better than the
        overhearing-charged sensor model."""
        dual = sh_runs["dual100"].normalized_energy()
        sensor_header = sh_runs["sensor"].normalized_energy(
            ENERGY_SENSOR_HEADER
        )
        assert sensor_header / dual > 2.0

    def test_dual_approaches_sensor_ideal(self, sh_runs):
        """Fig. 6: 'the dual-radio model approaches the ideal energy
        consumption of the sensor model' — here it does better, because
        the ideal sensor still pays contention losses at 2 kb/s."""
        dual = sh_runs["dual100"].normalized_energy()
        ideal = sh_runs["sensor"].normalized_energy(ENERGY_SENSOR_IDEAL)
        assert dual < 1.5 * ideal

    def test_dual10_wastes_energy(self, sh_runs):
        """Fig. 6: a 10-packet burst (320 B < s*) does not save energy
        compared to the ideal sensor accounting."""
        dual10 = sh_runs["dual10"].normalized_energy()
        sensor_ideal = sh_runs["sensor"].normalized_energy(
            ENERGY_SENSOR_IDEAL
        )
        assert dual10 > sensor_ideal

    def test_burst_size_orders_energy(self, sh_runs):
        """Bigger bursts amortize wake-ups better (10 -> 100)."""
        assert (
            sh_runs["dual100"].normalized_energy()
            < sh_runs["dual10"].normalized_energy()
        )


class TestFig7Shapes:
    def test_energy_delay_tradeoff(self, sh_runs):
        """Fig. 7: larger bursts trade delay for energy."""
        assert (
            sh_runs["dual100"].mean_delay_s > sh_runs["dual10"].mean_delay_s
        )
        assert (
            sh_runs["dual100"].normalized_energy()
            < sh_runs["dual10"].normalized_energy()
        )

    def test_delay_grows_further_at_500(self, sh_runs):
        assert (
            sh_runs["dual500"].mean_delay_s > sh_runs["dual100"].mean_delay_s
        )


class TestFig8Shapes:
    def test_dual_outperforms_sensor_goodput(self, mh_runs):
        """Fig. 8: with the one-hop advantage the dual model wins."""
        assert mh_runs["dual100"].goodput > mh_runs["sensor"].goodput + 0.2

    def test_sensor_contention_losses(self, mh_runs):
        assert mh_runs["sensor"].goodput < 0.6


class TestFig9Shapes:
    def test_even_small_bursts_improve_energy(self, mh_runs):
        """Fig. 9: 'Even with DualRadio-10 normalized energy improves,
        mainly due to being able to send in one hop to the sink.'"""
        dual10 = mh_runs["dual10"].normalized_energy()
        sensor_header = mh_runs["sensor"].normalized_energy(
            ENERGY_SENSOR_HEADER
        )
        assert dual10 < 1.05 * sensor_header

    def test_dual_beats_sensor_ideal(self, mh_runs):
        """Fig. 9: 'the dual radio model is able to perform close to or
        even better than the ideal energy consumption of the sensor
        model.'"""
        dual = mh_runs["dual100"].normalized_energy()
        ideal = mh_runs["sensor"].normalized_energy(ENERGY_SENSOR_IDEAL)
        assert dual < ideal

    def test_mh_beats_sh_for_same_burst(self, sh_runs, mh_runs):
        """The one-hop advantage shows up as lower normalized energy in
        MH than SH at the same burst size (Figs. 6 vs 9)."""
        assert (
            mh_runs["dual100"].normalized_energy()
            < sh_runs["dual100"].normalized_energy()
        )


class TestFig10Shapes:
    def test_energy_delay_tradeoff_mh(self, mh_runs):
        assert (
            mh_runs["dual100"].mean_delay_s > mh_runs["dual10"].mean_delay_s
        )
        assert (
            mh_runs["dual100"].normalized_energy()
            < mh_runs["dual10"].normalized_energy()
        )

    def test_delay_grows_further_at_500(self, mh_runs):
        assert (
            mh_runs["dual500"].mean_delay_s > mh_runs["dual100"].mean_delay_s
        )
