"""BCP edge cases: address-map gating, TTL exhaustion, late/stray acks."""


from repro.core.messages import ControlEnvelope, Wakeup, WakeupAck
from repro.net.addressing import AddressMap
from repro.net.packets import DataPacket

from tests.test_bcp import DualNet


class TestAddressMapGating:
    def test_peer_without_high_radio_never_handshakes(self):
        """Section 3: BCP must resolve the receiver's high-power address;
        a peer with no high-power interface cannot receive bulk data."""
        net = DualNet()
        addresses = AddressMap()
        addresses.register_node(0, has_high_radio=True)
        addresses.register_node(1, has_high_radio=False)
        net.agents[0].address_map = addresses
        net.inject(0, 4)
        net.sim.run(until=10.0)
        assert net.agents[0].stats.wakeups_sent == 0
        assert net.agents[0].stats.handshakes_failed >= 1
        assert net.delivered == []

    def test_agent_without_address_map_still_works(self):
        net = DualNet()
        net.agents[0].address_map = None
        net.inject(0, 4)
        net.sim.run(until=5.0)
        assert len(net.delivered) == 4


class TestControlPlane:
    def test_ttl_exhaustion_drops_envelope(self):
        net = DualNet(n=3, high_range=100.0)
        # Hand-craft an envelope that arrives at node 1 with ttl=0.
        envelope = ControlEnvelope(
            Wakeup(origin=0, target=2, session_id=999, burst_bytes=128),
            src=0,
            dst=2,
            ttl=0,
        )
        net.agents[1]._forward_control(envelope)
        net.sim.run(until=2.0)
        assert net.agents[2].stats.acks_sent == 0

    def test_stray_ack_ignored(self):
        """An ack for an unknown session must not crash or wake anything."""
        net = DualNet()
        ack = WakeupAck(origin=1, target=0, session_id=424242,
                        allowed_bytes=1024)
        net.agents[0]._handle_wakeup_ack(ack)
        net.sim.run(until=1.0)
        assert not net.high_radios[0].is_on

    def test_ack_for_stale_session_ignored(self):
        net = DualNet()
        net.inject(0, 4)
        net.sim.run(until=5.0)  # session completed
        stale = WakeupAck(origin=1, target=0, session_id=1,
                          allowed_bytes=1024)
        net.agents[0]._handle_wakeup_ack(stale)
        net.sim.run(until=6.0)
        assert not net.high_radios[0].is_on

    def test_non_control_low_frame_ignored(self):
        """Random payloads on the low radio don't confuse BCP."""
        from repro.mac.frames import Frame, FrameKind

        net = DualNet()
        net.agents[0]._on_low_frame(
            Frame(FrameKind.DATA, src=1, dst=0, payload_bits=64,
                  header_bits=64, payload="garbage")
        )
        assert net.agents[0].stats.wakeups_sent == 0


class TestHighFrameEdges:
    def test_non_fragment_high_frame_ignored(self):
        from repro.mac.frames import Frame, FrameKind

        net = DualNet()
        net.agents[1]._on_high_frame(
            Frame(FrameKind.DATA, src=0, dst=1, payload_bits=64,
                  header_bits=64, payload="not-a-fragment")
        )
        assert net.agents[1].stats.packets_received == 0

    def test_unsolicited_fragment_still_forwards_packets(self):
        """Fragments arriving without a session (receiver timed out) still
        deliver their packets — data is never thrown away."""
        from repro.core.fragmentation import BurstFragment
        from repro.mac.frames import Frame, FrameKind

        net = DualNet()
        packet = DataPacket(src=0, dst=1, payload_bits=256, created_s=0.0)
        fragment = BurstFragment(session_id=777, origin=0, index=0, total=1,
                                 packets=[packet])
        net.agents[1]._on_high_frame(
            Frame(FrameKind.DATA, src=0, dst=1,
                  payload_bits=fragment.payload_bits, header_bits=272,
                  payload=fragment)
        )
        assert net.delivered == [packet]


class TestMeanHops:
    def test_direct_delivery_zero_hops(self):
        net = DualNet()
        net.inject(1, 1, dst=1)
        assert net.delivered[0].hops == 0
