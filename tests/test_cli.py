"""CLI argument handling and artifact rendering."""

import pytest

from repro.cli import build_parser, render_artifact
from repro.models.sweeps import SweepScale


def parse(*argv):
    return build_parser().parse_args(list(argv))


class TestParser:
    def test_artifact_required(self):
        with pytest.raises(SystemExit):
            parse()

    def test_defaults(self):
        args = parse("fig5")
        assert not args.paper
        assert args.seed == 1
        assert args.output is None

    def test_scale_flags(self):
        args = parse("fig5", "--runs", "3", "--sim-time", "200",
                     "--senders", "5", "20", "--bursts", "10", "500")
        assert args.runs == 3
        assert args.sim_time == 200.0
        assert args.senders == [5, 20]
        assert args.bursts == [10, 500]

    def test_runner_flags(self):
        args = parse("fig5", "--jobs", "4", "--cache-dir", "/tmp/c",
                     "--no-cache")
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache

    def test_runner_flag_defaults(self):
        args = parse("fig5")
        assert args.jobs is None  # falls back to $REPRO_JOBS, then serial
        assert args.cache_dir is None
        assert not args.no_cache


class TestRenderArtifact:
    def test_list_shows_everything(self):
        text = render_artifact(parse("list"))
        for name in ("table1", "fig1", "fig12"):
            assert name in text

    def test_unknown_artifact_exits(self):
        with pytest.raises(SystemExit):
            render_artifact(parse("fig99"))

    def test_table1(self):
        assert "Cabletron" in render_artifact(parse("table1"))

    def test_analysis_figure(self):
        assert "# series" in render_artifact(parse("fig2"))

    def test_simulation_figure_with_tiny_scale(self):
        text = render_artifact(
            parse(
                "fig5",
                "--runs", "1",
                "--sim-time", "30",
                "--senders", "3",
                "--bursts", "10",
                "--no-cache",
            )
        )
        assert "Goodput" in text
        assert "DualRadio-10" in text
        assert "Sensor" in text

    def test_simulation_figure_cache_and_jobs_reproduce(self, tmp_path):
        tiny = ("fig5", "--runs", "1", "--sim-time", "30",
                "--senders", "3", "--bursts", "10")
        cold = render_artifact(
            parse(*tiny, "--cache-dir", str(tmp_path))
        )
        warm = render_artifact(
            parse(*tiny, "--cache-dir", str(tmp_path))
        )
        parallel = render_artifact(parse(*tiny, "--jobs", "2", "--no-cache"))
        assert warm == cold == parallel
        assert list(tmp_path.glob("*.json"))  # cache was populated

    def test_prototype_figure_with_coarse_step(self):
        text = render_artifact(parse("fig11", "--step", "1024", "--no-cache"))
        assert "Dual-Radio" in text
        assert "Sensor Radio" in text

    def test_prototype_figure_uses_cache(self, tmp_path):
        args = ("fig11", "--step", "1024", "--cache-dir", str(tmp_path))
        cold = render_artifact(parse(*args))
        warm = render_artifact(parse(*args))
        assert warm == cold
        assert list(tmp_path.glob("*.json"))  # prototype cells cached

    def test_output_writes_file(self, tmp_path):
        from repro.cli import main

        target = tmp_path / "t1.txt"
        assert main(["table1", "--output", str(target)]) == 0
        assert "Micaz" in target.read_text()


class TestUnitParsers:
    def test_parse_size(self):
        from repro.cli.main import parse_size

        assert parse_size("1048576") == 1024**2
        assert parse_size("512K") == 512 * 1024
        assert parse_size("500m") == 500 * 1024**2
        assert parse_size("2G") == 2 * 1024**3

    def test_parse_size_rejects_garbage(self):
        import argparse

        from repro.cli.main import parse_size

        for bad in ("many", "-3", "1.5M", ""):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_size(bad)

    def test_parse_duration(self):
        from repro.cli.main import parse_duration

        assert parse_duration("3600") == 3600.0
        assert parse_duration("90s") == 90.0
        assert parse_duration("30m") == 1800.0
        assert parse_duration("12h") == 12 * 3600.0
        assert parse_duration("7d") == 7 * 86400.0

    def test_parse_duration_rejects_garbage(self):
        import argparse

        from repro.cli.main import parse_duration

        for bad in ("soon", "-1", ""):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_duration(bad)


class TestShardCli:
    TINY = ("--runs", "1", "--sim-time", "30", "--senders", "3",
            "--bursts", "10")

    def test_shard_flag_parsed(self):
        args = parse("fig5", "--shard", "0/2")
        assert args.shard == "0/2"

    def test_shard_requires_cache(self):
        with pytest.raises(SystemExit):
            render_artifact(parse("fig5", "--shard", "0/2", "--no-cache"))

    def test_shard_rejects_analysis_artifacts(self):
        with pytest.raises(SystemExit):
            render_artifact(parse("fig1", "--shard", "0/2"))

    def test_shard_rejects_bad_spec(self, tmp_path):
        for bad in ("2/2", "x/2", "0"):
            with pytest.raises(SystemExit):
                render_artifact(
                    parse("fig5", "--shard", bad,
                          "--cache-dir", str(tmp_path))
                )

    def test_shard_writes_manifest_and_populates_cache(self, tmp_path):
        text = render_artifact(
            parse("fig5", *self.TINY, "--shard", "0/1",
                  "--cache-dir", str(tmp_path))
        )
        assert "shard 0/1" in text
        assert (tmp_path / "shard-0of1.manifest").exists()
        assert list(tmp_path.glob("*.json"))

    def test_prototype_shard_supported(self, tmp_path):
        text = render_artifact(
            parse("fig11", "--step", "2048", "--shard", "0/1",
                  "--cache-dir", str(tmp_path))
        )
        assert "fig11 shard 0/1" in text
        assert (tmp_path / "shard-0of1.manifest").exists()


class TestMergeShardsCli:
    def test_missing_manifest_fails(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "empty"
        source.mkdir()
        rc = main(["merge-shards", str(tmp_path / "dest"), str(source)])
        assert rc == 1
        assert "no shard manifest" in capsys.readouterr().err

    def test_merge_after_shard_run(self, tmp_path, capsys):
        from repro.cli import main

        shard_dir = tmp_path / "s0"
        render_artifact(
            parse("fig5", *TestShardCli.TINY, "--shard", "0/1",
                  "--cache-dir", str(shard_dir))
        )
        dest = tmp_path / "merged"
        assert main(["merge-shards", str(dest), str(shard_dir)]) == 0
        out = capsys.readouterr().out
        assert "copied" in out
        assert sorted(p.name for p in dest.glob("*.json")) == sorted(
            p.name for p in shard_dir.glob("*.json")
        )


class TestCacheCli:
    def test_stats_and_gc(self, tmp_path, capsys):
        from repro.cli import main

        render_artifact(
            parse("fig5", *TestShardCli.TINY, "--cache-dir", str(tmp_path))
        )
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "RunResult" in out
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        # Freshly-written cells are in-flight: a GC racing a sweep must
        # not evict them, whatever the byte budget says.
        assert "in-flight skipped" in out
        assert list(tmp_path.glob("*.json"))

    def test_gc_on_locked_cache_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        from repro.runner.cache import GC_LOCK_NAME

        tmp_path.joinpath(GC_LOCK_NAME).write_text("{}")
        rc = main(["cache", "gc", "--cache-dir", str(tmp_path)])
        assert rc == 1
        assert "already running" in capsys.readouterr().err


class TestScaleFromArgs:
    def test_paper_flag(self):
        from repro.cli.main import _scale_from_args

        scale = _scale_from_args(parse("fig5", "--paper"))
        assert scale.n_runs == SweepScale.paper().n_runs
        assert scale.sim_time_s == 5000.0

    def test_overrides_apply_on_top(self):
        from repro.cli.main import _scale_from_args

        scale = _scale_from_args(parse("fig5", "--paper", "--runs", "2"))
        assert scale.n_runs == 2
        assert scale.sim_time_s == 5000.0


class TestScenariosCli:
    def test_list_shows_every_registry(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("grid", "line", "uniform-random", "clustered",
                     "from-file", "unit-disc", "log-normal", "distance-prr",
                     "cbr", "poisson", "audio", "Cabletron", "Micaz"):
            assert name in out

    def test_requires_subcommand(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["scenarios"])


class TestRunCli:
    def test_composed_run_renders_report(self, capsys):
        from repro.cli import main

        rc = main([
            "run", "--topology", "line:n=4", "--propagation",
            "distance-prr:exponent=6", "--traffic", "poisson", "--senders",
            "2", "--burst", "10", "--sim-time", "20", "--no-cache",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "line(n=4)" in out
        assert "distance-prr(exponent=6)" in out
        assert "goodput" in out

    def test_run_uses_cache(self, tmp_path, capsys):
        from repro.cli import main
        from repro.runner import ResultCache

        argv = [
            "run", "--topology", "line:n=4", "--senders", "2", "--burst",
            "10", "--sim-time", "10", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        cache = ResultCache(tmp_path)
        assert cache.disk_stats().entries == 1

    def test_bad_topology_exits_cleanly(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown topology"):
            main(["run", "--topology", "moebius", "--no-cache"])

    def test_partitioned_deployment_exits_cleanly(self, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "split.json"
        path.write_text(json.dumps([[0, 0], [10, 0], [900, 0], [910, 0]]))
        with pytest.raises(SystemExit, match="partitioned"):
            main([
                "run", "--topology-file", str(path), "--senders", "2",
                "--sim-time", "5", "--no-cache",
            ])

    def test_topology_and_file_are_exclusive(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "l.json"
        path.write_text("[[0, 0], [10, 0]]")
        with pytest.raises(SystemExit, match="exclusive"):
            main(["run", "--topology", "grid", "--topology-file", str(path),
                  "--no-cache"])

    def test_output_writes_report_file(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "report.txt"
        rc = main([
            "run", "--topology", "line:n=4", "--senders", "2", "--burst",
            "10", "--sim-time", "10", "--no-cache", "--output",
            str(out_file),
        ])
        assert rc == 0
        assert "scenario" in out_file.read_text()
