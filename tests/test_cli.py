"""CLI argument handling and artifact rendering."""

import pytest

from repro.cli import build_parser, render_artifact
from repro.models.sweeps import SweepScale


def parse(*argv):
    return build_parser().parse_args(list(argv))


class TestParser:
    def test_artifact_required(self):
        with pytest.raises(SystemExit):
            parse()

    def test_defaults(self):
        args = parse("fig5")
        assert not args.paper
        assert args.seed == 1
        assert args.output is None

    def test_scale_flags(self):
        args = parse("fig5", "--runs", "3", "--sim-time", "200",
                     "--senders", "5", "20", "--bursts", "10", "500")
        assert args.runs == 3
        assert args.sim_time == 200.0
        assert args.senders == [5, 20]
        assert args.bursts == [10, 500]

    def test_runner_flags(self):
        args = parse("fig5", "--jobs", "4", "--cache-dir", "/tmp/c",
                     "--no-cache")
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache

    def test_runner_flag_defaults(self):
        args = parse("fig5")
        assert args.jobs is None  # falls back to $REPRO_JOBS, then serial
        assert args.cache_dir is None
        assert not args.no_cache


class TestRenderArtifact:
    def test_list_shows_everything(self):
        text = render_artifact(parse("list"))
        for name in ("table1", "fig1", "fig12"):
            assert name in text

    def test_unknown_artifact_exits(self):
        with pytest.raises(SystemExit):
            render_artifact(parse("fig99"))

    def test_table1(self):
        assert "Cabletron" in render_artifact(parse("table1"))

    def test_analysis_figure(self):
        assert "# series" in render_artifact(parse("fig2"))

    def test_simulation_figure_with_tiny_scale(self):
        text = render_artifact(
            parse(
                "fig5",
                "--runs", "1",
                "--sim-time", "30",
                "--senders", "3",
                "--bursts", "10",
                "--no-cache",
            )
        )
        assert "Goodput" in text
        assert "DualRadio-10" in text
        assert "Sensor" in text

    def test_simulation_figure_cache_and_jobs_reproduce(self, tmp_path):
        tiny = ("fig5", "--runs", "1", "--sim-time", "30",
                "--senders", "3", "--bursts", "10")
        cold = render_artifact(
            parse(*tiny, "--cache-dir", str(tmp_path))
        )
        warm = render_artifact(
            parse(*tiny, "--cache-dir", str(tmp_path))
        )
        parallel = render_artifact(parse(*tiny, "--jobs", "2", "--no-cache"))
        assert warm == cold == parallel
        assert list(tmp_path.glob("*.json"))  # cache was populated

    def test_prototype_figure_with_coarse_step(self):
        text = render_artifact(parse("fig11", "--step", "1024"))
        assert "Dual-Radio" in text
        assert "Sensor Radio" in text

    def test_output_writes_file(self, tmp_path):
        from repro.cli import main

        target = tmp_path / "t1.txt"
        assert main(["table1", "--output", str(target)]) == 0
        assert "Micaz" in target.read_text()


class TestScaleFromArgs:
    def test_paper_flag(self):
        from repro.cli.main import _scale_from_args

        scale = _scale_from_args(parse("fig5", "--paper"))
        assert scale.n_runs == SweepScale.paper().n_runs
        assert scale.sim_time_s == 5000.0

    def test_overrides_apply_on_top(self):
        from repro.cli.main import _scale_from_args

        scale = _scale_from_args(parse("fig5", "--paper", "--runs", "2"))
        assert scale.n_runs == 2
        assert scale.sim_time_s == 5000.0
