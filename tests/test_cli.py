"""CLI argument handling and artifact rendering."""

import pytest

from repro.cli import build_parser, render_artifact
from repro.models.sweeps import SweepScale


def parse(*argv):
    return build_parser().parse_args(list(argv))


class TestParser:
    def test_artifact_required(self):
        with pytest.raises(SystemExit):
            parse()

    def test_defaults(self):
        args = parse("fig5")
        assert not args.paper
        assert args.seed == 1
        assert args.output is None

    def test_scale_flags(self):
        args = parse("fig5", "--runs", "3", "--sim-time", "200",
                     "--senders", "5", "20", "--bursts", "10", "500")
        assert args.runs == 3
        assert args.sim_time == 200.0
        assert args.senders == [5, 20]
        assert args.bursts == [10, 500]


class TestRenderArtifact:
    def test_list_shows_everything(self):
        text = render_artifact(parse("list"))
        for name in ("table1", "fig1", "fig12"):
            assert name in text

    def test_unknown_artifact_exits(self):
        with pytest.raises(SystemExit):
            render_artifact(parse("fig99"))

    def test_table1(self):
        assert "Cabletron" in render_artifact(parse("table1"))

    def test_analysis_figure(self):
        assert "# series" in render_artifact(parse("fig2"))

    def test_simulation_figure_with_tiny_scale(self):
        text = render_artifact(
            parse(
                "fig5",
                "--runs", "1",
                "--sim-time", "30",
                "--senders", "3",
                "--bursts", "10",
            )
        )
        assert "Goodput" in text
        assert "DualRadio-10" in text
        assert "Sensor" in text

    def test_prototype_figure_with_coarse_step(self):
        text = render_artifact(parse("fig11", "--step", "1024"))
        assert "Dual-Radio" in text
        assert "Sensor Radio" in text

    def test_output_writes_file(self, tmp_path):
        from repro.cli import main

        target = tmp_path / "t1.txt"
        assert main(["table1", "--output", str(target)]) == 0
        assert "Micaz" in target.read_text()


class TestScaleFromArgs:
    def test_paper_flag(self):
        from repro.cli.main import _scale_from_args

        scale = _scale_from_args(parse("fig5", "--paper"))
        assert scale.n_runs == SweepScale.paper().n_runs
        assert scale.sim_time_s == 5000.0

    def test_overrides_apply_on_top(self):
        from repro.cli.main import _scale_from_args

        scale = _scale_from_args(parse("fig5", "--paper", "--runs", "2"))
        assert scale.n_runs == 2
        assert scale.sim_time_s == 5000.0
