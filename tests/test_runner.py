"""Runner subsystem: config hashing, result cache, parallel executor."""

import dataclasses
import json

import pytest

from repro.models.scenario import ScenarioConfig, run_scenario
from repro.models.sweeps import SweepScale, run_sweep, sweep_plan
from repro.runner import (
    ResultCache,
    SweepRunner,
    canonical_json,
    config_key,
    resolve_jobs,
    runner_from_env,
)
from repro.runner.cache import result_from_dict, result_to_dict
from repro.runner.executor import JOBS_ENV
from repro.runner.hashing import CACHE_SCHEMA_VERSION
from repro.runner.progress import ProgressTracker
from repro.stats.metrics import RunResult

#: A deliberately tiny scenario (3×3 grid, 10 simulated seconds) so each
#: run costs milliseconds.
TINY = ScenarioConfig(
    rows=3, cols=3, sink=4, n_senders=2, sim_time_s=10.0, burst_packets=10
)

#: A tiny sweep: 2 cells × 2 replicas + 2 baseline cells = 8 runs.
TINY_SCALE = SweepScale(senders=(2, 3), bursts=(10,), n_runs=2, sim_time_s=10.0)


def tiny_result(seed: int = 1) -> RunResult:
    return run_scenario(TINY.replace(seed=seed))


class TestConfigKey:
    def test_stable_for_equal_configs(self):
        assert config_key(TINY) == config_key(TINY.replace())

    def test_any_field_change_changes_key(self):
        for changes in (
            {"seed": 2},
            {"n_senders": 3},
            {"burst_packets": 100},
            {"sim_time_s": 20.0},
            {"flow_control": False},
        ):
            assert config_key(TINY.replace(**changes)) != config_key(TINY)

    def test_nested_radio_spec_participates(self):
        tweaked = TINY.replace(low_spec=TINY.low_spec.replace(rate_bps=1.0))
        assert config_key(tweaked) != config_key(TINY)

    def test_canonical_json_is_sorted_valid_json(self):
        import repro

        payload = json.loads(canonical_json(TINY))
        assert payload["schema"] == CACHE_SCHEMA_VERSION
        assert payload["version"] == repro.__version__
        assert payload["type"].endswith("ScenarioConfig")
        assert payload["config"]["n_senders"] == 2

    def test_different_config_types_cannot_collide(self):
        @dataclasses.dataclass
        class Imposter:
            seed: int = 1

        assert config_key(Imposter()) != config_key(Imposter(seed=2))
        assert config_key(Imposter()) not in (config_key(TINY),)

    def test_rejects_unhashable_values(self):
        with pytest.raises(TypeError):
            canonical_json({"fn": print})

    def test_nonfinite_float_does_not_collide_with_string(self):
        @dataclasses.dataclass
        class Holder:
            value: object

        assert canonical_json(Holder(float("inf"))) != canonical_json(
            Holder("inf")
        )
        assert config_key(Holder(float("nan"))) != config_key(Holder("nan"))


class TestResultSerialization:
    def test_roundtrip(self):
        result = tiny_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_unknown_field_rejected(self):
        data = result_to_dict(tiny_result())
        data["bogus"] = 1
        with pytest.raises(ValueError):
            result_from_dict(data)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(TINY) is None
        result = tiny_result()
        cache.put(TINY, result)
        assert cache.get(TINY) == result
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(TINY, tiny_result())
        assert cache.get(TINY.replace(seed=99)) is None
        assert cache.get(TINY.replace(burst_packets=2500)) is None

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = tiny_result()
        path = cache.put(TINY, result)
        path.write_text("{ not json at all")
        assert cache.get(TINY) is None
        assert not path.exists()  # evicted
        assert cache.stats.evicted_corrupt == 1
        cache.put(TINY, result)
        assert cache.get(TINY) == result

    def test_binary_garbage_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(TINY, tiny_result())
        path.write_bytes(b"\xff\xfe\x00 not utf-8 \x80")
        assert cache.get(TINY) is None
        assert not path.exists()
        assert cache.stats.evicted_corrupt == 1

    def test_cache_dir_must_not_be_a_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("")
        with pytest.raises(ValueError):
            ResultCache(target)

    def test_unwritable_cache_degrades_instead_of_raising(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")  # mkdir under a file → OSError on write
        cache = ResultCache(blocker / "cache")
        with pytest.warns(UserWarning, match="continuing without caching"):
            cache.put(TINY, tiny_result())
        assert cache.stats.write_errors == 1
        assert cache.stats.stores == 0
        # Subsequent failures are silent (one warning per cache).
        cache.put(TINY.replace(seed=2), tiny_result(seed=2))
        assert cache.stats.write_errors == 2

    def test_stale_tmp_files_swept_fresh_ones_kept(self, tmp_path):
        import os as _os

        stale = tmp_path / "deadbeef.tmp123"
        stale.write_text("partial write")
        _os.utime(stale, times=(0, 0))  # epoch-old
        fresh = tmp_path / "cafe.tmp456"
        fresh.write_text("in-flight write")
        ResultCache(tmp_path)
        assert not stale.exists()
        assert fresh.exists()

    def test_truncated_and_stale_schema_entries_recover(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(TINY, tiny_result())
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(TINY) is None
        path2 = cache.put(TINY, tiny_result())
        del entry["result"]
        entry["schema"] = CACHE_SCHEMA_VERSION
        path2.write_text(json.dumps(entry))
        assert cache.get(TINY) is None
        assert len(cache) == 0

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(TINY, tiny_result())
        cache.put(TINY.replace(seed=2), tiny_result(seed=2))
        assert len(cache) == 2


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_runner_from_env_wires_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv(JOBS_ENV, "2")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = runner_from_env()
        assert runner.jobs == 2
        assert runner.cache is not None
        assert runner.cache.directory == tmp_path
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.delenv(JOBS_ENV)
        runner = runner_from_env()
        assert runner.jobs == 1
        assert runner.cache is None


class TestExecutor:
    configs = [TINY.replace(seed=seed) for seed in (1, 2, 3, 4)]

    def test_serial_preserves_order(self):
        results = SweepRunner(jobs=1).map(run_scenario, self.configs)
        assert [r.model for r in results] == ["dual"] * 4
        assert results == [run_scenario(c) for c in self.configs]

    def test_parallel_matches_serial_exactly(self):
        serial = SweepRunner(jobs=1).map(run_scenario, self.configs)
        parallel = SweepRunner(jobs=2).map(run_scenario, self.configs)
        assert parallel == serial

    def test_cache_hits_skip_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = SweepRunner(jobs=1, cache=cache).map(run_scenario, self.configs)
        assert cache.stats.stores == len(self.configs)
        warm_cache = ResultCache(tmp_path)
        second = SweepRunner(jobs=1, cache=warm_cache).map(
            run_scenario, self.configs
        )
        assert second == first
        assert warm_cache.stats.hits == len(self.configs)
        assert warm_cache.stats.stores == 0

    def test_progress_events(self):
        events = []
        SweepRunner(jobs=1, progress=events.append).map(
            run_scenario, self.configs
        )
        assert [e.completed for e in events] == [1, 2, 3, 4]
        assert events[-1].total == 4
        assert events[-1].cache_hits == 0
        assert all(not e.cached for e in events)

    def test_progress_reports_cache_hits_and_mixed_batches(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.configs[1], run_scenario(self.configs[1]))
        events = []
        results = SweepRunner(jobs=1, cache=cache, progress=events.append).map(
            run_scenario, self.configs
        )
        assert results == [run_scenario(c) for c in self.configs]
        assert events[-1].cache_hits == 1
        assert sum(e.cached for e in events) == 1


class TestProgressTracker:
    def test_eta_paced_by_computed_cells_only(self):
        clock = iter([0.0, 10.0, 20.0]).__next__
        tracker = ProgressTracker(total=3, clock=clock)
        hit = tracker.cell_done(0, "a", cached=True)
        assert hit.eta_s is None  # no computed cells yet
        computed = tracker.cell_done(1, "b", cached=False)
        assert computed.eta_s == pytest.approx(20.0)  # 20 s/cell × 1 left

    def test_format_mentions_cache_and_completion(self):
        tracker = ProgressTracker(total=2, clock=iter([0.0, 1.0, 2.0]).__next__)
        line = tracker.cell_done(0, "cell a", cached=True).format()
        assert "cache hit" in line and "[1/2]" in line
        line = tracker.cell_done(1, "cell b", cached=False).format()
        assert "done in" in line and "(1/2 cached)" in line


class TestSweepIntegration:
    def test_sweep_plan_layout(self):
        plan = sweep_plan("SH", TINY_SCALE, rate_bps=2000.0)
        # 1 burst × 2 sender counts × 2 replicas + (sensor + wifi) × 2 × 2
        assert len(plan) == 12
        assert [p.config.seed for p in plan[:2]] == [1, 2]
        assert {p.label for p in plan} == {"DualRadio-10", "Sensor", "802.11"}

    def test_parallel_and_cached_sweeps_are_identical(self, tmp_path):
        serial = run_sweep("SH", TINY_SCALE, rate_bps=2000.0)
        parallel = run_sweep(
            "SH", TINY_SCALE, rate_bps=2000.0, runner=SweepRunner(jobs=2)
        )
        cache = ResultCache(tmp_path)
        cold = run_sweep(
            "SH", TINY_SCALE, rate_bps=2000.0,
            runner=SweepRunner(jobs=1, cache=cache),
        )
        warm_cache = ResultCache(tmp_path)
        warm = run_sweep(
            "SH", TINY_SCALE, rate_bps=2000.0,
            runner=SweepRunner(jobs=1, cache=warm_cache),
        )
        for other in (parallel, cold, warm):
            assert other.cells == serial.cells
        assert warm_cache.stats.hits == 12
        assert warm_cache.stats.stores == 0
        # Byte-identical summaries, as the figures consume them.
        for label, per_count in serial.cells.items():
            for n, cell in per_count.items():
                assert repr(warm.cells[label][n].summary()) == repr(
                    cell.summary()
                )

    def test_run_replicated_accepts_runner(self, tmp_path):
        from repro.models.scenario import run_replicated

        results, summary = run_replicated(TINY, n_runs=2)
        cached_runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        results2, summary2 = run_replicated(TINY, n_runs=2, runner=cached_runner)
        assert results2 == results
        assert repr(summary2) == repr(summary)

    def test_prototype_warm_cache_recomputes_nothing(self, tmp_path, monkeypatch):
        """Acceptance: a warm prototype cache performs zero recomputations."""
        from repro.runner import SerialBackend
        from repro.testbed import experiment

        thresholds = [1024.0, 2048.0, 4096.0]
        executions: list[float] = []
        real_run = experiment.run_prototype

        def counting_run(config):
            executions.append(config.threshold_bytes)
            return real_run(config)

        monkeypatch.setattr(experiment, "run_prototype", counting_run)
        cold_cache = ResultCache(tmp_path)
        cold = experiment.sweep_thresholds(
            thresholds,
            runner=SweepRunner(cache=cold_cache, backend=SerialBackend()),
        )
        assert executions == thresholds
        assert cold_cache.stats.stores == len(thresholds)
        executions.clear()
        warm_cache = ResultCache(tmp_path)
        warm = experiment.sweep_thresholds(
            thresholds,
            runner=SweepRunner(cache=warm_cache, backend=SerialBackend()),
        )
        assert executions == []  # zero recomputations
        assert warm_cache.stats.hits == len(thresholds)
        assert warm_cache.stats.stores == 0
        assert warm == cold

    def test_prototype_sweep_parallel_matches_serial(self):
        from repro.testbed.experiment import sweep_thresholds

        thresholds = [1024.0, 2048.0]
        serial = sweep_thresholds(thresholds)
        parallel = sweep_thresholds(thresholds, runner=SweepRunner(jobs=2))
        assert parallel == serial
