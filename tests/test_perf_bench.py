"""Tests for the perf subsystem: phases, bench harness, gate, CLI."""

import json

import pytest

from repro.cli.main import main
from repro.perf import bench as perf_bench
from repro.perf import collect_phases, phase, phase_snapshot, record
from repro.perf.bench import (
    BenchReport,
    CaseResult,
    compare_reports,
    failed_gates,
    find_baseline,
    load_report,
    run_case,
    write_report,
)
from repro.perf.bench import host_key, walls_comparable
from repro.perf.suite import SUITES, BenchCase, bench_cases, ratio_gates


class TestPhases:
    def test_disabled_by_default(self):
        record("anything", 1.0)
        assert phase_snapshot() == {}

    def test_collect_accumulates(self):
        with collect_phases() as timings:
            record("build", 1.5)
            record("build", 0.5)
            with phase("loop"):
                pass
        assert timings["build"] == 2.0
        assert timings["loop"] >= 0.0
        assert phase_snapshot() == {}  # collection ended

    def test_nested_collectors_stack(self):
        with collect_phases() as outer:
            record("a", 1.0)
            with collect_phases() as inner:
                record("a", 5.0)
            record("b", 2.0)
        assert inner == {"a": 5.0}
        assert outer == {"a": 1.0, "b": 2.0}


def _tiny_case(name="tiny", suites=SUITES, repeats=2):
    return BenchCase(
        name=name,
        summary="a test case",
        setup=lambda: {"n": 1000},
        run=lambda state: {"n": float(state["n"])},
        suites=tuple(suites),
        repeats=repeats,
    )


class TestHarness:
    def test_run_case_best_of_repeats(self):
        result = run_case(_tiny_case())
        assert result.repeats == 2
        assert result.wall_s >= 0.0
        assert result.ops == {"n": 1000.0}

    def test_repeats_override(self):
        assert run_case(_tiny_case(), repeats=5).repeats == 5

    def test_profile_dir_writes_pstats(self, tmp_path):
        import pstats

        profile_dir = tmp_path / "prof"
        result = run_case(_tiny_case(), profile_dir=str(profile_dir))
        # The profiled round is extra and untimed: the recorded result
        # still reflects the plain timed repeats.
        assert result.repeats == 2
        stats = pstats.Stats(str(profile_dir / "tiny.pstats"))
        assert stats.total_calls > 0

    def test_suite_selection(self):
        smoke = {case.name for case in bench_cases("smoke")}
        full = {case.name for case in bench_cases("full")}
        assert smoke < full  # smoke is a strict subset
        assert "routing-build-eager-1k" in smoke
        assert "routing-build-lazy-1k" in smoke
        assert "routing-build-lazy-5k" in smoke
        assert "fig-cell-heavy" in full - smoke

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            bench_cases("nightly")

    def test_ratio_gates_need_both_cases(self):
        assert ratio_gates({"routing-build-eager-1k"}) == []
        gates = ratio_gates(
            {"routing-build-eager-1k", "routing-build-lazy-1k"}
        )
        assert [gate.name for gate in gates] == ["routing-1k-speedup"]


def _report(rev="abc123", walls=None, checks=None, host="test-host"):
    walls = walls or {"case-a": 1.0, "case-b": 2.0}
    return BenchReport(
        rev=rev,
        suite="smoke",
        created="2026-07-29T00:00:00",
        python="3.11",
        platform="test",
        host=host,
        results={
            name: CaseResult(wall_s=wall, repeats=1, ops={"x": 1.0})
            for name, wall in walls.items()
        },
        checks=dict(checks or {}),
    )


class TestReportsAndGate:
    def test_write_load_round_trip(self, tmp_path):
        report = _report()
        path = write_report(report, tmp_path)
        assert path.name == "BENCH_abc123.json"
        loaded = load_report(path)
        assert loaded.rev == report.rev
        assert loaded.results["case-a"].wall_s == 1.0
        assert loaded.results["case-b"].ops == {"x": 1.0}

    def test_schema_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "BENCH_old.json"
        bad.write_text(json.dumps({"schema": 999, "results": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_report(bad)

    def test_non_object_report_rejected(self, tmp_path):
        bad = tmp_path / "BENCH_mangled.json"
        bad.write_text(json.dumps(["not", "a", "report"]))
        with pytest.raises(ValueError, match="not a JSON object"):
            load_report(bad)

    def test_find_baseline_survives_mangled_candidates(self, tmp_path):
        (tmp_path / "BENCH_junk.json").write_text("[1, 2, 3]")
        (tmp_path / "BENCH_trunc.json").write_text('{"created": "20')
        good = write_report(_report(rev="good"), tmp_path)
        assert find_baseline(tmp_path) == good

    def test_find_baseline_excludes_current_rev(self, tmp_path):
        import os

        old = write_report(_report(rev="aaa"), tmp_path)
        newest = write_report(_report(rev="bbb"), tmp_path)
        os.utime(old, (1_000_000, 1_000_000))
        os.utime(newest, (2_000_000, 2_000_000))
        assert find_baseline(tmp_path, exclude_rev="bbb").name == "BENCH_aaa.json"
        assert find_baseline(tmp_path) == newest

    def test_find_baseline_empty(self, tmp_path):
        assert find_baseline(tmp_path) is None

    def test_compare_flags_only_past_threshold(self):
        baseline = _report(walls={"case-a": 1.0, "case-b": 1.0})
        current = _report(walls={"case-a": 1.2, "case-b": 1.3, "new": 9.0})
        regressions = compare_reports(current, baseline, threshold=0.25)
        assert [reg.case for reg in regressions] == ["case-b"]
        assert regressions[0].ratio == pytest.approx(1.3)
        assert "case-b" in regressions[0].describe()

    def test_compare_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            compare_reports(_report(), _report(), threshold=-0.1)

    def test_compare_skips_sub_min_wall_cases(self):
        baseline = _report(walls={"short": 0.02, "long": 1.0})
        current = _report(walls={"short": 0.08, "long": 1.0})  # 4x slower
        assert compare_reports(current, baseline, threshold=0.25) == []
        flagged = compare_reports(
            current, baseline, threshold=0.25, min_wall_s=0.0
        )
        assert [reg.case for reg in flagged] == ["short"]

    def test_walls_comparable_requires_same_host(self):
        assert walls_comparable(_report(), _report())
        assert not walls_comparable(_report(), _report(host="other"))
        # Untagged legacy baselines are never silently wall-compared.
        assert not walls_comparable(_report(), _report(host=""))
        assert host_key()  # current host always tags new reports

    def test_host_round_trips_through_json(self, tmp_path):
        path = write_report(_report(host="ci-linux"), tmp_path)
        assert load_report(path).host == "ci-linux"

    def test_created_ordering_is_zone_aware(self, tmp_path):
        import os

        # 10:00+02:00 is 08:00 UTC — *older* than 09:00 UTC despite
        # lexicographically outranking it.
        early = _report(rev="early")
        early.created = "2026-07-29T10:00:00+02:00"
        late = _report(rev="late")
        late.created = "2026-07-29T09:00:00+00:00"
        for report in (early, late):
            path = write_report(report, tmp_path)
            os.utime(path, (1_000_000, 1_000_000))
        assert find_baseline(tmp_path).name == "BENCH_late.json"

    def test_find_baseline_orders_by_created_stamp(self, tmp_path):
        # Fresh-checkout scenario: identical mtimes, only the recorded
        # 'created' stamps distinguish recording order.
        import os

        older = _report(rev="aaa")
        older.created = "2026-01-01T00:00:00"
        newer = _report(rev="bbb")
        newer.created = "2026-06-01T00:00:00"
        for report in (older, newer):
            path = write_report(report, tmp_path)
            os.utime(path, (1_000_000, 1_000_000))
        assert find_baseline(tmp_path).name == "BENCH_bbb.json"
        assert find_baseline(tmp_path, exclude_rev="bbb").name == "BENCH_aaa.json"

    def test_failed_gates(self):
        passing = _report(
            walls={
                "routing-build-eager-1k": 10.0,
                "routing-build-lazy-1k": 0.5,
            },
            checks={"routing-1k-speedup": 20.0},
        )
        assert failed_gates(passing) == []
        failing = _report(
            walls={
                "routing-build-eager-1k": 10.0,
                "routing-build-lazy-1k": 5.0,
            },
            checks={"routing-1k-speedup": 2.0},
        )
        assert any("routing-1k-speedup" in f for f in failed_gates(failing))


class TestBenchCli:
    def test_list_exits_clean(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "routing-build-lazy-1k" in out

    def test_run_write_and_regression_gate(self, tmp_path, monkeypatch, capsys):
        # A controllable one-case suite: 'slow' toggles a sleep so the
        # second run regresses past any threshold.
        state = {"slow": False}

        def run(_state):
            if state["slow"]:
                import time

                time.sleep(0.05)
            return {"ok": 1.0}

        case = BenchCase(
            name="toy",
            summary="toy case",
            setup=lambda: None,
            run=run,
            repeats=1,
        )
        import repro.perf.suite as suite_module

        monkeypatch.setattr(suite_module, "all_cases", lambda: (case,))
        monkeypatch.setattr(
            perf_bench, "git_rev", lambda directory=".": "rev-one"
        )
        assert main(["bench", "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "BENCH_rev-one.json").exists()
        capsys.readouterr()

        state["slow"] = True
        monkeypatch.setattr(
            perf_bench, "git_rev", lambda directory=".": "rev-two"
        )
        code = main(
            [
                "bench",
                "--output-dir",
                str(tmp_path),
                "--threshold",
                "0.25",
                "--min-wall",
                "0",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "regression" in err
        # the report is still written for inspection
        assert (tmp_path / "BENCH_rev-two.json").exists()

    def test_profile_flag_dumps_pstats(self, tmp_path, monkeypatch, capsys):
        import repro.perf.suite as suite_module

        monkeypatch.setattr(suite_module, "all_cases", lambda: (_tiny_case(),))
        profile_dir = tmp_path / "prof"
        code = main(
            [
                "bench",
                "--output-dir",
                str(tmp_path),
                "--no-write",
                "--baseline",
                "none",
                "--profile",
                str(profile_dir),
            ]
        )
        assert code == 0
        assert (profile_dir / "tiny.pstats").exists()
        assert "profiles:" in capsys.readouterr().out

    def test_foreign_host_baseline_skips_wall_gate(
        self, tmp_path, monkeypatch, capsys
    ):
        # A baseline recorded elsewhere must not wall-gate this host even
        # when every case regressed vs its numbers.
        foreign = _report(rev="elsewhere", walls={"tiny": 1e-9}, host="alien")
        write_report(foreign, tmp_path)
        import repro.perf.suite as suite_module

        monkeypatch.setattr(
            suite_module, "all_cases", lambda: (_tiny_case(),)
        )
        monkeypatch.setattr(
            perf_bench, "git_rev", lambda directory=".": "here"
        )
        assert main(["bench", "--output-dir", str(tmp_path), "--no-write"]) == 0
        out = capsys.readouterr().out
        assert "Wall-time comparison skipped" in out

    def test_no_baseline_skips_comparison(self, tmp_path, monkeypatch, capsys):
        import repro.perf.suite as suite_module

        monkeypatch.setattr(
            suite_module, "all_cases", lambda: (_tiny_case(),)
        )
        monkeypatch.setattr(
            perf_bench, "git_rev", lambda directory=".": "solo"
        )
        assert main(["bench", "--output-dir", str(tmp_path), "--no-write"]) == 0
        assert "comparison skipped" in capsys.readouterr().out

    def test_bad_baseline_path_errors(self, tmp_path, monkeypatch):
        import repro.perf.suite as suite_module

        monkeypatch.setattr(
            suite_module, "all_cases", lambda: (_tiny_case(),)
        )
        with pytest.raises(SystemExit, match="bad baseline"):
            main(
                [
                    "bench",
                    "--output-dir",
                    str(tmp_path),
                    "--no-write",
                    "--baseline",
                    str(tmp_path / "missing.json"),
                ]
            )


class TestBaselineHygiene:
    """PR-5 regressions: dirty BENCH files and degraded baselines."""

    @staticmethod
    def _git(repo, *args):
        import subprocess

        return subprocess.run(
            ["git", *args],
            cwd=repo,
            capture_output=True,
            text=True,
            check=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(repo),
                "PATH": __import__("os").environ.get("PATH", ""),
            },
        )

    def _git_repo(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        return repo

    def test_untracked_bench_file_is_not_a_baseline(self, tmp_path):
        repo = self._git_repo(tmp_path)
        committed = write_report(_report(rev="committed"), repo)
        self._git(repo, "add", committed.name)
        self._git(repo, "commit", "-q", "-m", "baseline")
        # A leftover local run: newer stamp, never committed.
        dirty = write_report(
            _report(rev="dirtylocal"), repo
        )
        payload = json.loads(dirty.read_text())
        payload["created"] = "2099-01-01T00:00:00+00:00"
        dirty.write_text(json.dumps(payload))
        assert find_baseline(repo) == committed

    def test_modified_committed_bench_file_is_not_a_baseline(self, tmp_path):
        repo = self._git_repo(tmp_path)
        first = write_report(_report(rev="first"), repo)
        second = write_report(_report(rev="second"), repo)
        self._git(repo, "add", first.name, second.name)
        self._git(repo, "commit", "-q", "-m", "baselines")
        # Hand-edit one: it drops out; the clean one wins even if older.
        payload = json.loads(second.read_text())
        payload["created"] = "2099-01-01T00:00:00+00:00"
        second.write_text(json.dumps(payload))
        assert find_baseline(repo) == first

    def test_all_dirty_means_no_baseline(self, tmp_path):
        repo = self._git_repo(tmp_path)
        write_report(_report(rev="only"), repo)
        assert find_baseline(repo) is None

    def test_outside_git_every_report_is_eligible(self, tmp_path):
        # tmp_path is no work tree: the historical behaviour stands.
        newest = write_report(_report(rev="anyone"), tmp_path)
        assert find_baseline(tmp_path) == newest

    def test_baseline_missing_host_skips_walls_keeps_ratio_gates(
        self, tmp_path
    ):
        # An early-generation baseline without host tagging must load,
        # refuse wall comparison, and leave ratio gating untouched.
        path = write_report(_report(rev="old", host="x"), tmp_path)
        payload = json.loads(path.read_text())
        del payload["host"]
        path.write_text(json.dumps(payload))
        baseline = load_report(path)
        assert baseline.host == ""
        current = _report(rev="new")
        assert not walls_comparable(current, baseline)
        assert compare_reports(current, baseline) == []

    def test_baseline_missing_results_loads_and_compares_empty(
        self, tmp_path
    ):
        path = tmp_path / "BENCH_bare.json"
        path.write_text(json.dumps({"schema": 1, "rev": "bare"}))
        baseline = load_report(path)
        assert baseline.results == {}
        assert compare_reports(_report(), baseline) == []

    def test_result_entry_missing_wall_is_dropped_not_fatal(self, tmp_path):
        path = write_report(
            _report(rev="mixed", walls={"good": 1.0, "bad": 2.0}), tmp_path
        )
        payload = json.loads(path.read_text())
        del payload["results"]["bad"]["wall_s"]
        path.write_text(json.dumps(payload))
        baseline = load_report(path)
        assert set(baseline.results) == {"good"}
        regressions = compare_reports(
            _report(walls={"good": 10.0, "bad": 10.0}), baseline
        )
        assert [r.case for r in regressions] == ["good"]


class TestWallBudgets:
    def test_over_budget_case_fails_the_gate(self):
        report = _report(walls={"scenario-compose-10k": 9.0})
        failures = failed_gates(report)
        assert any("acceptance budget" in f for f in failures)

    def test_within_budget_passes(self):
        report = _report(walls={"scenario-compose-10k": 1.2})
        assert failed_gates(report) == []

    def test_budget_ignored_when_case_absent(self):
        assert failed_gates(_report(walls={"case-a": 100.0})) == []

    def test_run_suite_records_budget_headroom_in_checks(self, monkeypatch):
        from repro.perf import suite as perf_suite

        def fake_cases(_suite):
            return [
                BenchCase(
                    name="scenario-compose-10k",
                    summary="fake",
                    setup=lambda: None,
                    run=lambda _s: {"nodes": 1.0},
                    repeats=1,
                )
            ]

        monkeypatch.setattr(perf_bench, "bench_cases", fake_cases)
        report = perf_bench.run_suite("full")
        assert "scenario-10k-build-budget" in report.checks
        assert report.checks["scenario-10k-build-budget"] == pytest.approx(
            report.results["scenario-compose-10k"].wall_s
        )
