"""Boundary-distance semantics: index vs brute force at exactly the range.

Three code paths answer "who is within range" and must agree bit-for-bit,
including for nodes placed *exactly* at the nominal range (where a ``<``
vs ``<=`` disagreement, or float drift in the spatial hash's cell
arithmetic, would silently disconnect grid neighbours):

* :meth:`Layout.neighbors_within` — the O(n) brute-force scan (ground
  truth, uses :func:`in_range`'s inclusive epsilon);
* :class:`NeighborIndex` — the medium's precomputed spatial-hash sets;
* :meth:`CsrGraph.from_layout` — the routing engines' adjacency builder.

The hypothesis property below *constructs* exactly-at-range pairs: node
coordinates are integers and the radio range is set to the exact distance
of a randomly chosen pair, so every run exercises the boundary, not just
the interior.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.index import NeighborIndex
from repro.channel.propagation import UnitDiscPropagation
from repro.net.csr import CsrGraph
from repro.topology.geometry import Position, in_range
from repro.topology.layout import Layout, grid_layout


class _FakePort:
    """The minimal port surface NeighborIndex needs (node_id, range_m)."""

    def __init__(self, node_id: int, range_m: float):
        self.node_id = node_id
        self.range_m = range_m


def _brute_force(layout: Layout, node: int, range_m: float) -> set[int]:
    return set(layout.neighbors_within(node, range_m))


def _index_sets(layout: Layout, range_m: float) -> dict[int, set[int]]:
    ports = {i: _FakePort(i, range_m) for i in layout.node_ids}
    index = NeighborIndex(layout, ports, UnitDiscPropagation(layout))
    return {i: set(index.neighbors(i)) for i in layout.node_ids}


def _csr_sets(layout: Layout, range_m: float) -> dict[int, set[int]]:
    csr = CsrGraph.from_layout(layout, range_m)
    return {i: set(csr.neighbor_ids(i)) for i in layout.node_ids}


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_exactly_at_range_agrees_everywhere(data):
    n = data.draw(st.integers(3, 16), label="n")
    coords = data.draw(
        st.lists(
            st.tuples(st.integers(0, 60), st.integers(0, 60)),
            min_size=n,
            max_size=n,
            unique=True,
        ),
        label="coords",
    )
    layout = Layout(
        {i: Position(float(x), float(y)) for i, (x, y) in enumerate(coords)}
    )
    # Pin the range to the exact float distance of one pair: that pair
    # sits precisely on the boundary every single example.
    a = data.draw(st.integers(0, n - 1), label="a")
    b = data.draw(st.integers(0, n - 1).filter(lambda v: v != a), label="b")
    range_m = layout.distance(a, b)
    index_sets = _index_sets(layout, range_m)
    csr_sets = _csr_sets(layout, range_m)
    for node in layout.node_ids:
        expected = _brute_force(layout, node, range_m)
        assert index_sets[node] == expected
        assert csr_sets[node] == expected
    # The boundary pair itself must be connected (inclusive semantics).
    assert b in index_sets[a] and a in index_sets[b]


def test_grid_neighbors_at_exact_spacing():
    # The paper's own boundary case: 40 m grid, 40 m radios.  Orthogonal
    # neighbours are exactly at range and must stay connected on every
    # representation.
    layout = grid_layout(3, 3, 40.0)
    for sets in (_index_sets(layout, 40.0), _csr_sets(layout, 40.0)):
        assert sets[4] == {1, 3, 5, 7}
        assert sets[0] == {1, 3}


def test_float_accumulated_spacing_matches_brute_force():
    # Positions built by repeated float addition (k * 0.1 is inexact)
    # drift off the lattice; the hash's cell arithmetic must not disagree
    # with the plain distance predicate about any of those pairs.
    spacing = 0.1
    layout = Layout(
        {
            row * 8 + col: Position(col * spacing, row * spacing)
            for row in range(8)
            for col in range(8)
        }
    )
    for range_m in (spacing, 2 * spacing, 3 * spacing):
        index_sets = _index_sets(layout, range_m)
        csr_sets = _csr_sets(layout, range_m)
        for node in layout.node_ids:
            expected = _brute_force(layout, node, range_m)
            assert index_sets[node] == expected, (node, range_m)
            assert csr_sets[node] == expected, (node, range_m)


def test_far_from_origin_offsets_do_not_diverge():
    # Cell indexes are floor(x / cell): far from the origin the quotient
    # loses absolute precision, which must never flip membership answers
    # against the brute-force scan.
    base = 1e7
    layout = Layout(
        {
            i: Position(base + i * 40.0, base - i * 40.0)
            for i in range(6)
        }
    )
    range_m = layout.distance(0, 1)  # exactly one step
    index_sets = _index_sets(layout, range_m)
    csr_sets = _csr_sets(layout, range_m)
    for node in layout.node_ids:
        expected = _brute_force(layout, node, range_m)
        assert index_sets[node] == expected
        assert csr_sets[node] == expected


def test_zero_range_ports_terminate_and_hear_colocated_only():
    # Regression for the degenerate spatial-hash cell: with zero-range
    # ports the historical cell size collapsed to 1e-9 m while the
    # epsilon-padded reach stayed 1e-6 m, exploding the scan window to
    # ~2000 cells per axis.  Cells are now sized to the inclusive reach,
    # so this returns (quickly) and only co-located nodes are audible
    # within in_range()'s epsilon.
    layout = Layout(
        {
            0: Position(0.0, 0.0),
            1: Position(0.0, 0.0),  # co-located: audible at range 0
            2: Position(5.0, 0.0),
            3: Position(0.0, 5.0),
        }
    )
    index_sets = _index_sets(layout, 0.0)
    assert index_sets[0] == {1}
    assert index_sets[2] == set()
    for node in layout.node_ids:
        assert index_sets[node] == _brute_force(layout, node, 0.0)
    assert in_range(Position(0.0, 0.0), Position(0.0, 0.0), 0.0)
