"""RoutingError / partition handling through the full scenario path.

The routing unit tests pin :class:`RoutingError` for disconnected pairs on
bare tables; these tests drive the same contract through
:class:`ScenarioConfig` → :func:`build_network` → run, for *both* routing
engines — the paths a composed deployment actually takes.  The deployment
is a from-file topology with two internally connected islands 1 km apart,
far beyond every radio's 40 m range.
"""

from __future__ import annotations

import pytest

from repro.models.scenario import ScenarioConfig, build_network
from repro.net.routing import RoutingError
from repro.topology.registry import TopologySpec
from repro.sim.simulator import Simulator

#: Two three-node line islands (spacing 30 m < the 40 m radio range),
#: 1 km apart: nodes 0-2 form the sink's island, 3-5 the far island.
ISLANDS = TopologySpec.of(
    "from-file",
    positions=(
        (0, 0.0, 0.0),
        (1, 30.0, 0.0),
        (2, 60.0, 0.0),
        (3, 1000.0, 0.0),
        (4, 1030.0, 0.0),
        (5, 1060.0, 0.0),
    ),
)

ENGINES = ("eager", "lazy")


def _config(**overrides):
    defaults = dict(
        model="dual",
        topology=ISLANDS,
        sink=0,
        n_senders=5,
        burst_packets=10,
        rate_bps=2000.0,
        sim_time_s=30.0,
        seed=1,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestPartitionedSendersFailFast:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("model", ("sensor", "wifi", "dual"))
    def test_build_raises_helpful_error_naming_the_senders(
        self, engine, model
    ):
        # n_senders = 5 makes every non-sink node a sender, so the far
        # island's 3, 4, 5 are senders with no path to sink 0.
        config = _config(model=model, routing=engine)
        with pytest.raises(ValueError, match=r"cannot reach sink 0"):
            build_network(config, Simulator(seed=config.seed))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_error_lists_exactly_the_partitioned_senders(self, engine):
        config = _config(routing=engine)
        with pytest.raises(ValueError, match=r"\[3, 4, 5\]"):
            build_network(config, Simulator(seed=config.seed))


class TestRoutingErrorNamesEndpointsAndEpoch:
    """A partition error must say *which* pair failed and *when*: bare
    "no route" messages are useless once fault injection makes
    reachability time-dependent."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_message_includes_src_dst_and_epoch(self, engine):
        config = _config(
            n_senders=2,
            traffic_mix=((1, "cbr"), (2, "cbr")),
            routing=engine,
        )
        built = build_network(config, Simulator(seed=config.seed))
        table = built.route_tables["low"]
        with pytest.raises(
            RoutingError, match=r"no route from 3 to 0 \(topology epoch 0\)"
        ):
            table.next_hop(3, 0)
        # After fault injection bumps the epoch, the message names the
        # epoch the lookup actually failed in.
        table.invalidate_epoch(4, dead=(5,))
        with pytest.raises(
            RoutingError, match=r"no route from 3 to 0 \(topology epoch 4\)"
        ):
            table.next_hop(3, 0)
        with pytest.raises(
            RoutingError, match=r"no route from 1 to 5 \(topology epoch 4\)"
        ):
            table.next_hop(1, 5)


class TestConnectedSubsetRunsBesideIsland:
    """Senders pinned to the sink's island: the run completes, and the
    built tables still raise RoutingError for cross-island pairs."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_run_delivers_and_tables_raise_for_island_pairs(self, engine):
        # traffic_mix forces the two connected nodes to be the senders
        # (mix nodes always send; no random slots remain).
        config = _config(
            n_senders=2,
            traffic_mix=((1, "cbr"), (2, "cbr")),
            routing=engine,
        )
        sim = Simulator(seed=config.seed)
        built = build_network(config, sim)
        agent = built.agents[1]
        for table in (agent.low_routing, agent.high_routing):
            assert table.has_route(1, 0)
            assert not table.has_route(3, 0)
            with pytest.raises(RoutingError):
                table.next_hop(3, 0)
            with pytest.raises(RoutingError):
                table.hops(0, 5)
        sim.run(until=config.sim_time_s)
        collector = built.collector
        assert collector is not None
        assert collector.bits_delivered > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sensor_model_forwarding_counts_unroutable(self, engine):
        # The sensor model's ForwardingAgent degrades per packet: submit
        # a packet for the far island on the *live* network and the
        # RoutingError is absorbed into the unroutable counter.
        from repro.net.packets import DataPacket

        config = _config(
            model="sensor",
            n_senders=2,
            traffic_mix=((1, "cbr"), (2, "cbr")),
            routing=engine,
        )
        sim = Simulator(seed=config.seed)
        built = build_network(config, sim)
        agent = built.agents[1]
        before = agent.packets_unroutable
        agent.submit(
            DataPacket(src=1, dst=4, payload_bits=256, created_s=sim.now)
        )
        assert agent.packets_unroutable == before + 1
