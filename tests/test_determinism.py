"""Golden-trace determinism: every backend, byte-for-byte, pinned in-repo.

Distributed results are only trustworthy if execution strategy can never
change them.  These tests run one small sweep through every backend —
serial, a 2-worker process pool, and two complementary shards merged via
the real manifest/merge path — and assert the serialized results are
byte-identical.  One digest is pinned as a repo constant: if it changes,
either the simulator's semantics changed (bump
:data:`repro.runner.hashing.CACHE_SCHEMA_VERSION` and re-pin, in the same
commit that explains why) or a nondeterminism bug crept in (fix it).
"""

from repro.cli.main import build_parser, render_artifact
from repro.models.scenario import run_scenario
from repro.models.sweeps import SweepScale, run_sweep, sweep_digest, sweep_plan
from repro.runner import (
    ProcessBackend,
    ResultCache,
    SerialBackend,
    ShardBackend,
    ShardSpec,
    SweepRunner,
    config_key,
    merge_shards,
    results_digest,
    write_shard_manifest,
)

#: The golden sweep: small enough for CI, big enough that every model
#: (dual, sensor, 802.11) and both sender counts contribute cells.
GOLDEN_SCALE = SweepScale(
    senders=(2, 3), bursts=(10,), n_runs=1, sim_time_s=10.0
)
GOLDEN_CASE = "SH"
GOLDEN_RATE = 2000.0

#: sha256 of the canonical serialization of the golden sweep's results.
#: Pinned on purpose: regressions in determinism or silent semantic
#: drift in the simulator must be LOUD.  Re-pin only with a schema bump.
#: Re-pinned with CACHE_SCHEMA_VERSION 6: MAC runs now export a
#: ``mac.acks_dropped`` counter (the previously silent half-duplex ACK
#: drop), which is part of the digested counters dict.  Every delivery,
#: energy figure and pre-existing counter is byte-identical to the v5
#: goldens; only the new key changed the serialization.  Both MAC
#: engines × both schedulers reproduce these digests (asserted below).
GOLDEN_DIGEST = "f6a136749dadd377938a50c314f7c2b945021fafceaa10e5f51211735d3f0d6e"

#: Same contract for the prototype testbed path.  Unchanged by the v6
#: re-pin: the prototype path builds no MACs.
GOLDEN_PROTOTYPE_DIGEST = (
    "bc80e69b5ff25ed8d99a7a399fd4af2a03b0df2c72ec4a2fb6f2d5241cc41cee"
)

#: Same contract for the scenario-composition axes: one non-grid scenario
#: (random topology + log-normal shadowing + mixed radios + traffic mix),
#: pinned so the generated-deployment and propagation code paths cannot
#: drift silently either.  Re-pinned with v6 (``mac.acks_dropped``).
GOLDEN_COMPOSED_DIGEST = (
    "cbc69a0e7d02edf4c04b523e2c4331321aa23c1a765df9f29b0d6901bd0977a3"
)

#: The non-default routing policies consciously diverge from the min-hop
#: goldens (they pick different routes), so each gets its own pinned
#: composed digest.  ``tx-energy`` runs the composed scenario as-is;
#: ``residual-energy`` additionally carries a battery FaultPlan so the
#: pin covers the injector composition: battery deaths → epoch
#: invalidation, battery polls → mid-epoch ``refresh_costs``.
GOLDEN_TX_ENERGY_DIGEST = (
    "6505d30d78aa3a0c65fd4118075fe8ceae5bf02c0f96204b22854360ac6ce34a"
)
GOLDEN_RESIDUAL_DIGEST = (
    "8ced0ae0c76d02e00454fa67c630dc0a04d76e4a7fdf9f3860df710dd01c8352"
)


def residual_faults():
    """The battery plan the residual-energy pin composes with.

    0.006 J at the composed scenario's load kills two relays mid-run
    (first death at t=14 s) while the network keeps delivering — the
    interesting regime where routes must actually react."""
    from repro.faults import FaultPlan

    return FaultPlan(battery_capacity_j=0.006, battery_poll_s=2.0)


def composed_config():
    from repro.channel.propagation import PropagationSpec
    from repro.models.scenario import RadioAssignment, ScenarioConfig
    from repro.topology.registry import TopologySpec

    return ScenarioConfig(
        model="dual",
        topology=TopologySpec.of(
            # Dense relative to the 40 m radio range: shadowed links
            # survive at this scenario's seed on every tier.
            "uniform-random", n=12, width_m=70.0, height_m=70.0,
            connect_range_m=30.0,
        ),
        propagation=PropagationSpec.of("log-normal", sigma_db=2.0),
        high_radios=RadioAssignment(overrides=((0, "Cabletron"),)),
        traffic_mix=((3, "poisson"),),
        sink=0,
        n_senders=4,
        sim_time_s=30.0,
        burst_packets=10,
        seed=7,
    )


def golden_sweep(runner=None):
    return run_sweep(
        GOLDEN_CASE, GOLDEN_SCALE, rate_bps=GOLDEN_RATE, runner=runner
    )


class TestGoldenDigest:
    def test_serial_run_matches_pinned_digest(self):
        sweep = golden_sweep(SweepRunner(backend=SerialBackend()))
        assert sweep_digest(sweep) == GOLDEN_DIGEST

    def test_prototype_matches_pinned_digest(self):
        from repro.testbed.experiment import PrototypeConfig, sweep_thresholds

        results = sweep_thresholds(
            [1024.0, 2048.0],
            base_config=PrototypeConfig(n_messages=100),
            runner=SweepRunner(backend=SerialBackend()),
        )
        assert results_digest(results) == GOLDEN_PROTOTYPE_DIGEST

    def test_composed_scenario_matches_pinned_digest(self):
        assert (
            results_digest([run_scenario(composed_config())])
            == GOLDEN_COMPOSED_DIGEST
        )

    def test_composed_scenario_calendar_scheduler_matches_pinned_digest(self):
        # The agenda backend is performance-only: the calendar scheduler
        # must reproduce the SAME pinned bytes as the heap default.
        import dataclasses

        config = dataclasses.replace(composed_config(), scheduler="calendar")
        assert (
            results_digest([run_scenario(config)]) == GOLDEN_COMPOSED_DIGEST
        )

    def test_composed_scenario_generator_mac_matches_pinned_digest(self):
        # The MAC engine is performance-only too: the historical generator
        # engine must reproduce the SAME pinned bytes as the flat default.
        import dataclasses

        config = dataclasses.replace(composed_config(), mac_engine="generator")
        assert (
            results_digest([run_scenario(config)]) == GOLDEN_COMPOSED_DIGEST
        )

    def test_schedulers_and_mac_engines_byte_identical_on_paper_grid_cell(self):
        # The full engine × scheduler grid on a paper cell collapses to
        # one digest: agenda backend and MAC engine are both
        # performance-only axes.
        import dataclasses

        from repro.models.scenario import single_hop_config

        config = single_hop_config(
            n_senders=3, burst_packets=10, rate_bps=2000.0, sim_time_s=10.0
        )
        digests = {
            results_digest(
                [
                    run_scenario(
                        dataclasses.replace(
                            config, mac_engine=engine, scheduler=scheduler
                        )
                    )
                ]
            )
            for engine in ("flat", "generator")
            for scheduler in ("heap", "calendar")
        }
        assert len(digests) == 1

    def test_zero_fault_plan_byte_identical_across_engine_grid(self):
        # A configured-but-empty FaultPlan must be inert: no injector, no
        # extra counters, no perturbed rng draws — the pinned composed
        # digest reproduces across the full scheduler × MAC engine grid.
        import dataclasses

        from repro.faults import FaultPlan

        plan = FaultPlan()
        assert plan.is_zero
        digests = {
            results_digest(
                [
                    run_scenario(
                        dataclasses.replace(
                            composed_config(),
                            faults=plan,
                            mac_engine=engine,
                            scheduler=scheduler,
                        )
                    )
                ]
            )
            for engine in ("flat", "generator")
            for scheduler in ("heap", "calendar")
        }
        assert digests == {GOLDEN_COMPOSED_DIGEST}

    def test_tx_energy_policy_matches_pinned_digest(self):
        # The energy policy diverges from the hops goldens on purpose;
        # its own pin keeps the Dijkstra/cost path from drifting.
        import dataclasses

        config = dataclasses.replace(
            composed_config(), routing_policy="tx-energy"
        )
        assert (
            results_digest([run_scenario(config)]) == GOLDEN_TX_ENERGY_DIGEST
        )

    def test_residual_policy_with_batteries_matches_pinned_digest(self):
        # residual-energy × battery faults: deaths invalidate epochs and
        # polls refresh live costs, all pinned byte-for-byte.
        import dataclasses

        config = dataclasses.replace(
            composed_config(),
            routing_policy="residual-energy",
            faults=residual_faults(),
        )
        assert (
            results_digest([run_scenario(config)]) == GOLDEN_RESIDUAL_DIGEST
        )

    def test_policy_digests_reproduce_across_engine_grid(self):
        # Scheduler and MAC engine stay performance-only under the new
        # policies too: the full grid collapses onto the same pins.
        import dataclasses

        digests = {
            results_digest(
                [
                    run_scenario(
                        dataclasses.replace(
                            composed_config(),
                            routing_policy="tx-energy",
                            mac_engine=engine,
                            scheduler=scheduler,
                        )
                    )
                ]
            )
            for engine in ("flat", "generator")
            for scheduler in ("heap", "calendar")
        }
        assert digests == {GOLDEN_TX_ENERGY_DIGEST}

    def test_digest_is_sensitive_to_results(self):
        sweep = golden_sweep(SweepRunner(backend=SerialBackend()))
        baseline = sweep_digest(sweep)
        label = next(iter(sweep.cells))
        count = next(iter(sweep.cells[label]))
        sweep.cells[label][count].results[0].delivered_bits += 1.0
        assert sweep_digest(sweep) != baseline


class TestBackendsAreByteIdentical:
    def test_process_pool_matches_serial(self):
        serial = golden_sweep(SweepRunner(backend=SerialBackend()))
        process = golden_sweep(SweepRunner(backend=ProcessBackend(2)))
        assert sweep_digest(process) == sweep_digest(serial)
        assert process.cells == serial.cells

    def test_merged_shards_match_serial(self, tmp_path):
        serial = golden_sweep(SweepRunner(backend=SerialBackend()))
        plan = sweep_plan(GOLDEN_CASE, GOLDEN_SCALE, rate_bps=GOLDEN_RATE)
        configs = [planned.config for planned in plan]
        keys = [config_key(config) for config in configs]
        # both shards of the plan are non-trivial
        owned0 = sum(ShardSpec(0, 2).owns(key) for key in keys)
        assert 0 < owned0 < len(keys)
        for index in range(2):
            spec = ShardSpec(index, 2)
            shard_dir = tmp_path / f"s{index}"
            SweepRunner(
                cache=ResultCache(shard_dir),
                backend=ShardBackend(spec, SerialBackend()),
            ).map(run_scenario, configs)
            write_shard_manifest(
                shard_dir, spec, [k for k in keys if spec.owns(k)]
            )
        merged = tmp_path / "merged"
        report = merge_shards(merged, [tmp_path / "s0", tmp_path / "s1"])
        assert report.complete
        cache = ResultCache(merged)
        from_shards = golden_sweep(SweepRunner(cache=cache))
        assert cache.stats.stores == 0  # everything came from the merge
        assert cache.stats.hits == len(configs)
        assert sweep_digest(from_shards) == sweep_digest(serial)
        assert sweep_digest(from_shards) == GOLDEN_DIGEST


class TestShardCliAcceptance:
    """Acceptance: --shard 0/2 + --shard 1/2 + merge-shards ≡ serial run."""

    ARGS = ("fig5", "--runs", "1", "--sim-time", "10", "--senders", "2", "3",
            "--bursts", "10")

    @staticmethod
    def parse(*argv):
        return build_parser().parse_args(list(argv))

    def test_sharded_figure_is_byte_identical_to_serial(self, tmp_path):
        from repro.cli import main

        serial_text = render_artifact(self.parse(*self.ARGS, "--no-cache"))
        for index in range(2):
            render_artifact(
                self.parse(
                    *self.ARGS,
                    "--shard", f"{index}/2",
                    "--cache-dir", str(tmp_path / f"s{index}"),
                )
            )
        merged = tmp_path / "merged"
        assert main(
            ["merge-shards", str(merged)]
            + [str(tmp_path / f"s{i}") for i in range(2)]
        ) == 0
        warm_text = render_artifact(
            self.parse(*self.ARGS, "--cache-dir", str(merged))
        )
        assert warm_text == serial_text
        # and the merged render recomputed nothing: rendering again with a
        # counting cache shows pure hits
        cache = ResultCache(merged)
        golden_sweep(SweepRunner(cache=cache))
        assert cache.stats.stores == 0

    def test_shard_runs_cover_disjoint_cells(self, tmp_path):
        seen: dict[int, set[str]] = {}
        for index in range(2):
            shard_dir = tmp_path / f"s{index}"
            render_artifact(
                self.parse(
                    *self.ARGS,
                    "--shard", f"{index}/2",
                    "--cache-dir", str(shard_dir),
                )
            )
            seen[index] = {p.stem for p in shard_dir.glob("*.json")}
        assert seen[0] and seen[1]
        assert seen[0].isdisjoint(seen[1])


class TestReplicaDeterminism:
    def test_shard_partition_of_replicas_is_stable(self):
        # the same plan laid out twice shards identically — no hidden
        # per-process state leaks into cell identity
        plan_a = sweep_plan(GOLDEN_CASE, GOLDEN_SCALE, rate_bps=GOLDEN_RATE)
        plan_b = sweep_plan(GOLDEN_CASE, GOLDEN_SCALE, rate_bps=GOLDEN_RATE)
        keys_a = [config_key(p.config) for p in plan_a]
        keys_b = [config_key(p.config) for p in plan_b]
        assert keys_a == keys_b
        assert [ShardSpec(0, 3).owns(k) for k in keys_a] == [
            ShardSpec(0, 3).owns(k) for k in keys_b
        ]

    def test_digest_stable_across_repeated_runs(self):
        first = golden_sweep(SweepRunner(backend=SerialBackend()))
        second = golden_sweep(SweepRunner(backend=SerialBackend()))
        assert sweep_digest(first) == sweep_digest(second)


if __name__ == "__main__":  # pragma: no cover - digest (re)pin helper
    sweep = golden_sweep()
    print("GOLDEN_DIGEST =", repr(sweep_digest(sweep)))
    from repro.testbed.experiment import PrototypeConfig, sweep_thresholds

    results = sweep_thresholds(
        [1024.0, 2048.0], base_config=PrototypeConfig(n_messages=100)
    )
    print("GOLDEN_PROTOTYPE_DIGEST =", repr(results_digest(results)))
    print(
        "GOLDEN_COMPOSED_DIGEST =",
        repr(results_digest([run_scenario(composed_config())])),
    )
    import dataclasses

    print(
        "GOLDEN_TX_ENERGY_DIGEST =",
        repr(
            results_digest(
                [
                    run_scenario(
                        dataclasses.replace(
                            composed_config(), routing_policy="tx-energy"
                        )
                    )
                ]
            )
        ),
    )
    print(
        "GOLDEN_RESIDUAL_DIGEST =",
        repr(
            results_digest(
                [
                    run_scenario(
                        dataclasses.replace(
                            composed_config(),
                            routing_policy="residual-energy",
                            faults=residual_faults(),
                        )
                    )
                ]
            )
        ),
    )
