"""Property-based tests of BCP end-to-end invariants.

On an ideal two-node link, whatever the traffic pattern and threshold:

* **conservation** — every submitted packet is exactly one of delivered /
  still buffered / dropped-at-buffer; nothing is created or duplicated;
* **ordering** — per-flow delivery preserves generation order (FIFO
  buffers + in-order bursts);
* **threshold** — no handshake starts while the buffer is below the
  threshold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.medium import Medium
from repro.core.bcp import BcpAgent
from repro.core.config import BcpConfig
from repro.energy.meter import EnergyMeter
from repro.energy.radio_specs import LUCENT_11, MICAZ
from repro.mac.csma import SensorCsmaMac
from repro.mac.dcf import DcfMac
from repro.net.packets import DataPacket
from repro.net.routing import build_routing
from repro.radio.radio import HighPowerRadio, LowPowerRadio
from repro.sim import Simulator
from repro.topology import line_layout


def build_pair(threshold_packets, capacity_packets, seed):
    sim = Simulator(seed=seed)
    layout = line_layout(2, 40.0)
    low_medium = Medium(sim, layout, "low")
    high_medium = Medium(sim, layout, "high")
    meters = {i: EnergyMeter(str(i)) for i in (0, 1)}
    low = {
        i: LowPowerRadio(sim, i, MICAZ, low_medium, meters[i]) for i in (0, 1)
    }
    high = {
        i: HighPowerRadio(sim, i, LUCENT_11, high_medium, meters[i])
        for i in (0, 1)
    }
    low_macs = {i: SensorCsmaMac(sim, low[i]) for i in (0, 1)}
    high_macs = {i: DcfMac(sim, high[i]) for i in (0, 1)}
    table = build_routing(layout, 40.0)
    config = BcpConfig.for_burst_packets(
        threshold_packets,
        buffer_capacity_bytes=float(capacity_packets * 32),
    )
    delivered = []
    agents = {
        i: BcpAgent(
            sim,
            i,
            config,
            low_mac=low_macs[i],
            high_mac=high_macs[i],
            high_radio=high[i],
            low_routing=table,
            high_routing=table,
            deliver=delivered.append,
        )
        for i in (0, 1)
    }
    return sim, agents, delivered


@settings(max_examples=20, deadline=None)
@given(
    batches=st.lists(st.integers(min_value=1, max_value=12), min_size=1,
                     max_size=8),
    threshold=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_conservation_and_order(batches, threshold, seed):
    capacity = max(threshold, 64)
    sim, agents, delivered = build_pair(threshold, capacity, seed)
    sender = agents[0]
    submitted = []

    def feed():
        for batch in batches:
            for _ in range(batch):
                packet = DataPacket(src=0, dst=1, payload_bits=256,
                                    created_s=sim.now)
                submitted.append(packet)
                sender.submit(packet)
            yield sim.timeout(0.5)

    sim.process(feed())
    sim.run(until=120.0)

    stats = sender.stats
    buffered = sender.buffer.packets_for(1)
    assert stats.packets_submitted == len(submitted)
    # Conservation: everything is delivered, buffered, dropped, or was
    # lost by the MAC (impossible on this clean link).
    assert stats.packets_lost_mac == 0
    assert len(delivered) + buffered + stats.packets_dropped_buffer == len(
        submitted
    )
    # No duplicates.
    ids = [packet.packet_id for packet in delivered]
    assert len(ids) == len(set(ids))
    # FIFO order per flow.
    submitted_ids = [p.packet_id for p in submitted]
    positions = {pid: i for i, pid in enumerate(submitted_ids)}
    assert ids == sorted(ids, key=positions.__getitem__)


@settings(max_examples=15, deadline=None)
@given(
    n_packets=st.integers(min_value=0, max_value=40),
    threshold=st.integers(min_value=2, max_value=20),
)
def test_no_handshake_below_threshold(n_packets, threshold):
    sim, agents, delivered = build_pair(threshold, 1000, seed=1)
    sender = agents[0]
    for _ in range(n_packets):
        sender.submit(DataPacket(src=0, dst=1, payload_bits=256,
                                 created_s=sim.now))
    sim.run(until=30.0)
    if n_packets < threshold:
        assert sender.stats.wakeups_sent == 0
        assert delivered == []
    else:
        assert sender.stats.wakeups_sent >= 1
        assert len(delivered) == n_packets


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_radio_always_off_at_quiescence(seed):
    """Whenever all traffic has drained, both high radios must be off —
    BCP never leaks a radio hold."""
    sim, agents, delivered = build_pair(4, 1000, seed)
    for _ in range(16):
        agents[0].submit(DataPacket(src=0, dst=1, payload_bits=256,
                                    created_s=sim.now))
    sim.run(until=60.0)
    assert len(delivered) == 16
    assert not agents[0].high_radio.is_on
    assert not agents[1].high_radio.is_on
