"""10k-node construction smoke: the flyweight/SoA path at full scale.

Marked ``slow``: nightly/full CI selects it explicitly (``-m slow``)
alongside ``repro bench --suite full``, whose ``scenario-compose-10k``
case carries the < 5 s acceptance budget.  This test pins *correctness*
of the at-scale build — flyweight sharing, lazy engine auto-selection,
routing of the collection workload — not its wall time.
"""

from __future__ import annotations

import pytest

from repro.models.scenario import ScenarioConfig, build_network, select_senders
from repro.net.routing import LazyRoutingTable
from repro.sim.simulator import Simulator
from repro.topology.registry import TopologySpec

N = 10_000


@pytest.fixture(scope="module")
def built_10k():
    config = ScenarioConfig(
        model="dual",
        topology=TopologySpec.of(
            "uniform-random", n=N, width_m=2200.0, height_m=2200.0
        ),
        sink=0,
        n_senders=10,
        sim_time_s=10.0,
        seed=1,
    )
    sim = Simulator(seed=config.seed)
    return config, sim, build_network(config, sim)


@pytest.mark.slow
class TestTenThousandNodeBuild:
    def test_fleet_is_complete(self, built_10k):
        config, _sim, built = built_10k
        assert len(built.agents) == N
        assert len(built.low_radios) == N
        assert len(built.high_radios) == N
        assert built.meter_bank is not None
        assert built.meter_bank.n_nodes == N

    def test_auto_routing_picks_lazy_and_stays_lazy(self, built_10k):
        config, _sim, built = built_10k
        assert config.routing_engine() == "lazy"
        agent = built.agents[1]
        assert isinstance(agent.low_routing, LazyRoutingTable)
        assert isinstance(agent.high_routing, LazyRoutingTable)
        # The collection workload (senders + sink) computes a handful of
        # trees, not 10k — the property that makes the scale affordable.
        assert agent.low_routing.trees_computed <= config.n_senders + 1

    def test_flyweight_specs_are_shared(self, built_10k):
        config, _sim, built = built_10k
        sink_spec = built.agents[config.sink].spec
        other_specs = {
            id(built.agents[node].spec) for node in (1, 2, 5000, N - 1)
        }
        assert len(other_specs) == 1
        assert id(sink_spec) not in other_specs
        # The sink advertises an unbounded buffer; motes share one config.
        assert built.agents[config.sink].config.buffer_capacity_bytes == float(
            "inf"
        )
        assert built.agents[1].config is built.agents[N - 1].config

    def test_senders_route_to_sink(self, built_10k):
        config, sim, built = built_10k
        table = built.agents[0].low_routing
        for sender in select_senders(config, sim):
            assert table.has_route(sender, config.sink)
            assert table.hops(sender, config.sink) >= 1
