"""Cache garbage collection: eviction policies, locking, concurrency."""

import dataclasses
import json
import os
import time

import pytest

from repro.runner import (
    CacheDirLock,
    CacheLockedError,
    ResultCache,
    write_shard_manifest,
)
from repro.runner.shard import ShardSpec
from repro.stats.metrics import RunResult


@dataclasses.dataclass
class Cfg:
    """A minimal config standing in for a scenario (no simulation runs)."""

    seed: int = 1


def fake_result(seed: int = 1) -> RunResult:
    return RunResult(
        model="dual",
        sim_time_s=10.0,
        generated_bits=100.0,
        delivered_bits=float(seed),
        mean_delay_s=0.1,
        max_delay_s=0.2,
        energy_j={"total": 1.0},
    )


def put_aged(cache: ResultCache, seed: int, age_s: float, now: float):
    """Store an entry and backdate its mtime ``age_s`` before ``now``."""
    path = cache.put(Cfg(seed), fake_result(seed))
    os.utime(path, times=(now - age_s, now - age_s))
    return path


class TestGcPolicies:
    def test_noop_on_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        report = cache.gc(max_bytes=0)
        assert report.scanned == 0
        assert report.evicted == 0

    def test_corrupt_entries_evicted(self, tmp_path):
        now = time.time()
        cache = ResultCache(tmp_path)
        keep = put_aged(cache, 1, age_s=300.0, now=now)
        rot = put_aged(cache, 2, age_s=300.0, now=now)
        rot.write_text("{ definitely not json")
        os.utime(rot, times=(now - 300.0, now - 300.0))
        stale = put_aged(cache, 3, age_s=300.0, now=now)
        entry = json.loads(stale.read_text())
        entry["schema"] = -1
        stale.write_text(json.dumps(entry))
        os.utime(stale, times=(now - 300.0, now - 300.0))
        report = cache.gc(now=now)
        assert report.evicted_corrupt == 2
        assert keep.exists()
        assert not rot.exists() and not stale.exists()

    def test_max_age_evicts_old_entries_only(self, tmp_path):
        now = time.time()
        cache = ResultCache(tmp_path)
        old = put_aged(cache, 1, age_s=10 * 86400.0, now=now)
        young = put_aged(cache, 2, age_s=3600.0, now=now)
        report = cache.gc(max_age_s=7 * 86400.0, now=now)
        assert report.evicted_expired == 1
        assert not old.exists()
        assert young.exists()

    def test_max_bytes_evicts_lru_order(self, tmp_path):
        now = time.time()
        cache = ResultCache(tmp_path)
        oldest = put_aged(cache, 1, age_s=4000.0, now=now)
        middle = put_aged(cache, 2, age_s=3000.0, now=now)
        newest = put_aged(cache, 3, age_s=2000.0, now=now)
        size = newest.stat().st_size
        # Budget for roughly one entry: the two oldest must go, newest stays.
        report = cache.gc(max_bytes=size + 10, now=now)
        assert report.evicted_lru == 2
        assert not oldest.exists() and not middle.exists()
        assert newest.exists()
        assert report.bytes_after <= size + 10

    def test_zero_budget_clears_all_settled_entries(self, tmp_path):
        now = time.time()
        cache = ResultCache(tmp_path)
        for seed in range(4):
            put_aged(cache, seed, age_s=600.0, now=now)
        report = cache.gc(max_bytes=0, now=now)
        assert report.evicted_lru == 4
        assert len(cache) == 0

    def test_inflight_entries_skipped_by_every_policy(self, tmp_path):
        now = time.time()
        cache = ResultCache(tmp_path)
        inflight = put_aged(cache, 1, age_s=1.0, now=now)
        fresh_corrupt = put_aged(cache, 2, age_s=1.0, now=now)
        fresh_corrupt.write_text("garbage")
        os.utime(fresh_corrupt, times=(now - 1.0, now - 1.0))
        report = cache.gc(max_bytes=0, max_age_s=0.0, now=now)
        assert report.skipped_inflight == 2
        assert report.evicted == 0
        assert inflight.exists() and fresh_corrupt.exists()

    def test_grace_zero_disables_inflight_protection(self, tmp_path):
        now = time.time()
        cache = ResultCache(tmp_path)
        put_aged(cache, 1, age_s=1.0, now=now)
        report = cache.gc(max_bytes=0, grace_s=0.0, now=now)
        assert report.evicted_lru == 1
        assert len(cache) == 0

    def test_manifests_and_lock_survive_gc(self, tmp_path):
        now = time.time()
        cache = ResultCache(tmp_path)
        put_aged(cache, 1, age_s=600.0, now=now)
        manifest = write_shard_manifest(tmp_path, ShardSpec(0, 2), ["ab" * 32])
        cache.gc(max_bytes=0, now=now)
        assert manifest.exists()
        assert not (tmp_path / "gc.lock").exists()  # released afterwards

    def test_stale_tmp_files_removed_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        stale = tmp_path / "deadbeef.tmp99"
        stale.write_text("orphan")
        os.utime(stale, times=(0, 0))
        report = cache.gc()
        assert report.tmp_removed == 1
        assert not stale.exists()


class TestGcLocking:
    def test_locked_gc_refuses_and_touches_nothing(self, tmp_path):
        """A held lock (another GC mid-pass) means: skip, leave cells alone."""
        now = time.time()
        cache = ResultCache(tmp_path)
        entry = put_aged(cache, 1, age_s=600.0, now=now)
        with CacheDirLock(tmp_path):
            with pytest.raises(CacheLockedError):
                cache.gc(max_bytes=0, now=now)
        assert entry.exists()

    def test_sweep_writes_proceed_while_gc_lock_held(self, tmp_path):
        # Sweeps never take the lock: their writes are atomic and the
        # grace window keeps GC off their fresh cells.
        cache = ResultCache(tmp_path)
        with CacheDirLock(tmp_path):
            cache.put(Cfg(1), fake_result(1))
        assert cache.get(Cfg(1)) == fake_result(1)

    def test_stale_lock_is_broken(self, tmp_path):
        lock_file = tmp_path / "gc.lock"
        lock_file.write_text("{}")
        os.utime(lock_file, times=(0, 0))  # epoch-old: holder is long dead
        cache = ResultCache(tmp_path)
        report = cache.gc()  # must not raise
        assert report.scanned == 0
        assert not lock_file.exists()

    def test_lock_release_is_idempotent(self, tmp_path):
        lock = CacheDirLock(tmp_path)
        lock.acquire()
        lock.release()
        lock.release()
        assert not (tmp_path / "gc.lock").exists()


class TestGcConcurrency:
    def test_entry_vanishing_mid_scan_tolerated(self, tmp_path, monkeypatch):
        now = time.time()
        cache = ResultCache(tmp_path)
        kept = put_aged(cache, 1, age_s=600.0, now=now)
        ghost = put_aged(cache, 2, age_s=600.0, now=now)
        real_paths = cache._entry_paths()
        ghost.unlink()  # concurrent writer/GC removed it between scan & stat
        monkeypatch.setattr(cache, "_entry_paths", lambda: real_paths)
        report = cache.gc(now=now)
        assert report.scanned == 1  # the ghost is silently skipped
        assert kept.exists()

    def test_concurrent_writer_during_lru_pass(self, tmp_path, monkeypatch):
        """Files a writer replaces mid-pass must not break the byte budget."""
        now = time.time()
        cache = ResultCache(tmp_path)
        doomed = put_aged(cache, 1, age_s=4000.0, now=now)
        put_aged(cache, 2, age_s=300.0, now=now)
        original_remove = ResultCache._remove

        def racing_remove(path):
            if path == doomed:
                path.unlink()  # another process got there first
                return False
            return original_remove(path)

        monkeypatch.setattr(ResultCache, "_remove", staticmethod(racing_remove))
        report = cache.gc(max_bytes=0, now=now)
        # the racing removal is not double-counted as freed by this pass
        assert report.evicted_lru == 1
        assert len(cache) == 0


class TestDiskStats:
    def test_inventory_counts_types_and_ages(self, tmp_path):
        now = time.time()
        cache = ResultCache(tmp_path)
        put_aged(cache, 1, age_s=500.0, now=now)
        put_aged(cache, 2, age_s=100.0, now=now)
        bad = put_aged(cache, 3, age_s=100.0, now=now)
        bad.write_text("junk")
        write_shard_manifest(tmp_path, ShardSpec(0, 2), [])
        stats = cache.disk_stats(now=now)
        assert stats.entries == 2
        assert stats.by_type == {"RunResult": 2}
        assert stats.corrupt == 1
        assert stats.manifests == 1
        assert stats.oldest_age_s == pytest.approx(500.0, abs=5.0)
        assert stats.newest_age_s == pytest.approx(100.0, abs=5.0)
        assert "RunResult: 2" in stats.summary()

    def test_locked_flag(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.disk_stats().locked
        with CacheDirLock(tmp_path):
            assert cache.disk_stats().locked


class TestPrototypeRoundTrip:
    def test_prototype_result_survives_cache(self, tmp_path):
        from repro.testbed.experiment import (
            PrototypeConfig,
            run_prototype,
        )

        config = PrototypeConfig(threshold_bytes=1024.0, n_messages=50)
        result = run_prototype(config)
        cache = ResultCache(tmp_path)
        cache.put(config, result)
        restored = ResultCache(tmp_path).get(config)
        assert restored == result
        assert restored.dual_breakdown == result.dual_breakdown

    def test_prototype_entries_counted_by_type(self, tmp_path):
        from repro.testbed.experiment import PrototypeConfig, run_prototype

        now = time.time()
        config = PrototypeConfig(threshold_bytes=1024.0, n_messages=50)
        cache = ResultCache(tmp_path)
        cache.put(config, run_prototype(config))
        cache.put(Cfg(1), fake_result(1))
        stats = cache.disk_stats(now=now)
        assert stats.by_type == {"PrototypeResult": 1, "RunResult": 1}


class TestStaleLockLiveness:
    """PR-5: a crashed GC must not block future GCs for the age window."""

    @staticmethod
    def _dead_pid() -> int:
        import subprocess
        import sys

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_crashed_gc_lock_is_broken_immediately(self, tmp_path):
        # Simulate a GC that died mid-pass: its lock is *fresh* (well
        # inside the age window) but its pid is gone.
        lock_file = tmp_path / "gc.lock"
        lock_file.write_text(
            json.dumps({"pid": self._dead_pid(), "time": time.time()})
        )
        cache = ResultCache(tmp_path)
        report = cache.gc()  # must not raise CacheLockedError
        assert report.scanned == 0
        # The new GC took (and released) the lock it broke.
        assert not lock_file.exists()

    def test_fresh_lock_with_live_pid_still_blocks(self, tmp_path):
        lock_file = tmp_path / "gc.lock"
        lock_file.write_text(
            json.dumps({"pid": os.getpid(), "time": time.time()})
        )
        cache = ResultCache(tmp_path)
        with pytest.raises(CacheLockedError):
            cache.gc()
        assert lock_file.exists()

    def test_fresh_unreadable_lock_falls_back_to_age_policy(self, tmp_path):
        # Mid-write race: the file exists, the JSON does not yet.  Only
        # the age policy may break such a lock.
        lock_file = tmp_path / "gc.lock"
        lock_file.write_text("")
        cache = ResultCache(tmp_path)
        with pytest.raises(CacheLockedError):
            cache.gc()
        assert lock_file.exists()

    def test_gc_crash_releases_nothing_but_next_gc_recovers(self, tmp_path):
        # End-to-end crash-during-gc: a GC pass that dies after taking
        # the lock leaves it behind; with the holder pid dead the next
        # pass breaks it and completes its policies.
        now = time.time()
        cache = ResultCache(tmp_path)
        old = put_aged(cache, 1, age_s=600.0, now=now)
        lock = CacheDirLock(tmp_path)
        lock.acquire()
        # "Crash": drop the lock object without release, then pretend the
        # holder process died by rewriting its pid with a dead one.
        lock._held = False
        (tmp_path / "gc.lock").write_text(
            json.dumps({"pid": self._dead_pid(), "time": now})
        )
        report = cache.gc(max_bytes=0, now=now)
        assert report.evicted_lru == 1
        assert not old.exists()
        assert not (tmp_path / "gc.lock").exists()
