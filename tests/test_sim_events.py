"""Event primitives: triggering, values, failure, composition."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    EventAlreadyTriggered,
    SimulationError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestEventLifecycle:
    def test_new_event_is_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_raises_while_pending(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_succeed_sets_value(self, sim):
        event = sim.event().succeed("payload")
        assert event.triggered
        assert event.ok
        assert event.value == "payload"

    def test_succeed_twice_raises(self, sim):
        event = sim.event().succeed()
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_then_succeed_raises(self, sim):
        event = sim.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_processed_after_run(self, sim):
        event = sim.event().succeed(7)
        sim.run()
        assert event.processed

    def test_callbacks_receive_event(self, sim):
        event = sim.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed(41)
        sim.run()
        assert seen == [41]

    def test_unhandled_failure_propagates_from_run(self, sim):
        event = sim.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_defused_failure_does_not_propagate(self, sim):
        event = sim.event()
        event.fail(RuntimeError("handled"))
        event.defuse()
        sim.run()  # no raise


class TestTimeout:
    def test_fires_at_delay(self, sim):
        timeout = sim.timeout(2.5, value="done")
        sim.run()
        assert sim.now == 2.5
        assert timeout.value == "done"

    def test_zero_delay_fires_now(self, sim):
        timeout = sim.timeout(0)
        sim.run()
        assert timeout.processed
        assert sim.now == 0.0

    def test_negative_delay_rejected(self, sim):
        # Normalized: every scheduling entry point rejects a negative
        # delay with SimulationError (Timeout used to raise ValueError
        # while Simulator._enqueue raised SimulationError).
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)

    def test_negative_delay_rejected_direct_construction(self, sim):
        from repro.sim import Timeout

        with pytest.raises(SimulationError):
            Timeout(sim, -0.1)

    def test_cannot_trigger_manually(self, sim):
        timeout = sim.timeout(1)
        with pytest.raises(EventAlreadyTriggered):
            timeout.succeed()
        with pytest.raises(EventAlreadyTriggered):
            timeout.fail(RuntimeError())


class TestConditions:
    def test_anyof_fires_on_first(self, sim):
        t1, t2 = sim.timeout(1, "a"), sim.timeout(2, "b")
        any_of = AnyOf(sim, [t1, t2])
        sim.run(until=any_of)
        assert sim.now == 1.0
        assert list(any_of.value.values()) == ["a"]

    def test_allof_waits_for_all(self, sim):
        t1, t2 = sim.timeout(1, "a"), sim.timeout(2, "b")
        all_of = AllOf(sim, [t1, t2])
        sim.run(until=all_of)
        assert sim.now == 2.0
        assert list(all_of.value.values()) == ["a", "b"]

    def test_or_operator(self, sim):
        combined = sim.timeout(1) | sim.timeout(5)
        sim.run(until=combined)
        assert sim.now == 1.0

    def test_and_operator(self, sim):
        combined = sim.timeout(1) & sim.timeout(5)
        sim.run(until=combined)
        assert sim.now == 5.0

    def test_empty_condition_trivially_true(self, sim):
        all_of = AllOf(sim, [])
        assert all_of.triggered

    def test_condition_over_processed_events(self, sim):
        t1 = sim.timeout(1)
        sim.run()
        all_of = AllOf(sim, [t1])
        sim.run()
        assert all_of.processed

    def test_failing_child_fails_condition(self, sim):
        event = sim.event()
        t2 = sim.timeout(10)
        all_of = AllOf(sim, [event, t2])
        event.fail(RuntimeError("child failed"))
        with pytest.raises(RuntimeError, match="child failed"):
            sim.run(until=all_of)

    def test_cross_simulator_condition_rejected(self, sim):
        other = Simulator(seed=2)
        with pytest.raises(SimulationError):
            AnyOf(sim, [sim.timeout(1), other.timeout(1)])

    def test_anyof_value_records_only_processed(self, sim):
        t1, t2 = sim.timeout(1, "fast"), sim.timeout(1000, "slow")
        any_of = t1 | t2
        sim.run(until=any_of)
        assert t2 not in any_of.value
