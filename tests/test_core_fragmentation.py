"""Burst assembly/reassembly, including hypothesis round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fragmentation import assemble_burst, reassemble
from repro.net.packets import DataPacket


def packets(count, size_bytes=32):
    return [
        DataPacket(src=1, dst=0, payload_bits=size_bytes * 8, created_s=0.0)
        for _ in range(count)
    ]


class TestAssemble:
    def test_paper_packing_32_per_frame(self):
        """32-byte packets into 1024-byte frames: 32 per frame."""
        fragments = assemble_burst(packets(64), 1, 5, 1024)
        assert len(fragments) == 2
        assert all(len(f.packets) == 32 for f in fragments)
        assert all(f.payload_bits == 1024 * 8 for f in fragments)

    def test_trailing_partial_fragment(self):
        fragments = assemble_burst(packets(33), 1, 5, 1024)
        assert len(fragments) == 2
        assert len(fragments[1].packets) == 1

    def test_indices_and_total(self):
        fragments = assemble_burst(packets(70), 9, 5, 1024)
        assert [f.index for f in fragments] == [0, 1, 2]
        assert all(f.total == 3 for f in fragments)
        assert all(f.session_id == 9 and f.origin == 5 for f in fragments)

    def test_oversized_packet_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            assemble_burst(packets(1, size_bytes=2000), 1, 5, 1024)

    def test_invalid_frame_payload(self):
        with pytest.raises(ValueError):
            assemble_burst(packets(1), 1, 5, 0)

    def test_empty_input_no_fragments(self):
        assert assemble_burst([], 1, 5, 1024) == []


class TestReassemble:
    def test_round_trip_order(self):
        originals = packets(100)
        fragments = assemble_burst(originals, 1, 5, 1024)
        recovered = reassemble(fragments)
        assert [p.packet_id for p in recovered] == [
            p.packet_id for p in originals
        ]

    def test_out_of_order_fragments(self):
        originals = packets(96)
        fragments = assemble_burst(originals, 1, 5, 1024)
        recovered = reassemble(reversed(fragments))
        assert [p.packet_id for p in recovered] == [
            p.packet_id for p in originals
        ]

    def test_missing_fragment_leaves_gap(self):
        originals = packets(96)
        fragments = assemble_burst(originals, 1, 5, 1024)
        recovered = reassemble([fragments[0], fragments[2]])
        assert len(recovered) == 64


sizes = st.lists(st.integers(min_value=1, max_value=128), min_size=0, max_size=60)


@given(sizes, st.integers(min_value=128, max_value=2048))
def test_property_round_trip(packet_sizes, frame_bytes):
    """assemble → reassemble is the identity on any packet sequence."""
    originals = [
        DataPacket(src=1, dst=0, payload_bits=size * 8, created_s=0.0)
        for size in packet_sizes
    ]
    fragments = assemble_burst(originals, 1, 2, frame_bytes)
    recovered = reassemble(fragments)
    assert [p.packet_id for p in recovered] == [p.packet_id for p in originals]


@given(sizes, st.integers(min_value=128, max_value=2048))
def test_property_fragments_respect_budget(packet_sizes, frame_bytes):
    originals = [
        DataPacket(src=1, dst=0, payload_bits=size * 8, created_s=0.0)
        for size in packet_sizes
    ]
    fragments = assemble_burst(originals, 1, 2, frame_bytes)
    for fragment in fragments:
        assert fragment.payload_bits <= frame_bytes * 8
        assert fragment.packets  # no empty fragments


@given(sizes)
def test_property_conservation(packet_sizes):
    originals = [
        DataPacket(src=1, dst=0, payload_bits=size * 8, created_s=0.0)
        for size in packet_sizes
    ]
    fragments = assemble_burst(originals, 1, 2, 1024)
    assert sum(len(f.packets) for f in fragments) == len(originals)
    assert sum(f.payload_bits for f in fragments) == sum(
        p.payload_bits for p in originals
    )
