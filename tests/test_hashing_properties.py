"""Property-based tests for config hashing and shard partitioning.

The cache key and the shard assignment are the load-bearing identities of
the whole distributed pipeline: a key that varies with dict order would
fracture the cache, a key *insensitive* to some config field would serve
wrong results, and a shard partition that is not disjoint/exhaustive
would double-run or drop cells.  Hypothesis hunts the corners.
"""

import dataclasses
import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.propagation import PropagationSpec
from repro.energy.radio_specs import RadioSpec, TxPowerLevel
from repro.faults import FaultPlan
from repro.models.scenario import RadioAssignment, ScenarioConfig
from repro.runner import ShardSpec, canonical_json, config_key, shard_index
from repro.topology.registry import TopologySpec

# ---------------------------------------------------------------------------
# Strategies.
# ---------------------------------------------------------------------------

#: JSON-able scalar leaves.  Floats exclude NaN (tagged specially and not
#: equal to itself — covered by a dedicated test below).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)

#: Nested plain data, the shape canonicalized configs reduce to.
nested = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)

#: Valid sha256-hex cell keys (what config_key produces).
keys = st.binary(min_size=1, max_size=32).map(
    lambda blob: hashlib.sha256(blob).hexdigest()
)


def shuffled_dict(data: dict, order: list) -> dict:
    """The same mapping with a different insertion order."""
    items = list(data.items())
    return dict(items[i] for i in order)


# ---------------------------------------------------------------------------
# canonical_json / config_key invariance and sensitivity.
# ---------------------------------------------------------------------------


class TestDictOrderInvariance:
    @given(
        data=st.dictionaries(st.text(max_size=10), nested, max_size=6),
        seed=st.randoms(use_true_random=False),
    )
    def test_key_insertion_order_never_changes_the_hash(self, data, seed):
        order = list(range(len(data)))
        seed.shuffle(order)
        reordered = shuffled_dict(data, order)
        assert reordered == data
        assert canonical_json(data) == canonical_json(reordered)
        assert config_key(data) == config_key(reordered)

    @given(data=st.dictionaries(st.text(max_size=10), nested, max_size=4))
    def test_nested_dataclass_and_dict_agree_on_order(self, data):
        @dataclasses.dataclass
        class Holder:
            payload: dict

        reordered = shuffled_dict(data, list(reversed(range(len(data)))))
        assert canonical_json(Holder(data)) == canonical_json(
            Holder(reordered)
        )

    @given(value=nested)
    def test_canonical_json_is_deterministic(self, value):
        assert canonical_json(value) == canonical_json(value)


class TestScenarioFieldSensitivity:
    """Every single ScenarioConfig field must perturb the cache key."""

    BASE = ScenarioConfig(
        rows=3, cols=3, sink=4, n_senders=2, sim_time_s=10.0, burst_packets=10
    )

    #: A validity-preserving mutation per field that a generic rule cannot
    #: produce (enums, cross-field constraints, nested specs).
    SPECIAL = {
        "model": "sensor",
        "traffic": "poisson",
        "sink": 5,
        "n_senders": 3,
        "low_spec": BASE.low_spec.replace(rate_bps=BASE.low_spec.rate_bps + 1),
        "high_spec": BASE.high_spec.replace(
            rate_bps=BASE.high_spec.rate_bps + 1
        ),
        "multihop_range_m": 123.0,
        "topology": TopologySpec.of("uniform-random", n=9, width_m=80.0,
                                    height_m=80.0),
        "propagation": PropagationSpec.of("log-normal", sigma_db=4.0),
        "high_radios": RadioAssignment(overrides=((0, "Cabletron"),)),
        "traffic_mix": ((1, "poisson"),),
        "routing": "lazy",
        "routing_policy": "tx-energy",
        "scheduler": "calendar",
        "mac_engine": "generator",
        "faults": FaultPlan(crashes=((1.0, 1),)),
    }

    @staticmethod
    def mutate(name, value):
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            return value + 1
        if isinstance(value, float):
            return value + 1.0
        raise AssertionError(
            f"field {name!r} of type {type(value).__name__} needs a SPECIAL "
            "mutation"
        )

    @pytest.mark.parametrize(
        "field", [f.name for f in dataclasses.fields(ScenarioConfig)]
    )
    def test_field_changes_key(self, field):
        value = getattr(self.BASE, field)
        changed = self.SPECIAL.get(field, None)
        if changed is None:
            changed = self.mutate(field, value)
        tweaked = self.BASE.replace(**{field: changed})
        assert getattr(tweaked, field) != value
        assert config_key(tweaked) != config_key(self.BASE)

    def test_radio_spec_every_field_participates(self):
        spec = self.BASE.low_spec
        for field in dataclasses.fields(RadioSpec):
            value = getattr(spec, field.name)
            if field.name == "kind":
                changed = "high"  # validated enum
            elif isinstance(value, str):
                changed = value + "x"
            elif value is None:
                changed = 1.0
            elif isinstance(value, tuple):
                # tx_power_levels: grow the (empty by default) ladder.
                changed = value + (TxPowerLevel(p_tx_w=0.01, range_m=10.0),)
            else:
                changed = type(value)(value + 1)
            tweaked = self.BASE.replace(
                low_spec=spec.replace(**{field.name: changed})
            )
            assert config_key(tweaked) != config_key(self.BASE), field.name


class TestNonFiniteFloats:
    @given(tag=st.sampled_from(["inf", "-inf", "nan"]))
    def test_tagged_and_distinct_from_strings(self, tag):
        @dataclasses.dataclass
        class Holder:
            value: object

        assert config_key(Holder(float(tag))) != config_key(Holder(tag))

    def test_nan_hashes_consistently(self):
        assert config_key(float("nan")) == config_key(float("nan"))


# ---------------------------------------------------------------------------
# Shard-partition properties.
# ---------------------------------------------------------------------------


class TestShardPartitionProperties:
    @given(key=keys, count=st.integers(min_value=1, max_value=64))
    def test_index_in_range(self, key, count):
        assert 0 <= shard_index(key, count) < count

    @given(key=keys, count=st.integers(min_value=1, max_value=64))
    def test_assignment_is_stable(self, key, count):
        assert shard_index(key, count) == shard_index(key, count)

    @given(
        batch=st.lists(keys, min_size=1, max_size=30, unique=True),
        count=st.integers(min_value=1, max_value=8),
    )
    def test_partition_disjoint_and_exhaustive(self, batch, count):
        slices = [
            {key for key in batch if ShardSpec(index, count).owns(key)}
            for index in range(count)
        ]
        assert set().union(*slices) == set(batch)  # exhaustive
        assert sum(len(piece) for piece in slices) == len(batch)  # disjoint

    @given(key=keys)
    def test_single_shard_owns_everything(self, key):
        assert shard_index(key, 1) == 0
        assert ShardSpec(0, 1).owns(key)

    @settings(max_examples=20)
    @given(
        batch=st.lists(keys, min_size=8, max_size=40, unique=True),
        count=st.integers(min_value=2, max_value=4),
    )
    def test_assignment_independent_of_batch_composition(self, batch, count):
        # owning shard is a pure function of (key, count): dropping other
        # keys from the batch never reassigns the survivors
        full = {key: shard_index(key, count) for key in batch}
        half = {key: shard_index(key, count) for key in batch[::2]}
        assert all(full[key] == shard for key, shard in half.items())
