"""Generator processes: waiting, returning, failing, interrupts."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestProcessBasics:
    def test_process_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_runs_and_returns_value(self, sim):
        def worker():
            yield sim.timeout(3)
            return "result"

        process = sim.process(worker())
        assert sim.run(until=process) == "result"
        assert sim.now == 3.0

    def test_is_alive_transitions(self, sim):
        def worker():
            yield sim.timeout(1)

        process = sim.process(worker())
        assert process.is_alive
        sim.run()
        assert not process.is_alive

    def test_yield_non_event_fails_process(self, sim):
        def worker():
            yield 42

        process = sim.process(worker())
        with pytest.raises(SimulationError, match="may only yield"):
            sim.run(until=process)

    def test_yield_foreign_event_fails_process(self, sim):
        other = Simulator(seed=2)

        def worker():
            yield other.timeout(1)

        process = sim.process(worker())
        with pytest.raises(SimulationError, match="different simulator"):
            sim.run(until=process)

    def test_exception_in_process_propagates(self, sim):
        def worker():
            yield sim.timeout(1)
            raise ValueError("model bug")

        process = sim.process(worker())
        with pytest.raises(ValueError, match="model bug"):
            sim.run(until=process)

    def test_yielding_processed_event_continues_immediately(self, sim):
        done = sim.timeout(1)

        def worker():
            yield sim.timeout(5)  # outlives `done`
            value = yield done  # already processed
            return value is None and sim.now

        process = sim.process(worker())
        assert sim.run(until=process) == 5.0

    def test_processes_can_wait_on_each_other(self, sim):
        def inner():
            yield sim.timeout(2)
            return "inner-done"

        def outer():
            result = yield sim.process(inner())
            return f"outer saw {result}"

        process = sim.process(outer())
        assert sim.run(until=process) == "outer saw inner-done"

    def test_failed_event_raises_inside_process(self, sim):
        event = sim.event()

        def worker():
            try:
                yield event
            except RuntimeError as exc:
                return f"caught {exc}"

        process = sim.process(worker())
        event.fail(RuntimeError("oops"))
        assert sim.run(until=process) == "caught oops"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def worker():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                return interrupt.cause

        process = sim.process(worker())

        def interrupter():
            yield sim.timeout(1)
            process.interrupt("reason")

        sim.process(interrupter())
        assert sim.run(until=process) == "reason"
        assert sim.now == 1.0

    def test_interrupting_dead_process_raises(self, sim):
        def worker():
            return "x"
            yield  # pragma: no cover

        process = sim.process(worker())
        sim.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupted_process_can_keep_running(self, sim):
        ticks = []

        def worker():
            while True:
                try:
                    yield sim.timeout(10)
                    ticks.append("full")
                except Interrupt:
                    ticks.append("interrupted")

        process = sim.process(worker())

        def interrupter():
            yield sim.timeout(1)
            process.interrupt()

        sim.process(interrupter())
        sim.run(until=25)
        # Interrupted at t=1, then full waits at 11 and 21.
        assert ticks == ["interrupted", "full", "full"]

    def test_unstarted_process_cannot_be_interrupted(self, sim):
        def worker():
            yield sim.timeout(1)

        process = sim.process(worker())
        with pytest.raises(SimulationError, match="not started"):
            process.interrupt()

    def test_interrupt_removes_stale_callback(self, sim):
        """The interrupted wait target must not resume the process later."""
        target = sim.timeout(5)
        results = []

        def worker():
            try:
                yield target
                results.append("timeout")
            except Interrupt:
                results.append("interrupt")
                yield sim.timeout(100)
                results.append("after")

        process = sim.process(worker())

        def interrupter():
            yield sim.timeout(1)
            process.interrupt()

        sim.process(interrupter())
        sim.run(until=50)
        assert results == ["interrupt"]
