"""FaultPlan validation, serialization, and scenario integration."""

import dataclasses

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.models.scenario import ScenarioConfig, run_scenario


class TestZeroPlan:
    def test_default_plan_is_zero(self):
        assert FaultPlan().is_zero

    def test_any_schedule_is_not_zero(self):
        assert not FaultPlan(crashes=((1.0, 0),)).is_zero
        assert not FaultPlan(links_down=((1.0, 0, 1),)).is_zero
        assert not FaultPlan(crash_rate_per_node_s=0.1).is_zero
        assert not FaultPlan(battery_capacity_j=100.0).is_zero
        assert not FaultPlan(battery_overrides=((0, 100.0),)).is_zero

    def test_zero_plan_run_reports_no_fault_counters(self):
        config = ScenarioConfig(
            model="sensor", sim_time_s=5.0, faults=FaultPlan()
        )
        result = run_scenario(config)
        assert not any(k.startswith("faults.") for k in result.counters)

    def test_faulted_run_reports_fault_counters(self):
        config = ScenarioConfig(
            model="sensor",
            sim_time_s=5.0,
            faults=FaultPlan(crashes=((1.0, 3),)),
        )
        result = run_scenario(config)
        assert result.counters["faults.deaths"] == 1.0
        assert result.counters["faults.first_death_s"] == 1.0

    def test_injector_refuses_zero_plan(self):
        with pytest.raises(ValueError, match="zero FaultPlan"):
            FaultInjector(None, None, None, FaultPlan())


class TestValidation:
    def test_node_out_of_range(self):
        with pytest.raises(ValueError, match="outside fleet"):
            FaultPlan(crashes=((1.0, 36),)).validate(36)
        with pytest.raises(ValueError, match="outside fleet"):
            FaultPlan(recoveries=((1.0, -1),)).validate(36)
        with pytest.raises(ValueError, match="outside fleet"):
            FaultPlan(links_down=((1.0, 0, 99),)).validate(36)
        with pytest.raises(ValueError, match="outside fleet"):
            FaultPlan(battery_overrides=((40, 10.0),)).validate(36)

    def test_negative_times_and_rates(self):
        with pytest.raises(ValueError, match="negative time"):
            FaultPlan(crashes=((-1.0, 0),)).validate(4)
        with pytest.raises(ValueError, match="negative crash rate"):
            FaultPlan(crash_rate_per_node_s=-0.1).validate(4)
        with pytest.raises(ValueError, match="negative mean downtime"):
            FaultPlan(mean_downtime_s=-1.0).validate(4)

    def test_self_link(self):
        with pytest.raises(ValueError, match="self-link"):
            FaultPlan(links_up=((1.0, 2, 2),)).validate(4)

    def test_battery_capacity_bounds(self):
        with pytest.raises(ValueError, match="positive"):
            FaultPlan(battery_capacity_j=0.0).validate(4)
        with pytest.raises(ValueError, match="positive"):
            FaultPlan(battery_overrides=((1, -5.0),)).validate(4)
        with pytest.raises(ValueError, match="more than once"):
            FaultPlan(
                battery_overrides=((1, 5.0), (1, 6.0))
            ).validate(4)
        with pytest.raises(ValueError, match="battery_poll_s"):
            FaultPlan(
                battery_capacity_j=10.0, battery_poll_s=0.0
            ).validate(4)

    def test_scenario_config_validates_plan(self):
        with pytest.raises(ValueError, match="outside fleet"):
            ScenarioConfig(faults=FaultPlan(crashes=((1.0, 100),)))

    def test_valid_plan_passes(self):
        FaultPlan(
            crashes=((1.0, 0),),
            recoveries=((2.0, 0),),
            links_down=((1.0, 0, 1),),
            crash_rate_per_node_s=0.01,
            mean_downtime_s=5.0,
            battery_capacity_j=100.0,
            battery_overrides=((2, 50.0),),
        ).validate(4)


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            crashes=((10.0, 3), (20.0, 7)),
            recoveries=((30.0, 3),),
            links_down=((5.0, 0, 1),),
            crash_rate_per_node_s=0.001,
            battery_capacity_j=250.0,
            battery_overrides=((14, 1000.0),),
            protect_sink=False,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan keys"):
            FaultPlan.from_dict({"crashs": [[1.0, 0]]})

    def test_plan_is_hashable_config_data(self):
        # The runner canonicalizes configs into cache keys; a plan must
        # be plain frozen data, and distinct plans must produce distinct
        # cell identities.
        base = ScenarioConfig(sim_time_s=5.0)
        faulted = dataclasses.replace(
            base, faults=FaultPlan(crashes=((1.0, 2),))
        )
        zeroed = dataclasses.replace(base, faults=FaultPlan())
        keys = {base.cache_key(), faulted.cache_key(), zeroed.cache_key()}
        assert len(keys) == 3
