"""Unit-conversion helpers."""

import pytest

from repro import units


def test_mw_roundtrip():
    assert units.w_to_mw(units.mw_to_w(830.0)) == pytest.approx(830.0)


def test_mj_roundtrip():
    assert units.j_to_mj(units.mj_to_j(1.328)) == pytest.approx(1.328)


def test_uj_roundtrip():
    assert units.uj_to_j(units.j_to_uj(0.5)) == pytest.approx(0.5)


def test_kbps_to_bps():
    assert units.kbps_to_bps(250) == 250_000


def test_mbps_to_bps():
    assert units.mbps_to_bps(11) == 11_000_000


def test_bytes_bits_roundtrip():
    assert units.bytes_to_bits(32) == 256
    assert units.bits_to_bytes(256) == 32


def test_kb_uses_binary_kilobytes():
    assert units.kb_to_bits(1) == 8192
    assert units.bits_to_kb(8192) == 1.0


def test_ms_roundtrip():
    assert units.s_to_ms(units.ms_to_s(192)) == pytest.approx(192)


def test_transmission_time():
    assert units.transmission_time(250_000, 250_000) == pytest.approx(1.0)


def test_transmission_time_zero_size():
    assert units.transmission_time(0, 1000) == 0.0


def test_transmission_time_rejects_zero_rate():
    with pytest.raises(ValueError):
        units.transmission_time(100, 0)


def test_transmission_time_rejects_negative_size():
    with pytest.raises(ValueError):
        units.transmission_time(-1, 1000)
