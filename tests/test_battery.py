"""Battery model."""

import pytest

from repro.energy.battery import AA_PAIR_CAPACITY_J, Battery, BatteryDepleted


class TestBattery:
    def test_default_capacity_is_aa_pair(self):
        assert Battery().capacity_j == AA_PAIR_CAPACITY_J

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Battery(0.0)

    def test_drain_reduces_charge(self):
        battery = Battery(100.0)
        battery.drain(30.0)
        assert battery.remaining_j == 70.0
        assert battery.fraction_remaining == pytest.approx(0.7)

    def test_overdrain_raises_and_preserves_state(self):
        battery = Battery(10.0)
        with pytest.raises(BatteryDepleted):
            battery.drain(11.0)
        assert battery.remaining_j == 10.0

    def test_negative_drain_rejected(self):
        with pytest.raises(ValueError):
            Battery(10.0).drain(-1.0)

    def test_exact_drain_depletes(self):
        battery = Battery(10.0)
        battery.drain(10.0)
        assert battery.is_depleted

    def test_lifetime_projection(self):
        battery = Battery(86400.0)  # 1 J/s for a day
        assert battery.lifetime_s(1.0) == pytest.approx(86400.0)
        assert battery.lifetime_days(1.0) == pytest.approx(1.0)

    def test_zero_power_lifetime_infinite(self):
        assert Battery(1.0).lifetime_s(0.0) == float("inf")

    def test_dual_radio_lifetime_motivation(self):
        """The paper's pitch: cutting average draw extends deployment life.
        A 4x normalized-energy improvement is 4x lifetime."""
        battery = Battery()
        sensor_life = battery.lifetime_days(4e-3)
        dual_life = battery.lifetime_days(1e-3)
        assert dual_life == pytest.approx(4 * sensor_life)
