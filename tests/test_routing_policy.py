"""The routing-policy axis (PR 10): cost models, power ladder, plumbing.

Covers the pieces the equivalence properties don't: the registry and its
factories, the tx-energy / residual-energy cost surfaces (including the
route *divergence* they exist to produce), the discrete transmit-power
ladder and its billing, the shared live-residual helpers, and the
scenario/CLI/report plumbing that exposes the axis.
"""

import random

import pytest

from repro.energy.meter import MeterBank
from repro.energy.radio_specs import (
    FIRST_ORDER_RADIO_MODEL,
    MICAZ,
    TX_POWER_LEVELS,
    RadioEnergyModel,
    TxPowerLevel,
)
from repro.energy.residual import live_consumed_j, live_residual_fraction
from repro.net.csr import CsrGraph
from repro.net.policy import (
    POLICY_HOPS,
    POLICY_RESIDUAL,
    POLICY_TX_ENERGY,
    RESIDUAL_FLOOR,
    ROUTING_POLICIES,
    ROUTING_POLICY_NAMES,
    ResidualEnergyCost,
    RoutingPolicyContext,
    TxEnergyCost,
    build_cost_model,
)
from repro.net.routing import DijkstraRoutingTable
from repro.stats.metrics import ENERGY_TOTAL
from repro.topology.geometry import Position
from repro.topology.layout import Layout


def _line_layout(*xs: float) -> Layout:
    return Layout({i: Position(float(x), 0.0) for i, x in enumerate(xs)})


# ---------------------------------------------------------------------------
# The first-order radio energy model.
# ---------------------------------------------------------------------------


class TestRadioEnergyModel:
    def test_tx_cost_grows_superlinearly_with_distance(self):
        model = FIRST_ORDER_RADIO_MODEL
        one_long = model.tx_cost_j(320, 60.0)
        two_short = 2 * model.tx_cost_j(320, 30.0)
        assert two_short < one_long  # alpha=2: relaying beats shouting

    def test_zero_distance_degenerates_to_electronics(self):
        model = RadioEnergyModel()
        assert model.tx_cost_j(100, 0.0) == model.e_elec_j_per_bit * 100
        assert model.tx_cost_j(100, -1.0) == model.e_elec_j_per_bit * 100

    def test_rx_cost_is_distance_free_electronics(self):
        model = RadioEnergyModel()
        assert model.rx_cost_j(8) == model.e_elec_j_per_bit * 8

    def test_path_loss_exponent_applies(self):
        steep = RadioEnergyModel(path_loss_exponent=4.0)
        flat = RadioEnergyModel(path_loss_exponent=2.0)
        assert steep.tx_cost_j(1, 10.0) > flat.tx_cost_j(1, 10.0)


# ---------------------------------------------------------------------------
# The discrete transmit-power ladder.
# ---------------------------------------------------------------------------


class TestTxPowerLadder:
    def test_cheapest_covering_level_wins(self):
        spec = MICAZ.replace(tx_power_levels=TX_POWER_LEVELS)
        assert spec.tx_power_for_range(5.0) == TX_POWER_LEVELS[0].p_tx_w
        assert spec.tx_power_for_range(10.0) == TX_POWER_LEVELS[0].p_tx_w
        assert spec.tx_power_for_range(25.0) == TX_POWER_LEVELS[2].p_tx_w
        assert spec.tx_power_for_range(40.0) == TX_POWER_LEVELS[3].p_tx_w

    def test_out_of_ladder_distance_falls_back_to_nominal(self):
        spec = MICAZ.replace(tx_power_levels=TX_POWER_LEVELS)
        assert spec.tx_power_for_range(100.0) == MICAZ.p_tx_w

    def test_empty_ladder_is_always_nominal(self):
        assert MICAZ.tx_power_levels == ()
        assert MICAZ.tx_power_for_range(1.0) == MICAZ.p_tx_w

    def test_levels_validated(self):
        with pytest.raises(ValueError, match="positive"):
            MICAZ.replace(
                tx_power_levels=(TxPowerLevel(p_tx_w=0.0, range_m=10.0),)
            )

    def test_ladder_never_exceeds_micaz_nominal(self):
        # The 40 m full-power step draws ~52 mW vs the 51 mW Table 1
        # nominal — selection at exactly nominal range must not silently
        # *increase* the bill, so scenarios pairing this ladder with
        # Micaz keep short-hop savings only.
        spec = MICAZ.replace(tx_power_levels=TX_POWER_LEVELS)
        assert spec.tx_power_for_range(30.0) < MICAZ.p_tx_w


# ---------------------------------------------------------------------------
# Registry and factories.
# ---------------------------------------------------------------------------


class TestPolicyRegistry:
    def test_all_policies_registered(self):
        assert ROUTING_POLICY_NAMES == (
            POLICY_HOPS,
            POLICY_TX_ENERGY,
            POLICY_RESIDUAL,
        )
        for name in ROUTING_POLICY_NAMES:
            assert ROUTING_POLICIES.entry(name).summary

    def test_hops_resolves_to_no_cost_model(self):
        assert build_cost_model(POLICY_HOPS, RoutingPolicyContext()) is None

    def test_tx_energy_factory_threads_context(self):
        model = RadioEnergyModel(path_loss_exponent=3.0)
        cost = build_cost_model(
            POLICY_TX_ENERGY,
            RoutingPolicyContext(energy_model=model, packet_bits=640),
        )
        assert isinstance(cost, TxEnergyCost)
        assert cost.energy_model is model
        assert cost.packet_bits == 640
        assert cost.dynamic is False

    def test_residual_requires_a_reader(self):
        with pytest.raises(ValueError, match="residual_fraction"):
            build_cost_model(POLICY_RESIDUAL, RoutingPolicyContext())

    def test_residual_factory_builds_dynamic_model(self):
        cost = build_cost_model(
            POLICY_RESIDUAL,
            RoutingPolicyContext(residual_fraction=lambda node: 1.0),
        )
        assert isinstance(cost, ResidualEnergyCost)
        assert cost.dynamic is True

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            build_cost_model("steepest-descent", RoutingPolicyContext())


# ---------------------------------------------------------------------------
# Cost surfaces and the routes they produce.
# ---------------------------------------------------------------------------


class TestTxEnergyCost:
    def test_needs_a_layout(self):
        layout = _line_layout(0, 30)
        csr = CsrGraph.from_layout(layout, 60.0)
        with pytest.raises(ValueError, match="layout"):
            TxEnergyCost().edge_costs(csr, None)

    def test_costs_parallel_to_slots_and_symmetric(self):
        layout = _line_layout(0, 30, 60)
        csr = CsrGraph.from_layout(layout, 60.0)
        costs = TxEnergyCost().edge_costs(csr, layout)
        assert len(costs) == len(csr.indices)
        slot_cost = {}
        for row in range(len(csr.ids)):
            for j in range(csr.indptr[row], csr.indptr[row + 1]):
                slot_cost[(csr.ids[row], csr.ids[csr.indices[j]])] = costs[j]
        for (a, b), cost in slot_cost.items():
            assert cost == slot_cost[(b, a)]

    def test_prefers_two_short_hops_over_one_long(self):
        # 0 --30m-- 1 --30m-- 2 with a direct 60 m 0-2 edge in range:
        # min-hop goes direct, tx-energy relays through 1.
        layout = _line_layout(0, 30, 60)
        csr = CsrGraph.from_layout(layout, 60.0)
        table = DijkstraRoutingTable(csr, TxEnergyCost(), layout=layout)
        assert table.has_edge(0, 2)  # the long hop exists...
        assert table.path(0, 2) == [0, 1, 2]  # ...and is rejected
        assert table.hops(0, 2) == 2

    def test_path_cost_matches_energy_model(self):
        layout = _line_layout(0, 30, 60)
        csr = CsrGraph.from_layout(layout, 60.0)
        cost = TxEnergyCost(packet_bits=320)
        table = DijkstraRoutingTable(csr, cost, layout=layout)
        expected = 2 * FIRST_ORDER_RADIO_MODEL.tx_cost_j(320, 30.0)
        assert table.path_cost(0, 2) == pytest.approx(expected)


class TestResidualEnergyCost:
    def test_factors_are_inverse_residual_with_floor(self):
        layout = _line_layout(0, 30, 60)
        csr = CsrGraph.from_layout(layout, 60.0)
        fractions = {0: 1.0, 1: 0.25, 2: 0.0}
        cost = ResidualEnergyCost(lambda node: fractions[node])
        factors = cost.node_factors(csr)
        assert factors[0] == 1.0
        assert factors[1] == 4.0
        assert factors[2] == 1.0 / RESIDUAL_FLOOR  # clamped, never inf

    def test_routes_around_a_depleted_relay(self):
        # Square-ish diamond: 0 can reach sink 3 via relay 1 or relay 2
        # (equal geometry).  Deplete relay 1 and the route must use 2.
        layout = Layout({
            0: Position(0.0, 0.0),
            1: Position(30.0, 20.0),
            2: Position(30.0, -20.0),
            3: Position(60.0, 0.0),
        })
        csr = CsrGraph.from_layout(layout, 40.0)
        fractions = {0: 1.0, 1: 0.05, 2: 1.0, 3: 1.0}
        cost = ResidualEnergyCost(lambda node: fractions[node])
        table = DijkstraRoutingTable(
            csr, cost, layout=layout, rng=random.Random(11)
        )
        assert table.path(0, 3) == [0, 2, 3]

    def test_refresh_costs_folds_in_live_depletion(self):
        layout = Layout({
            0: Position(0.0, 0.0),
            1: Position(30.0, 20.0),
            2: Position(30.0, -20.0),
            3: Position(60.0, 0.0),
        })
        csr = CsrGraph.from_layout(layout, 40.0)
        fractions = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}
        cost = ResidualEnergyCost(lambda node: fractions[node])
        table = DijkstraRoutingTable(csr, cost, layout=layout)
        first = table.path(0, 3)
        relay = first[1]
        fractions[relay] = 0.05  # the battery poll observes depletion...
        table.refresh_costs()  # ...and the injector refreshes the table
        assert table.epoch == 0  # same epoch: no death happened
        rerouted = table.path(0, 3)
        assert rerouted[1] != relay

    def test_refresh_is_noop_for_static_models(self):
        layout = _line_layout(0, 30, 60)
        csr = CsrGraph.from_layout(layout, 60.0)
        table = DijkstraRoutingTable(csr, TxEnergyCost(), layout=layout)
        table.path(0, 2)
        before = table.trees_computed
        table.refresh_costs()
        table.path(0, 2)
        assert table.trees_computed == before  # memoized trees survived


# ---------------------------------------------------------------------------
# Live residual helpers (shared with the fault injector).
# ---------------------------------------------------------------------------


class _FlushableRadio:
    def __init__(self, bank, node, pending_j):
        self.bank = bank
        self.node = node
        self.pending_j = pending_j
        self.flushes = 0

    def flush_accounting(self):
        self.flushes += 1
        if self.pending_j:
            self.bank.charge(self.node, self.pending_j, "radio.high", "idle")
            self.pending_j = 0.0


class TestLiveResidual:
    def test_flushes_lazy_accounting_before_reading(self):
        bank = MeterBank(2)
        bank.charge(1, 3.0, "radio.low", "tx")
        radios = [
            _FlushableRadio(bank, 0, 0.0),
            _FlushableRadio(bank, 1, 2.0),
        ]
        assert live_consumed_j(bank, radios, 1) == 5.0
        assert radios[1].flushes == 1

    def test_no_high_tier_reads_directly(self):
        bank = MeterBank(1)
        bank.charge(0, 1.5, "radio.low", "tx")
        assert live_consumed_j(bank, [], 0) == 1.5

    def test_fraction_clamped_to_unit_interval(self):
        bank = MeterBank(1)
        assert live_residual_fraction(bank, [], 0, 10.0) == 1.0
        bank.charge(0, 20.0, "radio.low", "tx")  # overdrawn meter
        assert live_residual_fraction(bank, [], 0, 10.0) == 1e-6

    def test_zero_capacity_is_floored(self):
        bank = MeterBank(1)
        assert live_residual_fraction(bank, [], 0, 0.0) == 1e-6

    def test_matches_battery_poll_view(self):
        bank = MeterBank(1)
        radios = [_FlushableRadio(bank, 0, 4.0)]
        fraction = live_residual_fraction(bank, radios, 0, 16.0)
        assert fraction == pytest.approx(0.75)


# ---------------------------------------------------------------------------
# Scenario / CLI / report plumbing.
# ---------------------------------------------------------------------------


class TestScenarioPlumbing:
    def _config(self, policy, **extra):
        from repro.models.scenario import ScenarioConfig

        return ScenarioConfig(
            rows=3, cols=3, sink=4, n_senders=2, sim_time_s=30.0,
            burst_packets=20, spacing_m=30.0, routing_policy=policy, **extra,
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            self._config("steepest-descent")

    @pytest.mark.parametrize("policy", ROUTING_POLICY_NAMES)
    def test_every_policy_runs_and_delivers(self, policy):
        from repro.models.scenario import run_scenario

        result = run_scenario(self._config(policy))
        assert result.delivered_bits > 0
        assert result.energy_j[ENERGY_TOTAL] > 0.0

    def test_tx_power_ladder_cuts_energy_on_short_hops(self):
        from repro.models.scenario import run_scenario

        nominal = run_scenario(self._config("hops"))
        laddered = run_scenario(self._config(
            "hops", low_spec=MICAZ.replace(tx_power_levels=TX_POWER_LEVELS)
        ))
        assert laddered.delivered_bits == nominal.delivered_bits
        # 30 m grid hops select the 42 mW step instead of 51 mW nominal:
        # strictly cheaper, everything else identical.
        assert (
            laddered.energy_j[ENERGY_TOTAL] < nominal.energy_j[ENERGY_TOTAL]
        )

    def test_cli_flag_round_trips(self):
        from repro.cli.main import _run_config, _run_parser

        args = _run_parser().parse_args(
            ["--routing-policy", "tx-energy", "--senders", "2"]
        )
        assert _run_config(args).routing_policy == "tx-energy"

    def test_scenarios_list_names_every_policy(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ROUTING_POLICY_NAMES:
            assert name in out

    def test_report_names_the_policy(self):
        from repro.report.scenario import describe_composition

        lines = describe_composition(self._config("residual-energy"))
        assert any(
            "routing" in line and "residual-energy" in line for line in lines
        )
        hops_lines = describe_composition(self._config("hops"))
        assert any("hops" in line for line in hops_lines)

    def test_policy_comparison_table_renders_deltas(self):
        from repro.report.scenario import render_policy_comparison
        from repro.stats.metrics import RunResult

        def result(energy, first_death):
            return RunResult(
                model="sensor", sim_time_s=10.0, generated_bits=1000.0,
                delivered_bits=1000.0, mean_delay_s=0.1, max_delay_s=0.2,
                energy_j={ENERGY_TOTAL: energy},
                counters={"faults.first_death_s": first_death},
            )

        table = render_policy_comparison({
            "hops": [result(2.0, 50.0)],
            "residual-energy": [result(2.2, 80.0)],
        })
        assert "+10.0%" in table
        assert "+30 s" in table
