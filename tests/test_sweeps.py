"""Sweep orchestration: matrix structure and figure views."""

import pytest

from repro.models.sweeps import (
    LABEL_SENSOR,
    LABEL_WIFI,
    SweepScale,
    dual_label,
    energy_delay_points,
    energy_rows,
    goodput_rows,
    run_sweep,
)


@pytest.fixture(scope="module")
def tiny_sweep():
    scale = SweepScale(senders=(3, 5), bursts=(10, 100), n_runs=1,
                       sim_time_s=40.0)
    return run_sweep("SH", scale, rate_bps=2000.0)


class TestSweepStructure:
    def test_labels(self, tiny_sweep):
        assert tiny_sweep.labels() == [
            "DualRadio-10",
            "DualRadio-100",
            LABEL_SENSOR,
            LABEL_WIFI,
        ]

    def test_sender_counts(self, tiny_sweep):
        assert tiny_sweep.sender_counts() == [3, 5]

    def test_dual_label(self):
        assert dual_label(500) == "DualRadio-500"

    def test_invalid_case(self):
        with pytest.raises(ValueError):
            run_sweep("XX")

    def test_progress_callback(self):
        lines = []
        run_sweep(
            "SH",
            SweepScale(senders=(2,), bursts=(10,), n_runs=1, sim_time_s=5.0),
            include_wifi=False,
            include_sensor=False,
            progress=lines.append,
        )
        assert lines == ["SH: DualRadio-10 senders=2"]


class TestFigureViews:
    def test_goodput_rows_complete(self, tiny_sweep):
        rows = goodput_rows(tiny_sweep)
        assert set(rows) == set(tiny_sweep.labels())
        for per_count in rows.values():
            assert set(per_count) == {3, 5}
            assert all(0.0 <= v <= 1.0 for v in per_count.values())

    def test_energy_rows_split_sensor_variants(self, tiny_sweep):
        rows = energy_rows(tiny_sweep)
        assert "Sensor-ideal" in rows
        assert "Sensor-header" in rows
        assert LABEL_WIFI not in rows  # paper excludes 802.11 from energy
        for count in (3, 5):
            assert rows["Sensor-header"][count] >= rows["Sensor-ideal"][count]

    def test_energy_delay_points_per_sender_count(self, tiny_sweep):
        points = energy_delay_points(tiny_sweep)
        assert set(points) == {3, 5}
        for line in points.values():
            bursts = [burst for burst, _d, _e in line]
            assert bursts == sorted(bursts) == [10, 100]


class TestScalePresets:
    def test_paper_scale(self):
        scale = SweepScale.paper()
        assert scale.senders == (5, 10, 15, 20, 25, 30, 35)
        assert scale.sim_time_s == 5000.0
        assert scale.n_runs == 20
        assert scale.bursts == (10, 100, 500, 1000, 2500)

    def test_smoke_scale(self):
        assert SweepScale.smoke().n_runs == 1
