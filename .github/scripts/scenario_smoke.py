"""CI smoke: one cell of every topology × propagation combination,
plus one cell per registered routing policy.

Drives the real ``repro run`` CLI (not the library directly) so the whole
surface — spec parsing, config validation, the cached sweep runner, the
report renderer — is exercised per combination.  Runs everything twice:
the second pass must be answered entirely from the result cache, proving
composed cells hash and cache like paper cells.
"""

import contextlib
import io
import json
import os
import sys
import tempfile

from repro.channel.propagation import PROPAGATION
from repro.cli.main import main
from repro.net.policy import ROUTING_POLICIES
from repro.runner import ResultCache
from repro.topology.registry import TOPOLOGIES

#: Small, connected parameterizations per registered topology.  Grid and
#: line spacing stays below the 40 m nominal range so log-normal runs
#: keep their links (exact-range links are muted by any negative gain).
TOPOLOGY_ARGS = {
    "grid": "grid:rows=3,cols=3,spacing_m=30",
    "line": "line:n=5,spacing_m=30",
    "uniform-random": (
        "uniform-random:n=9,width_m=80,height_m=80,connect_range_m=40"
    ),
    "clustered": (
        "clustered:n=9,width_m=80,height_m=80,clusters=2,sigma_m=10,"
        "connect_range_m=40"
    ),
    # from-file is exercised via --topology-file (see below).
}

PROPAGATION_ARGS = {
    "unit-disc": "unit-disc",
    "log-normal": "log-normal:sigma_db=2",
    "distance-prr": "distance-prr:exponent=6",
}

#: One cell per routing policy on a dense random deployment (short hops
#: give the energy policies something to actually choose between).
ROUTING_POLICY_ARGS = {
    policy: ["--routing-policy", policy]
    for policy in ("hops", "tx-energy", "residual-energy")
}


def run_cell(extra_args: list[str], expect_cached: bool = False) -> None:
    argv = [
        "run",
        *extra_args,
        "--senders",
        "3",
        "--burst",
        "10",
        "--sim-time",
        "10",
        "--runs",
        "1",
    ]
    print("repro", " ".join(argv), flush=True)
    progress = io.StringIO()
    with contextlib.redirect_stderr(progress):
        rc = main(argv)
    if rc != 0:
        sys.exit(f"repro run failed ({rc}) for: {argv}")
    if expect_cached and "(1/1 cached)" not in progress.getvalue():
        sys.exit(
            f"expected a pure cache hit for {argv}; runner reported:\n"
            f"{progress.getvalue()}"
        )


def main_smoke() -> None:
    registered = set(TOPOLOGIES.names())
    covered = set(TOPOLOGY_ARGS) | {"from-file"}
    if registered != covered:
        sys.exit(
            f"smoke matrix out of date: registered {sorted(registered)} "
            f"vs covered {sorted(covered)}"
        )
    if set(PROPAGATION_ARGS) != set(PROPAGATION.names()):
        sys.exit(
            "smoke matrix out of date: propagation models "
            f"{PROPAGATION.names()} vs covered {sorted(PROPAGATION_ARGS)}"
        )
    if set(ROUTING_POLICY_ARGS) != set(ROUTING_POLICIES.names()):
        sys.exit(
            "smoke matrix out of date: routing policies "
            f"{ROUTING_POLICIES.names()} vs covered "
            f"{sorted(ROUTING_POLICY_ARGS)}"
        )

    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as handle:
        json.dump([[0, 0], [25, 0], [50, 0], [25, 25], [50, 25]], handle)
        layout_file = handle.name

    matrix: list[list[str]] = []
    for targ in TOPOLOGY_ARGS.values():
        for parg in PROPAGATION_ARGS.values():
            matrix.append(["--topology", targ, "--propagation", parg])
    for parg in PROPAGATION_ARGS.values():
        matrix.append(["--topology-file", layout_file, "--propagation", parg])
    for policy_args in ROUTING_POLICY_ARGS.values():
        matrix.append(
            ["--topology", TOPOLOGY_ARGS["uniform-random"], *policy_args]
        )

    for cell_args in matrix:
        run_cell(cell_args)

    cache = ResultCache(os.environ.get("REPRO_CACHE_DIR"))
    stats = cache.disk_stats()
    print(f"\nfirst pass: {len(matrix)} cells, cache now holds {stats.entries}")
    if stats.entries < len(matrix):
        sys.exit(f"expected >= {len(matrix)} cached cells, found {stats.entries}")

    # Second pass over the SAME full matrix: every cell — including the
    # stochastic propagation models and the from-file layout — must be a
    # pure cache hit.
    for cell_args in matrix:
        run_cell(cell_args, expect_cached=True)
    print(f"second pass: all {len(matrix)} cells served from the cache")


if __name__ == "__main__":
    main_smoke()
