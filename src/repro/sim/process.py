"""Generator-based simulation processes.

A *process* wraps a Python generator that models an active entity (a radio,
a MAC attempt, a traffic source...).  The generator advances by ``yield``-ing
events; it is resumed when the yielded event is processed, receiving the
event's value at the ``yield`` expression (or having the event's exception
raised there if the event failed).

A :class:`Process` is itself an :class:`~repro.sim.events.Event`: it triggers
when the generator returns (value = the generator's return value) or raises.
That lets processes wait for each other and be combined with ``|`` / ``&``.
"""

from __future__ import annotations

import types
import typing

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import PENDING, URGENT, Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class Process(Event):
    """Drives a generator through the event loop.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        A generator yielding :class:`~repro.sim.events.Event` instances.
    name:
        Optional label shown in ``repr`` and error messages.
    """

    __slots__ = ("generator", "name", "_target", "_start_event", "_cb")

    def __init__(
        self,
        sim: "Simulator",
        generator: types.GeneratorType,
        name: str | None = None,
    ):
        if not isinstance(generator, types.GeneratorType):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or generator.__name__
        #: The event this process is currently waiting on (None if runnable).
        self._target: Event | None = None
        # The resume callback, bound once: a process re-wires it onto a
        # new target at every yield, and building a fresh bound method
        # each time was measurable in the kernel profile.
        self._cb = self._resume
        # Kick the generator off at the current simulation time via an
        # initialization event so process creation composes with the agenda.
        start = Event(sim)
        start.callbacks.append(self._cb)
        start._ok = True
        start._value = None
        sim._enqueue(start, delay=0.0, priority=URGENT)
        self._start_event = start
        self._target = start

    @property
    def is_alive(self) -> bool:
        """Whether the generator has neither returned nor raised yet."""
        return self._value is PENDING

    @property
    def target(self) -> Event | None:
        """The event the process is waiting on (``None`` while runnable)."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.sim.errors.Interrupt` into the generator.

        The interrupt is delivered immediately (at the current simulation
        time, before any queued event) so that state observed by the
        interrupter cannot change in between.  Interrupting a dead process
        raises :class:`SimulationError`.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is self._start_event:
            raise SimulationError(f"{self!r} has not started yet")
        # Stop listening to whatever we were waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._cb)
            except ValueError:
                pass
        self._target = None
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._cb)
        self.sim._enqueue(interrupt_event, delay=0.0, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome; wire up the next wait."""
        sim = self.sim
        generator = self.generator
        sim._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        target = generator.send(event._value)
                    else:
                        event._defused = True
                        target = self.generator.throw(
                            typing.cast(BaseException, event._value)
                        )
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self._target = None
                    self.fail(exc)
                    return

                # Fast path: the overwhelming majority of yields target a
                # fresh, unprocessed event of this simulator.  Anything
                # else (non-events, foreign events, already-processed
                # events) falls through to the diagnosing slow path.
                try:
                    if target.sim is sim and target._processed is False:
                        target.callbacks.append(self._cb)
                        self._target = target
                        return
                except AttributeError:
                    pass

                if not isinstance(target, Event):
                    message = (
                        f"process {self.name!r} yielded {target!r}; "
                        "processes may only yield Event instances"
                    )
                    self._target = None
                    self.fail(SimulationError(message))
                    return
                if target.sim is not sim:
                    self._target = None
                    self.fail(
                        SimulationError(
                            f"process {self.name!r} yielded an event owned by "
                            "a different simulator"
                        )
                    )
                    return
                # Already-processed events resume the generator at once.
                event = target
        finally:
            sim._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {status} at {id(self):#x}>"
