"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class EventAlreadyTriggered(SimulationError):
    """Raised when ``succeed``/``fail`` is called on an already-triggered event."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`repro.sim.Simulator.run` early.

    User code may raise it from a callback to stop the run loop; the
    simulator catches it and returns normally.
    """


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`repro.sim.Process.interrupt`.

    Attributes
    ----------
    cause:
        The object passed to ``interrupt``; identifies why the process was
        interrupted (for example a higher-priority request arriving).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"
