"""Blocking queues for producer/consumer coordination between processes.

:class:`Store` is a FIFO buffer with optional capacity: ``put`` blocks (as an
event) while full, ``get`` blocks while empty.  BCP's data buffers build on
plain deques for speed, but Store is the general-purpose substrate used by
traffic sinks and the testbed harness, and it exercises the kernel's event
machinery heavily in tests.
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class StorePut(Event):
    """Event returned by :meth:`Store.put`; succeeds once the item is stored."""

    __slots__ = ("item",)

    def __init__(self, sim: "Simulator", item: object):
        super().__init__(sim)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; its value is the retrieved item."""

    __slots__ = ()


class Store:
    """FIFO item buffer with blocking put/get semantics.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum number of buffered items; ``float('inf')`` (default) for an
        unbounded store.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.items: collections.deque = collections.deque()
        self._puts: collections.deque[StorePut] = collections.deque()
        self._gets: collections.deque[StoreGet] = collections.deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        """Whether the store holds ``capacity`` items."""
        return len(self.items) >= self.capacity

    def put(self, item: object) -> StorePut:
        """Request insertion of ``item``; the returned event fires when stored."""
        event = StorePut(self.sim, item)
        self._puts.append(event)
        self._settle()
        return event

    def get(self) -> StoreGet:
        """Request removal of the oldest item; the event's value is the item."""
        event = StoreGet(self.sim)
        self._gets.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        """Match queued puts and gets against current occupancy."""
        progressed = True
        while progressed:
            progressed = False
            while self._puts and len(self.items) < self.capacity:
                put = self._puts.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            while self._gets and self.items:
                get = self._gets.popleft()
                get.succeed(self.items.popleft())
                progressed = True
