"""Deterministic, named random-number streams.

Every stochastic decision in the simulator (MAC backoff, packet loss, traffic
jitter...) draws from a *named* stream obtained from :class:`RngRegistry`.
Stream seeds are derived by hashing ``(master_seed, name)``, so:

* two runs with the same master seed are bit-identical;
* adding a new consumer of randomness does not perturb existing streams
  (unlike sharing a single ``random.Random``), which keeps experiments
  comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed for ``name`` from ``master_seed``.

    Uses SHA-256 over a canonical encoding, so the mapping is stable across
    platforms and Python versions (``hash()`` is salted and unsuitable).
    """
    digest = hashlib.sha256(f"{master_seed}\x00{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams.

    Parameters
    ----------
    master_seed:
        The single seed from which every stream's seed is derived.

    Examples
    --------
    >>> streams = RngRegistry(42)
    >>> a = streams.stream("mac.backoff")
    >>> b = streams.stream("mac.backoff")
    >>> a is b
    True
    >>> streams.stream("channel.loss") is a
    False
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry whose master seed is derived from ``name``.

        Useful for giving each simulation replica of a sweep its own
        independent but reproducible universe of streams.
        """
        return RngRegistry(derive_seed(self.master_seed, f"registry:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RngRegistry seed={self.master_seed} streams={sorted(self._streams)}>"
        )
