"""The discrete-event simulator: clock, agenda and run loop.

:class:`Simulator` keeps a binary-heap agenda of triggered events keyed by
``(time, priority, sequence)``; the sequence number makes the ordering total
and deterministic (ties at the same time and priority process in insertion
order).  All model code — radios, MACs, BCP — runs inside event callbacks or
generator processes driven by this loop.
"""

from __future__ import annotations

import heapq
import types
import typing

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

#: Type of the heap entries: (time, priority, sequence, event).
_QueueItem = tuple[float, int, int, Event]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's random-stream registry
        (:attr:`rng`).  Two simulators built with the same seed and the same
        model produce identical traces.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> def hello():
    ...     yield sim.timeout(2.5)
    ...     return "done at %.1f" % sim.now
    >>> proc = sim.process(hello())
    >>> sim.run()
    >>> proc.value
    'done at 2.5'
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue: list[_QueueItem] = []
        self._sequence = 0
        self._active_process: Process | None = None
        #: Events processed so far — an ops counter ``repro bench`` and the
        #: fig benchmarks record alongside wall times.
        self.events_processed = 0
        #: Named deterministic random streams (see :class:`RngRegistry`).
        self.rng = RngRegistry(seed)

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any (for re-entrancy checks)."""
        return self._active_process

    # -- event construction ----------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: types.GeneratorType, name: str | None = None
    ) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Condition event triggering when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Condition event triggering when all of ``events`` have fired."""
        return AllOf(self, events)

    def call_at(
        self, when: float, fn: typing.Callable[..., None], *args: object
    ) -> Event:
        """Schedule plain callable ``fn(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now}); time is monotonic"
            )
        return self.call_later(when - self._now, fn, *args)

    def call_later(
        self, delay: float, fn: typing.Callable[..., None], *args: object
    ) -> Event:
        """Schedule plain callable ``fn(*args)`` after ``delay`` seconds.

        Returns the underlying event so callers can compose or inspect it.
        """
        event = Timeout(self, delay)
        event.callbacks.append(lambda _event: fn(*args))
        return event

    # -- agenda ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        """Insert a triggered event into the agenda (kernel internal)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heapq.heappush(self._queue, (self._now + delay, priority, self._sequence, event))
        self._sequence += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty agenda")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of dropping it.
            raise typing.cast(BaseException, event._value)

    def run(self, until: float | Event | None = None) -> object:
        """Run the event loop.

        Parameters
        ----------
        until:
            * ``None`` — run until the agenda is empty.
            * a number — run all events with ``time <= until``, then set the
              clock to ``until``.
            * an :class:`Event` — run until that event is processed and
              return its value (raising if it failed).
        """
        if isinstance(until, Event):
            stop_marker: list[object] = []
            if until.callbacks is None:
                # Already processed.
                if not until._ok:
                    raise typing.cast(BaseException, until._value)
                return until._value
            until.callbacks.append(lambda event: stop_marker.append(event))
            try:
                while self._queue and not stop_marker:
                    self.step()
            except StopSimulation:
                pass
            if not stop_marker:
                raise SimulationError(
                    "run(until=event) exhausted the agenda before the event fired"
                )
            if not until._ok:
                until._defused = True
                raise typing.cast(BaseException, until.value)
            return until.value

        # The two loops below inline step(): at full fidelity a run pops
        # hundreds of thousands of events, and the method call plus the
        # re-resolved attribute lookups were measurable kernel overhead.
        # Any semantic change here must be mirrored in step().
        queue = self._queue
        pop = heapq.heappop

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon} (now is {self._now})"
                )
            try:
                while queue and queue[0][0] <= horizon:
                    when, _priority, _seq, event = pop(queue)
                    self._now = when
                    self.events_processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise typing.cast(BaseException, event._value)
            except StopSimulation:
                return None
            self._now = max(self._now, horizon)
            return None

        try:
            while queue:
                when, _priority, _seq, event = pop(queue)
                self._now = when
                self.events_processed += 1
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise typing.cast(BaseException, event._value)
        except StopSimulation:
            pass
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self._now:.6f} agenda={len(self._queue)}>"
