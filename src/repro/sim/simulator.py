"""The discrete-event simulator: clock, agenda and run loop.

:class:`Simulator` keeps an agenda of triggered events ordered by
``(time, priority, sequence)``; the sequence number makes the ordering
total and deterministic (ties at the same time and priority process in
insertion order).  All model code — radios, MACs, BCP — runs inside event
callbacks or generator processes driven by this loop.

The agenda itself is a pluggable backend (see :mod:`repro.sim.scheduler`):
``scheduler="heap"`` keeps the historical binary heap — the byte-identity
reference every golden digest was recorded against — while
``scheduler="calendar"`` buckets events by exact timestamp so the run
loop can dispatch whole same-timestamp batches with one heap pop per
*distinct* time.  Both backends preserve the same total ordering, so
results are byte-identical; only the wall clock differs.

Two further kernel optimizations ride on the loop:

* **Timeout free-list** — :class:`~repro.sim.events.Timeout` is the
  kernel's hottest allocation (one per MAC wait, backoff and frame).
  After a timeout's callbacks run, if the loop holds the only remaining
  reference (a ``sys.getrefcount`` check — cheap and exact), the object
  is reset and parked on a bounded pool for :meth:`Simulator.timeout` to
  reuse instead of allocating.
* **Cancelled-event discard** — events killed via
  :meth:`Event.cancel() <repro.sim.events.Event.cancel>` are dropped at
  pop time, undelivered and uncounted in ``events_processed``, instead
  of being dispatched dead.  A cancelled ``Timeout`` that nothing else
  references (the flat MAC engine's abandoned ack timers) feeds the same
  free-list as a dispatched one.
"""

from __future__ import annotations

import heapq
import sys
import types
import typing

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import (
    CalendarScheduler,
    HeapScheduler,
    build_scheduler,
)

#: Upper bound on the Timeout free-list.  Steady-state workloads cycle a
#: handful of timeouts per process; the cap only matters when a burst
#: drains at once, and keeping it small bounds worst-case retained memory.
_POOL_MAX = 1024

_INFINITY = float("inf")


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's random-stream registry
        (:attr:`rng`).  Two simulators built with the same seed and the same
        model produce identical traces.
    scheduler:
        Agenda backend: a name from
        :data:`repro.sim.scheduler.SCHEDULERS` (``"heap"`` — default —
        or ``"calendar"``) or any object satisfying the
        :class:`~repro.sim.scheduler.Scheduler` protocol.  Every backend
        produces byte-identical traces; pick by workload shape.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> def hello():
    ...     yield sim.timeout(2.5)
    ...     return "done at %.1f" % sim.now
    >>> proc = sim.process(hello())
    >>> sim.run()
    >>> proc.value
    'done at 2.5'
    """

    # Slots, not a dict: the run loops store _now and the counters once
    # per event, and slot descriptors shave a measurable slice off those
    # hottest attribute accesses.
    __slots__ = (
        "_now",
        "_scheduler",
        "_push",
        "_calendar",
        "_heap",
        "_active_process",
        "events_processed",
        "events_cancelled",
        "rng",
        "_pool",
    )

    def __init__(self, seed: int = 0, scheduler: object = "heap"):
        self._now = 0.0
        self._scheduler = build_scheduler(scheduler)
        # Bound once: the push is on the hot path of every enqueue.
        self._push = self._scheduler.push
        # Non-None only for the calendar backend: timeout() then inlines
        # the backend's memo-hit push (a deque append) instead of paying
        # a method call per timer.
        self._calendar = (
            self._scheduler
            if type(self._scheduler) is CalendarScheduler
            else None
        )
        # Non-None only for the heap backend: timeout() inlines the
        # heappush (keep in sync with HeapScheduler.push, like _run_heap).
        self._heap = (
            self._scheduler
            if type(self._scheduler) is HeapScheduler
            else None
        )
        self._active_process: Process | None = None
        #: Events processed so far — an ops counter ``repro bench`` and the
        #: fig benchmarks record alongside wall times.
        self.events_processed = 0
        #: Events discarded undelivered because they were cancelled
        #: before their agenda time came up.
        self.events_cancelled = 0
        #: Named deterministic random streams (see :class:`RngRegistry`).
        self.rng = RngRegistry(seed)
        # Recycled Timeout instances (see module docstring).
        self._pool: list[Timeout] = []

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any (for re-entrancy checks)."""
        return self._active_process

    @property
    def scheduler(self) -> object:
        """The agenda backend this simulator runs on (read-only)."""
        return self._scheduler

    # -- event construction ----------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        Hot path: reuses a pooled :class:`Timeout` when the run loop has
        proven one unreferenced, and inlines the field setup otherwise
        (mirroring ``Timeout.__init__`` — keep the two in sync).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        pool = self._pool
        if pool:
            event = pool.pop()
            event._value = value
            event.delay = delay
        else:
            event = Timeout.__new__(Timeout)
            event.sim = self
            event.callbacks = []
            event._value = value
            event._ok = True
            event._processed = False
            event._defused = False
            event._cancelled = False
            event.delay = delay
        when = self._now + delay
        heap = self._heap
        if heap is not None:
            # Inlined HeapScheduler.push (keep in sync): one method call
            # per timer is measurable at contention scale.
            seq = heap._sequence
            heap._sequence = seq + 1
            heapq.heappush(heap._queue, (when, NORMAL, seq, event))
            return event
        calendar = self._calendar
        if calendar is not None and when == calendar._memo_t:
            # Memo hit: another timer for the bucket the last push went
            # to — the dominant pattern when many nodes share a tick.
            calendar._memo_append(event)
        else:
            self._push(when, NORMAL, event)
        return event

    def process(
        self, generator: types.GeneratorType, name: str | None = None
    ) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Condition event triggering when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Condition event triggering when all of ``events`` have fired."""
        return AllOf(self, events)

    def call_at(
        self, when: float, fn: typing.Callable[..., None], *args: object
    ) -> Event:
        """Schedule plain callable ``fn(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now}); time is monotonic"
            )
        return self.call_later(when - self._now, fn, *args)

    def call_later(
        self, delay: float, fn: typing.Callable[..., None], *args: object
    ) -> Event:
        """Schedule plain callable ``fn(*args)`` after ``delay`` seconds.

        Returns the underlying event so callers can compose or inspect it.
        """
        event = self.timeout(delay)
        event.callbacks.append(lambda _event: fn(*args))
        return event

    # -- agenda ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        """Insert a triggered event into the agenda (kernel internal)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heap = self._heap
        if heap is not None:
            # Inlined HeapScheduler.push (keep in sync) — succeed()/hop
            # traffic makes this as hot as timeout().
            seq = heap._sequence
            heap._sequence = seq + 1
            heapq.heappush(heap._queue, (self._now + delay, priority, seq, event))
            return
        self._push(self._now + delay, priority, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none.

        May report a time occupied only by cancelled entries; the clock
        never advances to such a time (see :mod:`repro.sim.scheduler`).
        """
        return self._scheduler.peek()

    def step(self) -> None:
        """Process exactly one live event (advancing the clock to it).

        Cancelled entries encountered on the way are discarded, so a
        step always dispatches; an agenda holding nothing but cancelled
        entries counts as empty.
        """
        scheduler = self._scheduler
        while True:
            try:
                when, event = scheduler.pop()
            except IndexError:
                raise SimulationError("step() on an empty agenda") from None
            if not event._cancelled:
                break
            self.events_cancelled += 1
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of dropping it.
            raise typing.cast(BaseException, event._value)

    def run(self, until: float | Event | None = None) -> object:
        """Run the event loop.

        Parameters
        ----------
        until:
            * ``None`` — run until the agenda is empty.
            * a number — run all events with ``time <= until``, then set the
              clock to ``until``.
            * an :class:`Event` — run until that event is processed and
              return its value (raising if it failed).
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        # Type-dispatch to a loop with the scheduler's internals inlined:
        # at full fidelity a run pops hundreds of thousands of events, and
        # both the scheduler method calls and the re-resolved attribute
        # lookups were measurable kernel overhead.  Any semantic change in
        # one loop must be mirrored in the others and in step().
        scheduler = self._scheduler
        if type(scheduler) is CalendarScheduler:
            return self._run_calendar(until)
        if type(scheduler) is HeapScheduler:
            return self._run_heap(until)
        return self._run_generic(until)

    def _run_until_event(self, until: Event) -> object:
        """``run(until=<event>)``: drive the loop until ``until`` processes."""
        if until.callbacks is None:
            # Already processed.
            if not until._ok:
                raise typing.cast(BaseException, until._value)
            return until._value
        stop_marker: list[object] = []
        until.callbacks.append(lambda event: stop_marker.append(event))
        scheduler = self._scheduler
        try:
            while not stop_marker:
                try:
                    when, event = scheduler.pop()
                except IndexError:
                    break
                if event._cancelled:
                    self.events_cancelled += 1
                    continue
                self._now = when
                self.events_processed += 1
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise typing.cast(BaseException, event._value)
        except StopSimulation:
            pass
        if not stop_marker:
            raise SimulationError(
                "run(until=event) exhausted the agenda before the event fired"
            )
        if not until._ok:
            until._defused = True
            raise typing.cast(BaseException, until.value)
        return until.value

    def _check_horizon(self, until: float | None) -> float | None:
        if until is None:
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} (now is {self._now})"
            )
        return horizon

    def _run_heap(self, until: float | None) -> None:
        """Inlined loop over :class:`HeapScheduler`'s binary heap."""
        horizon = self._check_horizon(until)
        queue = self._scheduler._queue
        pop = heapq.heappop
        pool = self._pool
        getrefcount = sys.getrefcount
        timeout_type = Timeout
        try:
            while queue and (horizon is None or queue[0][0] <= horizon):
                when, _priority, _seq, event = pop(queue)
                if event._cancelled:
                    self.events_cancelled += 1
                    # Cancelled timeouts recycle too (same refcount proof
                    # as below).  Their callbacks never ran, so the list
                    # is non-empty and must be cleared; _cancelled is the
                    # one extra flag to reset.  This is what lets the flat
                    # MAC's cancelled ack timers feed the free-list — the
                    # generator engine's AnyOf still references its timer
                    # here (refcount 3), so it keeps falling through.
                    if type(event) is timeout_type and getrefcount(event) == 2:
                        event.callbacks.clear()
                        event._cancelled = False
                        pool.append(event)
                    continue
                self._now = when
                self.events_processed += 1
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                # One callback (a waiting process) is the common case;
                # skip the iterator for it.
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise typing.cast(BaseException, event._value)
                # Free-list: refcount 2 == the loop local + getrefcount's
                # argument — nothing else (no process, no condition, no
                # model code) still holds the timeout, so it is safe to
                # reset and reuse.  Reattach the emptied callbacks list
                # rather than allocating a fresh one.  Only _processed
                # needs resetting here: timeout() overwrites _value and
                # delay on reuse, _defused is never consulted for a
                # timeout (_ok is always True), and a processed event
                # cannot have been cancelled.  The pool is trimmed to
                # _POOL_MAX once per run, not per event.
                if type(event) is timeout_type and getrefcount(event) == 2:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._processed = False
                    pool.append(event)
        except StopSimulation:
            return None
        finally:
            del pool[_POOL_MAX:]
        if horizon is not None:
            self._now = max(self._now, horizon)
        return None

    def _run_calendar(self, until: float | None) -> None:
        """Batched loop over :class:`CalendarScheduler`'s timestamp buckets.

        One heap pop per *distinct* time: the whole same-timestamp run
        dispatches straight off the bucket's deques.  Urgent entries are
        re-checked before every normal dispatch so an urgent event pushed
        mid-batch (a process interrupt) still precedes the remaining
        normal entries — exactly the heap's ``(t, 0, seq) < (t, 1, seq)``
        ordering.
        """
        horizon = self._check_horizon(until)
        scheduler = self._scheduler
        buckets = scheduler._buckets
        times = scheduler._times
        pop_time = heapq.heappop
        pool = self._pool
        getrefcount = sys.getrefcount
        timeout_type = Timeout
        processed = 0
        cancelled = 0
        try:
            while times:
                when = times[0]
                if horizon is not None and when > horizon:
                    break
                urgent, normal = buckets[when]
                while True:
                    if urgent:
                        event = urgent.popleft()
                    elif normal:
                        event = normal.popleft()
                    else:
                        break
                    if event._cancelled:
                        cancelled += 1
                        # Cancelled-timeout recycle — see _run_heap.
                        if (
                            type(event) is timeout_type
                            and getrefcount(event) == 2
                        ):
                            event.callbacks.clear()
                            event._cancelled = False
                            pool.append(event)
                        continue
                    self._now = when
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    # One callback (a waiting process) is the common
                    # case; skip the iterator for it.
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise typing.cast(BaseException, event._value)
                    # Free-list — see _run_heap for the recycle proof.
                    if type(event) is timeout_type and getrefcount(event) == 2:
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._processed = False
                        pool.append(event)
                # Bucket drained (mid-batch pushes at `when` included):
                # retire it, and the push memo if it pointed here.
                pop_time(times)
                del buckets[when]
                if scheduler._memo_t == when:
                    scheduler._memo_t = None
                    scheduler._memo = None
                    scheduler._memo_append = None
        except StopSimulation:
            return None
        finally:
            self.events_processed += processed
            self.events_cancelled += cancelled
            del pool[_POOL_MAX:]
        if horizon is not None:
            self._now = max(self._now, horizon)
        return None

    def _run_generic(self, until: float | None) -> None:
        """Protocol-only loop for bring-your-own scheduler backends."""
        horizon = self._check_horizon(until)
        scheduler = self._scheduler
        while True:
            when = scheduler.peek()
            if when == _INFINITY or (horizon is not None and when > horizon):
                break
            try:
                when, event = scheduler.pop()
            except IndexError:  # pragma: no cover - peek/pop race-free here
                break
            if event._cancelled:
                self.events_cancelled += 1
                continue
            self._now = when
            self.events_processed += 1
            callbacks, event.callbacks = event.callbacks, None
            event._processed = True
            try:
                for callback in callbacks:
                    callback(event)
            except StopSimulation:
                return None
            if not event._ok and not event._defused:
                raise typing.cast(BaseException, event._value)
        if horizon is not None:
            self._now = max(self._now, horizon)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self._now:.6f} agenda={len(self._scheduler)}>"
