"""Measurement probes: time-stamped series and counters.

Model code records observations into :class:`Probe` objects; the statistics
layer (:mod:`repro.stats`) consumes them after the run.  Probes are cheap
(list appends) and make no assumptions about what is being measured.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class Probe:
    """A time-stamped sequence of scalar observations.

    Parameters
    ----------
    sim:
        Simulator whose clock stamps each observation.
    name:
        Label used in summaries and error messages.
    """

    def __init__(self, sim: "Simulator", name: str):
        self.sim = sim
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, value: float) -> None:
        """Append ``value`` stamped with the current simulation time."""
        self.times.append(self.sim.now)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of all recorded values."""
        return sum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded values (0.0 if empty)."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def last(self) -> float | None:
        """Most recent value, or ``None`` if nothing was recorded."""
        return self.values[-1] if self.values else None

    def series(self) -> list[tuple[float, float]]:
        """Return ``[(time, value), ...]`` pairs in recording order."""
        return list(zip(self.times, self.values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Probe {self.name!r} n={len(self)} mean={self.mean:.4g}>"


class Counter:
    """A named monotonically updated tally (no timestamps).

    Used for packet counts, retransmissions, drops — places where only the
    final total matters and per-event timestamps would waste memory.
    """

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the tally by ``amount``."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name!r} value={self.value:g}>"


class ProbeSet:
    """Lazily-created collection of probes and counters for one component."""

    def __init__(self, sim: "Simulator", prefix: str = ""):
        self.sim = sim
        self.prefix = prefix
        self.probes: dict[str, Probe] = {}
        self.counters: dict[str, Counter] = {}

    def probe(self, name: str) -> Probe:
        """Return (creating if needed) the probe called ``name``."""
        full = f"{self.prefix}{name}"
        if full not in self.probes:
            self.probes[full] = Probe(self.sim, full)
        return self.probes[full]

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        full = f"{self.prefix}{name}"
        if full not in self.counters:
            self.counters[full] = Counter(full)
        return self.counters[full]
