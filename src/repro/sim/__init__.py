"""Deterministic discrete-event simulation kernel.

This package is the substrate on which the whole reproduction runs.  The
paper evaluated BCP in an (unnamed) network simulator; since no off-line DES
library is available here, the kernel is implemented from scratch:

* :class:`Simulator` — clock, agenda, run loop.
* :class:`Scheduler` protocol with :class:`HeapScheduler` /
  :class:`CalendarScheduler` — pluggable agenda backends.
* :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf` — the
  waitable primitives.
* :class:`Process` — generator-based active entities.
* :class:`Store` — blocking FIFO for producer/consumer coordination.
* :class:`RngRegistry` — named deterministic random streams.
* :class:`Probe` / :class:`Counter` / :class:`ProbeSet` — measurement hooks.

The semantics deliberately mirror SimPy's (events trigger → agenda →
callbacks; processes yield events) so the model code reads like standard
simulation Python.
"""

from repro.sim.errors import (
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    StopSimulation,
)
from repro.sim.events import NORMAL, URGENT, AllOf, AnyOf, Condition, Event, Timeout
from repro.sim.monitor import Counter, Probe, ProbeSet
from repro.sim.process import Process
from repro.sim.resources import Store, StoreGet, StorePut
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.scheduler import (
    SCHEDULERS,
    CalendarScheduler,
    HeapScheduler,
    Scheduler,
    build_scheduler,
)
from repro.sim.simulator import Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarScheduler",
    "Condition",
    "Counter",
    "Event",
    "EventAlreadyTriggered",
    "HeapScheduler",
    "Interrupt",
    "NORMAL",
    "Probe",
    "ProbeSet",
    "Process",
    "RngRegistry",
    "SCHEDULERS",
    "Scheduler",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "URGENT",
    "build_scheduler",
    "derive_seed",
]
