"""Pluggable agenda backends for the simulator.

The simulator's agenda used to be a binary heap hard-wired into
:class:`~repro.sim.simulator.Simulator`.  This module makes the agenda a
swappable *scheduler* behind a small protocol, so the kernel's run loop
can be tuned per workload without touching model code:

* :class:`HeapScheduler` — the historical ``heapq`` agenda.  Default, and
  the reference for ordering semantics: every pinned golden digest was
  recorded against it.
* :class:`CalendarScheduler` — a calendar-queue variant that buckets
  events by *exact* timestamp.  Discrete-event sensor workloads are
  dominated by same-timestamp runs (slot-aligned MAC backoffs, per-tick
  timer populations), so the common case pays one dict append on push
  and amortizes the heap to one pop per *distinct* time instead of one
  per event.  The simulator's run loop exploits the same structure to
  dispatch whole same-timestamp batches without re-consulting the heap.

Scheduler protocol
------------------
A scheduler is any object with:

``push(when, priority, event)``
    Insert ``event`` at absolute time ``when`` with ``priority``
    (:data:`~repro.sim.events.URGENT` or :data:`~repro.sim.events.NORMAL`).
    Entries at equal ``(when, priority)`` must pop in insertion order —
    the total ``(time, priority, sequence)`` ordering is the determinism
    contract every golden digest depends on.  Any sequence counter is the
    scheduler's own business.
``pop() -> (when, event)``
    Remove and return the next entry; raise :class:`IndexError` when
    empty.
``peek() -> float``
    The next entry's time, or ``float('inf')`` when empty.
``__len__() -> int``
    Number of queued entries.  May be ``O(buckets)`` and may include
    cancelled entries that have not been popped yet.

Cancellation story
------------------
:meth:`Event.cancel() <repro.sim.events.Event.cancel>` marks an event
dead *in place*; schedulers do not search their containers for it.  A
cancelled entry stays queued until its time comes up, at which point the
kernel pops it and discards it undelivered (counted in
``Simulator.events_cancelled``, never in ``events_processed``).  Two
consequences schedulers and callers must tolerate:

* ``pop`` may return cancelled events — filtering is the kernel's job,
  so scheduler implementations stay dumb ordered containers.
* ``peek`` may report a time occupied only by cancelled entries; the
  clock never *advances* to such a time (the kernel discards the entries
  without dispatching), but a ``peek``-based horizon check may be
  conservative by one dead entry.
"""

from __future__ import annotations

import typing
from collections import deque
from heapq import heappop, heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event

#: Type of the heap entries: (time, priority, sequence, event).
_QueueItem = tuple[float, int, int, "Event"]

_INFINITY = float("inf")


class Scheduler(typing.Protocol):
    """Structural type of an agenda backend (see module docstring)."""

    def push(self, when: float, priority: int, event: "Event") -> None: ...

    def pop(self) -> tuple[float, "Event"]: ...

    def peek(self) -> float: ...

    def __len__(self) -> int: ...


class HeapScheduler:
    """The historical agenda: one binary heap of ``(t, prio, seq, event)``.

    Ordering is total by construction — the per-push sequence number
    breaks every tie deterministically — which is why this backend is
    the byte-identity reference and the default.
    """

    __slots__ = ("_queue", "_sequence")

    def __init__(self) -> None:
        self._queue: list[_QueueItem] = []
        self._sequence = 0

    def push(self, when: float, priority: int, event: "Event") -> None:
        heappush(self._queue, (when, priority, self._sequence, event))
        self._sequence += 1

    def pop(self) -> tuple[float, "Event"]:
        when, _priority, _seq, event = heappop(self._queue)
        return when, event

    def peek(self) -> float:
        queue = self._queue
        return queue[0][0] if queue else _INFINITY

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HeapScheduler pending={len(self._queue)}>"


class CalendarScheduler:
    """Exact-timestamp calendar queue: dict buckets + a heap of times.

    Each distinct timestamp owns a bucket of two FIFO deques (urgent,
    normal); a binary heap orders the *distinct* times only.  Per event
    that shares its timestamp with others, push is a dict hit plus a
    deque append — no heap sift — and a one-slot memo of the last bucket
    makes the hottest pattern (a burst of pushes at one future time)
    skip even the dict lookup.

    Ordering replicates the heap exactly: earliest time first; within a
    time every urgent entry before every normal one (even urgent entries
    pushed *after* normals already queued — heap priority 0 beats
    priority 1 regardless of sequence); within a ``(time, priority)``
    class, insertion order (deque FIFO ≡ sequence order, because every
    later push gets a later sequence).

    Deques, not indexed lists, deliberately: a popped entry *leaves* the
    container, so an exception mid-batch (``StopSimulation``) cannot
    leave consumed events replayable, and the kernel's free-list can use
    a single refcount test to prove a popped timeout is unreferenced.
    """

    __slots__ = ("_buckets", "_times", "_memo_t", "_memo", "_memo_append")

    def __init__(self) -> None:
        #: time -> (urgent deque, normal deque); indexed by priority.
        self._buckets: dict[float, tuple[typing.Any, typing.Any]] = {}
        #: Min-heap of the *distinct* times present in ``_buckets``.
        self._times: list[float] = []
        # Last-pushed-bucket memo: the bucket pair, plus the normal
        # deque's bound append (the simulator's inlined timeout path is
        # all normal-priority).  Invalidated whenever the bucket dies.
        self._memo_t: float | None = None
        self._memo: tuple[typing.Any, typing.Any] | None = None
        self._memo_append: typing.Callable[["Event"], None] | None = None

    def push(self, when: float, priority: int, event: "Event") -> None:
        if when == self._memo_t:
            pair = self._memo
        else:
            pair = self._buckets.get(when)
            if pair is None:
                pair = (deque(), deque())
                self._buckets[when] = pair
                heappush(self._times, when)
            self._memo_t = when
            self._memo = pair
            self._memo_append = pair[1].append
        pair[priority].append(event)

    def pop(self) -> tuple[float, "Event"]:
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            urgent, normal = buckets[when]
            if urgent:
                return when, urgent.popleft()
            if normal:
                return when, normal.popleft()
            # Bucket drained between calls: retire it (and the memo, or a
            # later push at this time would append to an orphaned deque).
            heappop(times)
            del buckets[when]
            if self._memo_t == when:
                self._memo_t = None
                self._memo = None
                self._memo_append = None
        raise IndexError("pop from an empty agenda")

    def peek(self) -> float:
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            urgent, normal = buckets[when]
            if urgent or normal:
                return when
            heappop(times)
            del buckets[when]
            if self._memo_t == when:
                self._memo_t = None
                self._memo = None
                self._memo_append = None
        return _INFINITY

    def __len__(self) -> int:
        return sum(
            len(urgent) + len(normal)
            for urgent, normal in self._buckets.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CalendarScheduler pending={len(self)} "
            f"buckets={len(self._buckets)}>"
        )


#: Registry of named agenda backends (``Simulator(scheduler=<name>)`` and
#: ``ScenarioConfig.scheduler`` accept these keys).
SCHEDULERS: dict[str, typing.Callable[[], typing.Any]] = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}

#: The names, in declaration order — ``"heap"`` first because it is the
#: default and the byte-identity reference.
SCHEDULER_MODES = tuple(SCHEDULERS)


def build_scheduler(spec: object = "heap") -> typing.Any:
    """Resolve ``spec`` into a scheduler instance.

    ``spec`` may be a registry name (``"heap"``, ``"calendar"``), an
    object already satisfying the :class:`Scheduler` protocol (passed
    through — bring-your-own backend), or ``None`` (the default heap).
    """
    if spec is None:
        return HeapScheduler()
    if isinstance(spec, str):
        factory = SCHEDULERS.get(spec)
        if factory is None:
            raise ValueError(
                f"unknown scheduler {spec!r}; "
                f"expected one of {SCHEDULER_MODES} or a Scheduler instance"
            )
        return factory()
    missing = [
        name
        for name in ("push", "pop", "peek", "__len__")
        if not hasattr(spec, name)
    ]
    if missing:
        raise TypeError(
            f"{spec!r} does not satisfy the Scheduler protocol "
            f"(missing {', '.join(missing)})"
        )
    return spec
