"""Event primitives for the discrete-event kernel.

The design follows the classic "event with callbacks" model (the same one
SimPy uses): an :class:`Event` starts *pending*; calling :meth:`Event.succeed`
or :meth:`Event.fail` *triggers* it, which schedules it on the simulator's
agenda; when the simulator pops it, the event becomes *processed* and its
callbacks run, resuming any process that was waiting on it.

Composite conditions (:class:`AnyOf`, :class:`AllOf`) let a process wait for
the first of, or all of, several events.
"""

from __future__ import annotations

import typing

from repro.sim.errors import EventAlreadyTriggered, SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

#: Sentinel stored in ``Event._value`` while the event has not triggered.
PENDING = object()

#: Scheduling priority for events that must run before ordinary ones at the
#: same timestamp (used by the kernel when resuming interrupted processes).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class Event:
    """A one-shot occurrence at a point in simulated time.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.simulator.Simulator` that owns this event.

    Notes
    -----
    An event moves through three states: *pending* → *triggered* (it has a
    value and sits in the agenda) → *processed* (callbacks have run).  Both
    transitions are one-way; re-triggering raises
    :class:`~repro.sim.errors.EventAlreadyTriggered`.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_ok",
        "_processed",
        "_defused",
        "_cancelled",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables ``fn(event)`` invoked when the event is processed.
        self.callbacks: list[typing.Callable[["Event"], None]] | None = []
        self._value: object = PENDING
        self._ok: bool = True
        self._processed = False
        self._defused = False
        self._cancelled = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has a value and is (or was) on the agenda."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (meaningless until triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value`` and schedule it."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exception``.

        The exception is re-raised inside every process waiting on this
        event.  If nothing waits on a failed event by the time it is
        processed, the simulator raises it to the caller of ``run`` (errors
        must never pass silently); call :meth:`defuse` to opt out.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay=0.0, priority=NORMAL)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise it."""
        self._defused = True

    def cancel(self) -> bool:
        """Abandon the event: the kernel discards it instead of dispatching.

        Marks the event dead *in place* — the agenda is never searched.
        When the entry's time comes up the scheduler still pops it, but
        the kernel drops it undelivered: callbacks never run, the event
        never becomes *processed*, and it counts in
        ``Simulator.events_cancelled`` rather than ``events_processed``.
        This is how model code walks away from a wait it no longer needs
        (a MAC's ack-wait timeout after the ack arrived) without leaving
        dead events for the loop to dispatch.

        A no-op after the event has been processed (callbacks already
        ran; there is nothing left to suppress).  Returns whether the
        cancellation took effect.
        """
        if self._processed:
            return False
        self._cancelled = True
        return True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` marked this event dead before dispatch."""
        return self._cancelled

    # -- composition -----------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed"
            if self._processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` seconds in the future.

    Unlike a plain :class:`Event`, a timeout is scheduled on construction and
    cannot be triggered manually.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            # Same exception as Simulator._enqueue: a negative delay is a
            # scheduling error wherever it is caught.
            raise SimulationError(f"negative delay {delay!r}")
        # Field init is inlined (rather than chaining through
        # Event.__init__) deliberately: timeouts are the kernel's hottest
        # allocation — one per MAC wait, backoff and frame — and the
        # super() call was measurable.  Keep in sync with Event.__init__
        # and with the pooled fast path in Simulator.timeout().
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self.delay = delay
        sim._enqueue(self, delay=delay, priority=NORMAL)

    def succeed(self, value: object = None) -> "Event":
        raise EventAlreadyTriggered("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":
        raise EventAlreadyTriggered("Timeout events trigger themselves")


class Condition(Event):
    """Base class for composite events over a list of child events.

    The condition's value is an ordered ``dict`` mapping each *processed*
    child event to its value, so ``AnyOf`` results expose which child fired.
    A failing child fails the whole condition immediately.
    """

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            # An empty condition is trivially satisfied.
            self.succeed(dict())
            return
        # Validate every child BEFORE wiring any: a cross-simulator error
        # must leave zero side effects (no callbacks installed, nothing
        # triggered) or the failed constructor leaks a ghost condition
        # onto the agenda when an already-wired child later fires.
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        child_done = self._child_done
        for event in self.events:
            if event._processed:
                child_done(event)
            else:
                event.callbacks.append(child_done)

    def _evaluate(self, processed_count: int, total: int) -> bool:
        raise NotImplementedError

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(typing.cast(BaseException, event.value))
            return
        self._count += 1
        if self._evaluate(self._count, len(self.events)):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {event: event.value for event in self.events if event.processed}


class AnyOf(Condition):
    """Triggers as soon as *any* child event has been processed."""

    __slots__ = ()

    def _evaluate(self, processed_count: int, total: int) -> bool:
        return processed_count >= 1


class AllOf(Condition):
    """Triggers once *all* child events have been processed."""

    __slots__ = ()

    def _evaluate(self, processed_count: int, total: int) -> bool:
        return processed_count == total
