"""Traffic sources.

The evaluation drives each sender with constant-bit-rate traffic (0.2 or
2 kb/s of 32 B packets, Section 4.1).  Beyond CBR, the module provides a
Poisson source and an on/off burst source modelling EnviroMic-style audio
capture [Luo et al., ICDCS'07] — the paper's motivating example of an
application that fills BCP buffers quickly.

Every source is a kernel process that calls ``submit(packet)`` — typically
a routing agent's or BCP agent's ingestion method — and counts what it
generated so goodput can be computed.
"""

from __future__ import annotations

import typing

from repro.net.packets import DataPacket
from repro.units import BITS_PER_BYTE

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

SubmitFn = typing.Callable[[DataPacket], None]


class SourceStats:
    """What a source produced (the goodput denominator)."""

    def __init__(self) -> None:
        self.packets_generated = 0
        self.bits_generated = 0


class CbrSource:
    """Constant-bit-rate source: one packet every ``payload_bits / rate``.

    Parameters
    ----------
    sim / node_id / dst:
        Kernel, the generating node, the destination (the sink).
    submit:
        Ingestion callback for generated packets.
    rate_bps:
        Application data rate (payload bits per second).
    payload_bytes:
        Per-packet payload (the paper's sensor packets are 32 B).
    start_jitter_s:
        The first packet is emitted after a uniform random delay in
        ``[0, interval + start_jitter_s)`` to desynchronize senders.
    stop_s:
        Generation stops at this time (None = never).
    rng:
        Random stream for jitter.
    """

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        dst: int,
        submit: SubmitFn,
        rate_bps: float,
        payload_bytes: int = 32,
        start_jitter_s: float = 0.0,
        stop_s: float | None = None,
        rng: typing.Any = None,
    ):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        self.sim = sim
        self.node_id = node_id
        self.dst = dst
        self.submit = submit
        self.payload_bits = payload_bytes * BITS_PER_BYTE
        self.interval_s = self.payload_bits / rate_bps
        self.stop_s = stop_s
        self.stats = SourceStats()
        self._rng = rng or sim.rng.stream(f"traffic.cbr.{node_id}")
        self._jitter = start_jitter_s
        sim.process(self._run(), name=f"cbr.{node_id}")

    def _run(self) -> typing.Generator:
        yield self.sim.timeout(self._rng.uniform(0.0, self.interval_s + self._jitter))
        while self.stop_s is None or self.sim.now < self.stop_s:
            self._emit()
            yield self.sim.timeout(self.interval_s)

    def _emit(self) -> None:
        packet = DataPacket(
            src=self.node_id,
            dst=self.dst,
            payload_bits=self.payload_bits,
            created_s=self.sim.now,
        )
        self.stats.packets_generated += 1
        self.stats.bits_generated += self.payload_bits
        self.submit(packet)


class PoissonSource:
    """Poisson arrivals with the given mean rate (memoryless sensing)."""

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        dst: int,
        submit: SubmitFn,
        mean_rate_bps: float,
        payload_bytes: int = 32,
        stop_s: float | None = None,
        rng: typing.Any = None,
    ):
        if mean_rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.node_id = node_id
        self.dst = dst
        self.submit = submit
        self.payload_bits = payload_bytes * BITS_PER_BYTE
        self.mean_interval_s = self.payload_bits / mean_rate_bps
        self.stop_s = stop_s
        self.stats = SourceStats()
        self._rng = rng or sim.rng.stream(f"traffic.poisson.{node_id}")
        sim.process(self._run(), name=f"poisson.{node_id}")

    def _run(self) -> typing.Generator:
        while self.stop_s is None or self.sim.now < self.stop_s:
            yield self.sim.timeout(self._rng.expovariate(1.0 / self.mean_interval_s))
            if self.stop_s is not None and self.sim.now >= self.stop_s:
                return
            packet = DataPacket(
                src=self.node_id,
                dst=self.dst,
                payload_bits=self.payload_bits,
                created_s=self.sim.now,
            )
            self.stats.packets_generated += 1
            self.stats.bits_generated += self.payload_bits
            self.submit(packet)


class AudioBurstSource:
    """EnviroMic-style on/off source: silence, then a dense audio clip.

    During an "on" period (an acoustic event) the source emits packets
    back-to-back at ``burst_rate_bps``; "off" periods are exponentially
    distributed silence.  This models the paper's observation that audio
    applications "accumulate data much faster, making performance almost
    real-time despite data buffering."
    """

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        dst: int,
        submit: SubmitFn,
        burst_rate_bps: float = 64_000.0,
        burst_duration_s: float = 2.0,
        mean_silence_s: float = 60.0,
        payload_bytes: int = 32,
        stop_s: float | None = None,
        rng: typing.Any = None,
    ):
        if burst_rate_bps <= 0 or burst_duration_s <= 0 or mean_silence_s <= 0:
            raise ValueError("burst parameters must be positive")
        self.sim = sim
        self.node_id = node_id
        self.dst = dst
        self.submit = submit
        self.burst_rate_bps = burst_rate_bps
        self.burst_duration_s = burst_duration_s
        self.mean_silence_s = mean_silence_s
        self.payload_bits = payload_bytes * BITS_PER_BYTE
        self.stop_s = stop_s
        self.stats = SourceStats()
        self._rng = rng or sim.rng.stream(f"traffic.audio.{node_id}")
        sim.process(self._run(), name=f"audio.{node_id}")

    def _run(self) -> typing.Generator:
        interval = self.payload_bits / self.burst_rate_bps
        while self.stop_s is None or self.sim.now < self.stop_s:
            yield self.sim.timeout(
                self._rng.expovariate(1.0 / self.mean_silence_s)
            )
            burst_end = self.sim.now + self.burst_duration_s
            while self.sim.now < burst_end:
                if self.stop_s is not None and self.sim.now >= self.stop_s:
                    return
                packet = DataPacket(
                    src=self.node_id,
                    dst=self.dst,
                    payload_bits=self.payload_bits,
                    created_s=self.sim.now,
                )
                self.stats.packets_generated += 1
                self.stats.bits_generated += self.payload_bits
                self.submit(packet)
                yield self.sim.timeout(interval)
