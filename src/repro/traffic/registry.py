"""The traffic-source registry: per-sender workload selection by name.

Scenario configs refer to traffic models by registry name — uniformly via
``ScenarioConfig.traffic`` or per sender via ``ScenarioConfig.traffic_mix``
— and the scenario builder resolves the name here.  Each factory receives
the full config so it can apply the scenario's rate/payload/stop
parameters the way the historical hard-wired construction did.

Registered sources:

``cbr``
    Constant bit rate at ``rate_bps`` (the paper's Section 4.1 workload).
``poisson``
    Poisson arrivals with mean ``rate_bps``.
``audio`` (alias ``onoff``)
    EnviroMic-style on/off bursts: silence, then a dense audio clip.
"""

from __future__ import annotations

import typing

from repro.registry import Registry
from repro.traffic.generators import (
    AudioBurstSource,
    CbrSource,
    PoissonSource,
    SubmitFn,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.models.scenario import ScenarioConfig
    from repro.sim.simulator import Simulator

#: ``(sim, node_id, submit, config) -> source``
SourceFactory = typing.Callable[
    ["Simulator", int, SubmitFn, "ScenarioConfig"], typing.Any
]

TRAFFIC: Registry[SourceFactory] = Registry("traffic source")


def _cbr(
    sim: "Simulator", node_id: int, submit: SubmitFn, config: "ScenarioConfig"
) -> CbrSource:
    return CbrSource(
        sim,
        node_id,
        config.sink,
        submit,
        rate_bps=config.rate_bps,
        payload_bytes=config.payload_bytes,
        stop_s=config.sim_time_s,
    )


def _poisson(
    sim: "Simulator", node_id: int, submit: SubmitFn, config: "ScenarioConfig"
) -> PoissonSource:
    return PoissonSource(
        sim,
        node_id,
        config.sink,
        submit,
        mean_rate_bps=config.rate_bps,
        payload_bytes=config.payload_bytes,
        stop_s=config.sim_time_s,
    )


def _audio(
    sim: "Simulator", node_id: int, submit: SubmitFn, config: "ScenarioConfig"
) -> AudioBurstSource:
    return AudioBurstSource(
        sim,
        node_id,
        config.sink,
        submit,
        payload_bytes=config.payload_bytes,
        stop_s=config.sim_time_s,
    )


TRAFFIC.register(
    "cbr",
    _cbr,
    summary="constant bit rate at the scenario's rate_bps (paper default)",
    params=("rate_bps", "payload_bytes"),
)
TRAFFIC.register(
    "poisson",
    _poisson,
    summary="Poisson arrivals with mean rate_bps (memoryless sensing)",
    params=("rate_bps", "payload_bytes"),
)
TRAFFIC.register(
    "audio",
    _audio,
    summary="EnviroMic-style on/off audio bursts (64 kb/s clips)",
    params=("payload_bytes",),
)
TRAFFIC.register(
    "onoff",
    _audio,
    summary="alias for 'audio' (generic on/off burst source)",
    params=("payload_bytes",),
)


def build_source(
    name: str,
    sim: "Simulator",
    node_id: int,
    submit: SubmitFn,
    config: "ScenarioConfig",
) -> typing.Any:
    """Attach the named traffic source to ``node_id`` and return it."""
    return TRAFFIC.get(name)(sim, node_id, submit, config)
