"""Workload generators for the evaluation scenarios."""

from repro.traffic.generators import (
    AudioBurstSource,
    CbrSource,
    PoissonSource,
    SourceStats,
)
from repro.traffic.registry import TRAFFIC, build_source

__all__ = [
    "AudioBurstSource",
    "CbrSource",
    "PoissonSource",
    "SourceStats",
    "TRAFFIC",
    "build_source",
]
