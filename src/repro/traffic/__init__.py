"""Workload generators for the evaluation scenarios."""

from repro.traffic.generators import (
    AudioBurstSource,
    CbrSource,
    PoissonSource,
    SourceStats,
)

__all__ = ["AudioBurstSource", "CbrSource", "PoissonSource", "SourceStats"]
