"""Command-line interface: regenerate any table or figure of the paper.

Examples
--------
::

    repro list                     # what can be regenerated
    repro table1                   # Table 1
    repro fig4                     # analysis figure (exact, instant)
    repro fig5                     # simulation figure (bench scale)
    repro fig5 --paper --jobs 0    # full Section 4.1 scale, all cores
    repro fig6 --senders 5 20 35 --runs 3 --sim-time 300
    repro fig5 --jobs 4            # fan cells over 4 worker processes
    repro fig5 --no-cache          # force recomputation of every cell
    repro fig11 --step 64          # prototype sweep at finer threshold step

Simulation figures (fig5–fig10) execute through the sweep runner: cells
fan out over ``--jobs`` worker processes (default ``$REPRO_JOBS``, then
serial) and completed cells persist in an on-disk cache (``--cache-dir``,
default ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), so regenerating a
figure, or a figure pair sharing a sweep, skips already-computed cells.
Progress (cells completed, cache hits, ETA) streams to stderr; the
artifact itself goes to stdout or ``--output``.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.models.sweeps import SweepScale
from repro.report import figures
from repro.runner import ProgressPrinter, ResultCache, SweepRunner
from repro.testbed.experiment import default_threshold_sweep

#: Figures that accept a SweepScale.
_SIM_FIGURES = {"fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
#: Figures driven by the prototype testbed.
_PROTO_FIGURES = {"fig11", "fig12"}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures of 'Improving Energy Conservation "
            "Using Bulk Transmission over High-Power Radios in Sensor "
            "Networks' (ICDCS 2008)."
        ),
    )
    parser.add_argument(
        "artifact",
        help="artifact id: table1, fig1..fig12, or 'list'",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run simulation figures at full paper scale (5000 s, 20 runs)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="replicated runs per cell"
    )
    parser.add_argument(
        "--sim-time", type=float, default=None, help="simulated seconds per run"
    )
    parser.add_argument(
        "--senders",
        type=int,
        nargs="+",
        default=None,
        help="sender counts to sweep",
    )
    parser.add_argument(
        "--bursts",
        type=int,
        nargs="+",
        default=None,
        help="burst sizes (packets) to sweep",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="base random seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for sweep cells (0 = all cores; default "
            "$REPRO_JOBS, else serial)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=(
            "result cache directory (default $REPRO_CACHE_DIR, else "
            "~/.cache/repro)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--step",
        type=int,
        default=128,
        help="prototype threshold step in bytes (fig11/fig12)",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the artifact to a file instead of stdout",
    )
    return parser


def _scale_from_args(args: argparse.Namespace) -> SweepScale:
    artifact = args.artifact.lower()
    if args.paper:
        scale = SweepScale.paper()
    elif artifact in ("fig7", "fig10"):
        # Energy-delay figures run at 0.2 kb/s: buffers need much longer
        # to cycle, and only the (cheap) dual model is swept.
        scale = SweepScale(bursts=(10, 100, 500), n_runs=1, sim_time_s=1500.0)
    else:
        scale = SweepScale()
    changes: dict[str, typing.Any] = {"seed": args.seed}
    if args.runs is not None:
        changes["n_runs"] = args.runs
    if args.sim_time is not None:
        changes["sim_time_s"] = args.sim_time
    if args.senders is not None:
        changes["senders"] = tuple(args.senders)
    if args.bursts is not None:
        changes["bursts"] = tuple(args.bursts)
    import dataclasses

    return dataclasses.replace(scale, **changes)


def _runner_from_args(
    args: argparse.Namespace, with_cache: bool = True
) -> SweepRunner:
    """Build the sweep runner the CLI flags describe.

    Flag/environment mistakes (bad ``$REPRO_JOBS``, a cache dir that is a
    file) exit cleanly here; ValueErrors raised later, during the sweep
    itself, are internal failures and keep their tracebacks.
    """
    try:
        cache = None
        if with_cache and not args.no_cache:
            cache = ResultCache(args.cache_dir)
        return SweepRunner(
            jobs=args.jobs, cache=cache, progress=ProgressPrinter(sys.stderr)
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")


def render_artifact(args: argparse.Namespace) -> str:
    """Produce the requested artifact's text."""
    artifact = args.artifact.lower()
    if artifact == "list":
        lines = ["available artifacts:"]
        for name, fn in figures.REGISTRY.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            lines.append(f"  {name:8s} {doc}")
        return "\n".join(lines)
    if artifact not in figures.REGISTRY:
        raise SystemExit(
            f"unknown artifact {artifact!r}; try 'repro list'"
        )
    if artifact in _SIM_FIGURES:
        scale = _scale_from_args(args)
        fn = getattr(figures, artifact)
        return fn(scale=scale, runner=_runner_from_args(args))
    if artifact in _PROTO_FIGURES:
        thresholds = default_threshold_sweep(step_bytes=args.step)
        fn = getattr(figures, artifact)
        # Prototype measurements are not cached (the cache stores
        # simulation RunResults); the runner still parallelizes points.
        if args.cache_dir is not None:
            print(
                f"repro: note: --cache-dir is ignored for {artifact} "
                "(prototype sweeps are not cached)",
                file=sys.stderr,
            )
        return fn(
            thresholds=thresholds,
            runner=_runner_from_args(args, with_cache=False),
        )
    return figures.REGISTRY[artifact]()


def main(argv: typing.Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    text = render_artifact(args)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.artifact} to {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
