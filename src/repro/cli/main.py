"""Command-line interface: regenerate any table or figure of the paper.

Examples
--------
::

    repro list                     # what can be regenerated
    repro table1                   # Table 1
    repro fig4                     # analysis figure (exact, instant)
    repro fig5                     # simulation figure (bench scale)
    repro fig5 --paper --jobs 0    # full Section 4.1 scale, all cores
    repro fig6 --senders 5 20 35 --runs 3 --sim-time 300
    repro fig5 --jobs 4            # fan cells over 4 worker processes
    repro fig5 --no-cache          # force recomputation of every cell
    repro fig11 --step 64          # prototype sweep at finer threshold step

    # multi-machine: each host computes its deterministic slice...
    repro fig5 --paper --shard 0/2 --cache-dir /tmp/s0   # host 0
    repro fig5 --paper --shard 1/2 --cache-dir /tmp/s1   # host 1
    # ...then one host assembles and renders:
    repro merge-shards merged/ /tmp/s0 /tmp/s1
    repro fig5 --paper --cache-dir merged/

    repro cache stats                      # what is in the cache
    repro cache gc --max-bytes 500M        # LRU-trim to a size budget
    repro cache gc --max-age 30d           # drop entries older than 30 days

    repro scenarios list                   # registered composition axes

    repro bench                            # smoke perf suite + regression gate
    repro bench --suite full --threshold 0.1
    repro bench --list                     # what each suite measures

    # scenarios beyond the paper's grid: compose topology x propagation x
    # radios x traffic; cells hash into the same cache/shard machinery.
    repro run --topology uniform-random:n=24,width_m=160,height_m=160,connect_range_m=60 \
              --propagation log-normal:sigma_db=4 --senders 8 --runs 3
    repro run --topology line:n=8 --traffic poisson --sim-time 120
    repro run --high-radio-map 0=Cabletron --traffic-mix 3=audio,5=poisson

Simulation figures (fig5–fig10) and prototype figures (fig11–fig12)
execute through the sweep runner: cells fan out over ``--jobs`` worker
processes (default ``$REPRO_JOBS``, then serial; ``$REPRO_BACKEND``
overrides the strategy) and completed cells persist in an on-disk cache
(``--cache-dir``, default ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), so
regenerating a figure, or a figure pair sharing a sweep, skips
already-computed cells.  ``--shard K/N`` executes only this machine's
deterministic slice and writes a shard manifest instead of rendering.
Progress (cells completed, cache hits, ETA) streams to stderr; the
artifact itself goes to stdout or ``--output``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import typing

from repro.channel.propagation import PROPAGATION, PropagationSpec
from repro.energy.radio_specs import TABLE_1, get_spec
from repro.faults import FaultPlan
from repro.mac.base import MAC_ENGINES
from repro.models.scenario import (
    RadioAssignment,
    ScenarioConfig,
    run_replicated,
    run_scenario,
)
from repro.net.policy import ROUTING_POLICIES, ROUTING_POLICY_NAMES
from repro.sim.scheduler import SCHEDULER_MODES
from repro.models.sweeps import SweepScale, sweep_plan
from repro.report import figures
from repro.report.scenario import render_run_report
from repro.topology.registry import TOPOLOGIES, TopologySpec, topology_node_count
from repro.traffic.registry import TRAFFIC
from repro.runner import (
    CacheLockedError,
    MergeError,
    ProgressPrinter,
    ResultCache,
    ShardBackend,
    ShardSpec,
    SweepRunner,
    config_key,
    default_backend,
    merge_shards,
    resolve_jobs,
    write_shard_manifest,
)
from repro.testbed.experiment import (
    PrototypeConfig,
    default_threshold_sweep,
    run_prototype,
)

#: Figures that accept a SweepScale.
_SIM_FIGURES = {"fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
#: Figures driven by the prototype testbed.
_PROTO_FIGURES = {"fig11", "fig12"}


def parse_size(text: str) -> int:
    """Parse a byte size: plain bytes or K/M/G suffixed (``500M``)."""
    raw = text.strip().upper()
    factors = {"K": 1024, "M": 1024**2, "G": 1024**3}
    factor = 1
    if raw and raw[-1] in factors:
        factor = factors[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad size {text!r}; expected e.g. 1048576, 512K, 500M, 2G"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("size must be non-negative")
    return value * factor


def parse_duration(text: str) -> float:
    """Parse a duration: plain seconds or s/m/h/d suffixed (``30d``)."""
    raw = text.strip().lower()
    factors = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    factor = 1.0
    if raw and raw[-1] in factors:
        factor = factors[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad duration {text!r}; expected e.g. 3600, 90s, 30m, 12h, 7d"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("duration must be non-negative")
    return value * factor


def build_parser() -> argparse.ArgumentParser:
    """The artifact-mode argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures of 'Improving Energy Conservation "
            "Using Bulk Transmission over High-Power Radios in Sensor "
            "Networks' (ICDCS 2008).  Also: repro merge-shards --help, "
            "repro cache --help."
        ),
    )
    parser.add_argument(
        "artifact",
        help="artifact id: table1, fig1..fig12, or 'list'",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run simulation figures at full paper scale (5000 s, 20 runs)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="replicated runs per cell"
    )
    parser.add_argument(
        "--sim-time", type=float, default=None, help="simulated seconds per run"
    )
    parser.add_argument(
        "--senders",
        type=int,
        nargs="+",
        default=None,
        help="sender counts to sweep",
    )
    parser.add_argument(
        "--bursts",
        type=int,
        nargs="+",
        default=None,
        help="burst sizes (packets) to sweep",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="base random seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for sweep cells (0 = all cores; default "
            "$REPRO_JOBS, else serial)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=(
            "result cache directory (default $REPRO_CACHE_DIR, else "
            "~/.cache/repro)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--shard",
        type=str,
        default=None,
        metavar="K/N",
        help=(
            "execute only shard K of N of the figure's sweep (by config "
            "hash), populate the cache and write a shard manifest instead "
            "of rendering; assemble with 'repro merge-shards'"
        ),
    )
    parser.add_argument(
        "--step",
        type=int,
        default=128,
        help="prototype threshold step in bytes (fig11/fig12)",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the artifact to a file instead of stdout",
    )
    return parser


def _scale_from_args(args: argparse.Namespace) -> SweepScale:
    artifact = args.artifact.lower()
    if args.paper:
        scale = SweepScale.paper()
    elif artifact in ("fig7", "fig10"):
        # Energy-delay figures run at 0.2 kb/s: buffers need much longer
        # to cycle, and only the (cheap) dual model is swept.
        scale = SweepScale(bursts=(10, 100, 500), n_runs=1, sim_time_s=1500.0)
    else:
        scale = SweepScale()
    changes: dict[str, typing.Any] = {"seed": args.seed}
    if args.runs is not None:
        changes["n_runs"] = args.runs
    if args.sim_time is not None:
        changes["sim_time_s"] = args.sim_time
    if args.senders is not None:
        changes["senders"] = tuple(args.senders)
    if args.bursts is not None:
        changes["bursts"] = tuple(args.bursts)
    return dataclasses.replace(scale, **changes)


def _runner_from_args(
    args: argparse.Namespace, with_cache: bool = True
) -> SweepRunner:
    """Build the sweep runner the CLI flags describe.

    Flag/environment mistakes (bad ``$REPRO_JOBS``/``$REPRO_BACKEND``, a
    cache dir that is a file) exit cleanly here; ValueErrors raised
    later, during the sweep itself, are internal failures and keep their
    tracebacks.
    """
    try:
        cache = None
        if with_cache and not args.no_cache:
            cache = ResultCache(args.cache_dir)
        return SweepRunner(
            jobs=args.jobs, cache=cache, progress=ProgressPrinter(sys.stderr)
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")


def _shard_configs(
    artifact: str, args: argparse.Namespace
) -> tuple[list[typing.Any], typing.Callable, typing.Callable]:
    """The (configs, cell function, describe) a sharded artifact sweeps.

    Laid out from the same declarative specs the figures render from
    (:data:`repro.report.figures.SIM_SWEEPS`), so a shard run computes
    exactly the cells a normal run of the figure would.
    """
    if artifact in _SIM_FIGURES:
        spec = figures.SIM_SWEEPS[artifact]
        plan = sweep_plan(
            spec.case,
            _scale_from_args(args),
            rate_bps=spec.rate_bps,
            include_wifi=spec.include_wifi,
            include_sensor=spec.include_sensor,
        )
        return (
            [planned.config for planned in plan],
            run_scenario,
            lambda index, _config: plan[index].describe(spec.case),
        )
    thresholds = default_threshold_sweep(step_bytes=args.step)
    base = PrototypeConfig()
    configs = [
        dataclasses.replace(base, threshold_bytes=float(threshold))
        for threshold in thresholds
    ]
    return (
        configs,
        run_prototype,
        lambda _i, c: f"prototype threshold={c.threshold_bytes:g}B",
    )


def _render_shard(artifact: str, args: argparse.Namespace) -> str:
    """Execute one shard of an artifact's sweep; returns the summary text."""
    try:
        spec = ShardSpec.parse(args.shard)
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")
    if artifact not in _SIM_FIGURES | _PROTO_FIGURES:
        raise SystemExit(
            f"repro: error: --shard only applies to sweep figures "
            f"(fig5..fig12), not {artifact}"
        )
    if args.no_cache:
        raise SystemExit(
            "repro: error: --shard requires the result cache (its output "
            "IS the cache); drop --no-cache"
        )
    try:
        cache = ResultCache(args.cache_dir)
        backend = ShardBackend(spec, default_backend(resolve_jobs(args.jobs)))
        runner = SweepRunner(
            jobs=args.jobs,
            cache=cache,
            progress=ProgressPrinter(sys.stderr),
            backend=backend,
        )
    except ValueError as error:
        raise SystemExit(f"repro: error: {error}")
    configs, fn, describe = _shard_configs(artifact, args)
    runner.map(fn, configs, describe=describe)
    owned_keys = [
        key for key in (config_key(c) for c in configs) if spec.owns(key)
    ]
    manifest = write_shard_manifest(
        cache.directory, spec, owned_keys, artifact=artifact
    )
    return (
        f"{artifact} shard {spec}: {len(owned_keys)}/{len(configs)} cells "
        f"owned ({cache.stats.stores} computed, {cache.stats.hits} served "
        f"from cache)\n"
        f"manifest: {manifest}\n"
        f"assemble with: repro merge-shards <dest> {cache.directory} "
        f"<other shard dirs...>"
    )


def render_artifact(args: argparse.Namespace) -> str:
    """Produce the requested artifact's text."""
    artifact = args.artifact.lower()
    if artifact == "list":
        lines = ["available artifacts:"]
        for name, fn in figures.REGISTRY.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            lines.append(f"  {name:8s} {doc}")
        return "\n".join(lines)
    if artifact not in figures.REGISTRY:
        raise SystemExit(
            f"unknown artifact {artifact!r}; try 'repro list'"
        )
    if args.shard is not None:
        return _render_shard(artifact, args)
    if artifact in _SIM_FIGURES:
        scale = _scale_from_args(args)
        fn = getattr(figures, artifact)
        return fn(scale=scale, runner=_runner_from_args(args))
    if artifact in _PROTO_FIGURES:
        thresholds = default_threshold_sweep(step_bytes=args.step)
        fn = getattr(figures, artifact)
        return fn(thresholds=thresholds, runner=_runner_from_args(args))
    return figures.REGISTRY[artifact]()


# ---------------------------------------------------------------------------
# merge-shards and cache subcommands.
# ---------------------------------------------------------------------------


def _merge_shards_main(argv: typing.Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro merge-shards",
        description=(
            "Assemble the cache directories of N shard runs into one "
            "result set; refuses on any cache schema or package version "
            "mismatch."
        ),
    )
    parser.add_argument("dest", help="destination cache directory")
    parser.add_argument(
        "sources", nargs="+", help="shard cache directories to merge"
    )
    args = parser.parse_args(list(argv))
    try:
        report = merge_shards(args.dest, args.sources)
    except MergeError as error:
        print(f"repro: merge-shards: {error}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0


def _cache_main(argv: typing.Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or garbage-collect the on-disk result cache.",
    )
    # --cache-dir lives on a shared parent so the natural flag order
    # ('repro cache gc --cache-dir X') parses; top-level options after a
    # subcommand would be 'unrecognized arguments' to argparse.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=(
            "cache directory (default $REPRO_CACHE_DIR, else ~/.cache/repro)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "stats", parents=[common], help="inventory the cache directory"
    )
    gc = sub.add_parser(
        "gc",
        parents=[common],
        help=(
            "evict corrupted entries, then by age, then LRU down to a "
            "size budget (takes the cache-dir lockfile; in-flight cells "
            "of a concurrent sweep are skipped)"
        ),
    )
    gc.add_argument(
        "--max-bytes",
        type=parse_size,
        default=None,
        help="LRU-evict oldest entries until the cache fits (e.g. 500M)",
    )
    gc.add_argument(
        "--max-age",
        type=parse_duration,
        default=None,
        help="evict entries not touched for this long (e.g. 30d, 12h)",
    )
    args = parser.parse_args(list(argv))
    try:
        cache = ResultCache(args.cache_dir)
    except ValueError as error:
        print(f"repro: cache: {error}", file=sys.stderr)
        return 1
    if args.command == "stats":
        print(cache.disk_stats().summary())
        return 0
    try:
        report = cache.gc(max_bytes=args.max_bytes, max_age_s=args.max_age)
    except CacheLockedError as error:
        print(f"repro: cache gc: {error}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0


# ---------------------------------------------------------------------------
# bench subcommand (the perf-regression gate).
# ---------------------------------------------------------------------------


def _bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Run the declared perf suite, write BENCH_<rev>.json, and "
            "gate on regressions vs a baseline report plus the "
            "machine-independent speedup ratios (lazy routing must stay "
            ">=10x the eager baseline at 1k nodes) and absolute "
            "acceptance budgets (a 10k-node composed scenario must "
            "build in under 5 s; full suite)."
        ),
    )
    parser.add_argument(
        "--suite",
        choices=("smoke", "full"),
        default="smoke",
        help="which case set to run (smoke is the CI gate; default)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the suite's cases and exit"
    )
    parser.add_argument(
        "--output-dir",
        type=str,
        default=".",
        help="where BENCH_<rev>.json is written and baselines are found",
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default="auto",
        metavar="PATH|auto|none",
        help=(
            "report to compare against: a path, 'auto' (newest "
            "BENCH_*.json of another rev in --output-dir; default), or "
            "'none' to skip the comparison"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="tolerated fractional slowdown per case (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-wall",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help=(
            "skip the wall-time comparison for cases whose baseline is "
            "shorter than this (sub-100 ms deltas are scheduler noise on "
            "shared runners; ratio gates still cover them; default 0.1)"
        ),
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override every case's repeat count",
    )
    parser.add_argument(
        "--compare-across-hosts",
        action="store_true",
        help=(
            "gate wall times even when the baseline was recorded on a "
            "different host class (by default only the machine-independent "
            "ratio gates apply across hosts)"
        ),
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and compare without writing BENCH_<rev>.json",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="bench-profiles",
        default=None,
        metavar="DIR",
        help=(
            "after timing each case, run one extra cProfile round and "
            "dump DIR/<case>.pstats (default DIR: bench-profiles).  The "
            "profiled round is untimed, so recorded walls are unaffected"
        ),
    )
    return parser


def _bench_main(argv: typing.Sequence[str]) -> int:
    from repro.perf import bench as perf_bench
    from repro.perf.suite import bench_cases, wall_budgets

    args = _bench_parser().parse_args(list(argv))
    if args.list:
        for case in bench_cases(args.suite):
            print(f"{case.name:26s} {case.summary} (x{case.repeats})")
        return 0
    if args.threshold < 0:
        raise SystemExit("repro: error: --threshold must be non-negative")

    report = perf_bench.run_suite(
        args.suite,
        repeats=args.repeats,
        log=lambda line: print(line, file=sys.stderr),
        profile_dir=args.profile,
    )
    if args.profile is not None:
        print(f"profiles: {args.profile}/<case>.pstats")
    for name, result in report.results.items():
        ops = " ".join(
            f"{key}={value:g}" for key, value in sorted(result.ops.items())
        )
        print(f"{name:26s} {result.wall_s:9.4f}s  {ops}")
    budget_names = {budget.name for budget in wall_budgets(report.results)}
    for name, value in report.checks.items():
        # Ratio gates read as speedups ("43.1x"); wall budgets read as
        # the measured seconds against their absolute budget.
        if name in budget_names:
            print(f"{name:26s} {value:9.2f}s")
        else:
            print(f"{name:26s} {value:9.1f}x")

    failures = perf_bench.failed_gates(report)
    if args.baseline != "none":
        if args.baseline == "auto":
            baseline_path = perf_bench.find_baseline(
                args.output_dir, exclude_rev=report.rev
            )
        else:
            baseline_path = args.baseline
        if baseline_path is None:
            print("no baseline BENCH_*.json found; comparison skipped")
        else:
            try:
                baseline = perf_bench.load_report(baseline_path)
            except (OSError, ValueError, KeyError, TypeError, AttributeError) as error:
                raise SystemExit(f"repro: bench: bad baseline: {error}")
            if not args.compare_across_hosts and not perf_bench.walls_comparable(
                report, baseline
            ):
                # A laptop-recorded baseline must not wall-gate a CI
                # runner (and vice versa): absolute times only compare
                # within one host class.  The ratio gates still apply;
                # committing this run's BENCH json starts a trajectory
                # this host can be gated against.
                print(
                    f"baseline: {baseline_path} (rev {baseline.rev}) was "
                    f"recorded on {baseline.host or 'an untagged host'}; "
                    f"this run is {report.host}.  Wall-time comparison "
                    "skipped (ratio gates still checked); pass "
                    "--compare-across-hosts to force it."
                )
            else:
                regressions = perf_bench.compare_reports(
                    report,
                    baseline,
                    threshold=args.threshold,
                    min_wall_s=args.min_wall,
                )
                print(
                    f"baseline: {baseline_path} (rev {baseline.rev}, "
                    f"{len(regressions)} regression(s) at "
                    f">{args.threshold * 100:.0f}% slowdown)"
                )
                failures.extend(
                    f"regression {reg.describe()}" for reg in regressions
                )

    if not args.no_write:
        path = perf_bench.write_report(report, args.output_dir)
        print(f"wrote {path}")
    if failures:
        for failure in failures:
            print(f"repro: bench: FAIL {failure}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# scenarios and run subcommands (the composition surface).
# ---------------------------------------------------------------------------


def _scenarios_main(argv: typing.Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description=(
            "Inspect the registered scenario-composition axes (topologies, "
            "propagation models, traffic sources, radios, schedulers, MAC "
            "engines, routing policies)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="print every registered implementation")
    parser.parse_args(list(argv))

    def section(title: str, rows: list[tuple[str, str, str]]) -> list[str]:
        lines = [title, "-" * len(title)]
        width = max(len(name) for name, _p, _s in rows)
        for name, params, summary in rows:
            lines.append(f"  {name:<{width}s}  {summary}")
            if params:
                lines.append(f"  {'':<{width}s}  params: {params}")
        lines.append("")
        return lines

    out: list[str] = []
    out += section(
        "topologies (--topology kind:key=value,...)",
        [
            (entry.name, ", ".join(entry.params), entry.summary)
            for entry in TOPOLOGIES.entries()
        ],
    )
    out += section(
        "propagation models (--propagation kind:key=value,...)",
        [
            (entry.name, ", ".join(entry.params), entry.summary)
            for entry in PROPAGATION.entries()
        ],
    )
    out += section(
        "traffic sources (--traffic name, --traffic-mix node=name,...)",
        [
            (entry.name, ", ".join(entry.params), entry.summary)
            for entry in TRAFFIC.entries()
        ],
    )
    out += section(
        "radios (--low-radio / --high-radio / --high-radio-map, Table 1 names)",
        [
            (
                name,
                "",
                f"{spec.kind}-power, {spec.rate_bps / 1e6:g} Mb/s, "
                f"range {spec.range_m:g} m",
            )
            for name, spec in TABLE_1.items()
        ],
    )
    # Summaries for the plain-tuple axes (no registry to carry them);
    # keyed by name so registering a new backend without describing it
    # here fails the listing loudly instead of printing a blank line.
    scheduler_summaries = {
        "heap": "binary-heap agenda; the historical byte-identity default",
        "calendar": (
            "calendar-queue agenda batching same-timestamp timers; "
            "byte-identical results"
        ),
    }
    out += section(
        "schedulers (--scheduler name)",
        [
            (name, "", scheduler_summaries[name])
            for name in SCHEDULER_MODES
        ],
    )
    mac_engine_summaries = {
        "flat": (
            "callback state machine with pooled timers (default); "
            "byte-identical results"
        ),
        "generator": (
            "historical one-worker-process-per-MAC engine (byte-identity "
            "reference)"
        ),
    }
    out += section(
        "MAC engines (--mac-engine name)",
        [
            (name, "", mac_engine_summaries[name])
            for name in MAC_ENGINES
        ],
    )
    out += section(
        "routing policies (--routing-policy name)",
        [
            (entry.name, ", ".join(entry.params), entry.summary)
            for entry in ROUTING_POLICIES.entries()
        ],
    )
    print("\n".join(out).rstrip())
    return 0


def _parse_pairs(text: str, what: str) -> tuple[tuple[int, str], ...]:
    """Parse ``node=name,node=name`` CLI lists."""
    pairs = []
    for chunk in text.split(","):
        node, sep, name = chunk.partition("=")
        if not sep:
            raise SystemExit(
                f"repro: error: bad {what} entry {chunk!r}; expected node=name"
            )
        try:
            pairs.append((int(node), name.strip()))
        except ValueError:
            raise SystemExit(
                f"repro: error: bad node id in {what} entry {chunk!r}"
            )
    return tuple(sorted(pairs))


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro run",
        description=(
            "Run one composed scenario cell (replicated over seeds) and "
            "print its metrics.  Axes come from the registries shown by "
            "'repro scenarios list'; cells cache exactly like figure "
            "sweeps."
        ),
    )
    parser.add_argument(
        "--topology",
        type=str,
        default=None,
        metavar="KIND[:K=V,...]",
        help="deployment shape (default: the paper's 6x6 grid)",
    )
    parser.add_argument(
        "--topology-file",
        type=str,
        default=None,
        metavar="PATH",
        help="JSON positions file (inlined into the config as from-file)",
    )
    parser.add_argument(
        "--propagation",
        type=str,
        default=None,
        metavar="KIND[:K=V,...]",
        help="channel propagation model (default: unit-disc)",
    )
    parser.add_argument(
        "--traffic", type=str, default="cbr", help="uniform traffic source"
    )
    parser.add_argument(
        "--routing",
        choices=("auto", "eager", "lazy"),
        default="auto",
        help=(
            "route-build engine: auto (default) switches from the eager "
            "all-pairs table to the lazy array-backed engine beyond 256 "
            "nodes; eager/lazy force one"
        ),
    )
    parser.add_argument(
        "--routing-policy",
        choices=ROUTING_POLICY_NAMES,
        default="hops",
        help=(
            "route metric: hops (default, min-hop BFS), tx-energy "
            "(distance-dependent transmit energy), or residual-energy "
            "(tx energy scaled by live battery residual); see 'repro "
            "scenarios list'"
        ),
    )
    parser.add_argument(
        "--mac-engine",
        choices=("flat", "generator"),
        default="flat",
        help=(
            "MAC send-path engine: flat (default, callback state machine "
            "with pooled timers) or generator (historical worker-process "
            "engine); results are byte-identical"
        ),
    )
    parser.add_argument(
        "--scheduler",
        choices=("heap", "calendar"),
        default="heap",
        help=(
            "simulator agenda backend: heap (default) or calendar, which "
            "batches same-timestamp timers; results are byte-identical"
        ),
    )
    parser.add_argument(
        "--traffic-mix",
        type=str,
        default=None,
        metavar="NODE=NAME,...",
        help="per-sender traffic overrides",
    )
    parser.add_argument(
        "--model",
        choices=("dual", "sensor", "wifi"),
        default="dual",
        help="evaluation model (default dual)",
    )
    parser.add_argument(
        "--low-radio", type=str, default=None, help="sensor radio (Table 1 name)"
    )
    parser.add_argument(
        "--high-radio",
        type=str,
        default=None,
        help="high-power radio every node carries (Table 1 name)",
    )
    parser.add_argument(
        "--high-radio-map",
        type=str,
        default=None,
        metavar="NODE=NAME,...",
        help="per-node high-power radio overrides (mixed fleets)",
    )
    parser.add_argument("--sink", type=int, default=None, help="sink node id")
    parser.add_argument(
        "--senders", type=int, default=None, help="number of sending nodes"
    )
    parser.add_argument(
        "--rate", type=float, default=2000.0, help="per-sender rate (b/s)"
    )
    parser.add_argument(
        "--burst", type=int, default=500, help="BCP burst size (packets)"
    )
    parser.add_argument(
        "--loss", type=float, default=0.0, help="Bernoulli frame loss probability"
    )
    parser.add_argument(
        "--multihop",
        action="store_true",
        help="give the high radio the multi-hop range advantage",
    )
    parser.add_argument(
        "--runs", type=int, default=1, help="replicated runs (seeds)"
    )
    parser.add_argument(
        "--sim-time", type=float, default=150.0, help="simulated seconds per run"
    )
    parser.add_argument(
        "--faults",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "JSON fault schedule (FaultPlan keys: crashes, recoveries, "
            "links_down, links_up, crash_rate_per_node_s, mean_downtime_s, "
            "battery_capacity_j, battery_overrides, battery_poll_s, "
            "protect_sink); the run reports faults.* lifetime counters"
        ),
    )
    parser.add_argument("--seed", type=int, default=1, help="base random seed")
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (0 = all cores)"
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, help="result cache directory"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="write the report to a file"
    )
    return parser


def _run_config(args: argparse.Namespace) -> ScenarioConfig:
    """Translate ``repro run`` flags into a :class:`ScenarioConfig`."""
    try:
        topology = None
        if args.topology_file is not None:
            if args.topology is not None:
                raise ValueError("--topology and --topology-file are exclusive")
            topology = TopologySpec.from_file(args.topology_file)
        elif args.topology is not None:
            topology = TopologySpec.parse(args.topology)
        propagation = (
            PropagationSpec.parse(args.propagation)
            if args.propagation is not None
            else None
        )
        n_nodes = 36 if topology is None else topology_node_count(topology)
        # The paper's center sink (node 14) only means something on the
        # default grid; composed topologies default to node 0.
        sink = args.sink
        if sink is None:
            sink = 14 if topology is None else 0
        n_senders = args.senders
        if n_senders is None:
            n_senders = min(10, n_nodes - 1)
        high_radios = None
        if args.high_radio_map is not None:
            high_radios = RadioAssignment.parse(
                args.high_radio_map, default=args.high_radio
            )
        changes: dict[str, typing.Any] = dict(
            model=args.model,
            topology=topology,
            propagation=propagation,
            sink=sink,
            n_senders=n_senders,
            rate_bps=args.rate,
            burst_packets=args.burst,
            loss_probability=args.loss,
            multihop=args.multihop,
            sim_time_s=args.sim_time,
            seed=args.seed,
            traffic=args.traffic,
            high_radios=high_radios,
            routing=args.routing,
            routing_policy=args.routing_policy,
            scheduler=args.scheduler,
            mac_engine=args.mac_engine,
        )
        if args.faults is not None:
            with open(args.faults) as handle:
                changes["faults"] = FaultPlan.from_dict(json.load(handle))
        if args.traffic_mix is not None:
            changes["traffic_mix"] = _parse_pairs(args.traffic_mix, "--traffic-mix")
        if args.low_radio is not None:
            changes["low_spec"] = get_spec(args.low_radio)
        if args.high_radio is not None and high_radios is None:
            changes["high_spec"] = get_spec(args.high_radio)
        return ScenarioConfig(**changes)
    except (ValueError, KeyError, OSError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"repro: error: {message}")


def _run_main(argv: typing.Sequence[str]) -> int:
    args = _run_parser().parse_args(list(argv))
    if args.runs < 1:
        raise SystemExit("repro: error: --runs must be at least 1")
    config = _run_config(args)
    runner = _runner_from_args(args)
    try:
        results, summary = run_replicated(
            config, n_runs=args.runs, runner=runner
        )
    except ValueError as error:
        # e.g. a partitioned deployment: surface the build-time diagnosis
        # without a traceback.
        raise SystemExit(f"repro: error: {error}")
    text = render_run_report(config, results, summary)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote run report to {args.output}")
    else:
        print(text)
    return 0


def main(argv: typing.Sequence[str] | None = None) -> int:
    """CLI entry point: artifacts, ``run``, ``bench``, ``scenarios``,
    ``merge-shards``, or ``cache``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "run":
        return _run_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    if argv and argv[0] == "scenarios":
        return _scenarios_main(argv[1:])
    if argv and argv[0] == "merge-shards":
        return _merge_shards_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    text = render_artifact(args)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.artifact} to {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
