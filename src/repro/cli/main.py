"""Command-line interface: regenerate any table or figure of the paper.

Examples
--------
::

    repro list                     # what can be regenerated
    repro table1                   # Table 1
    repro fig4                     # analysis figure (exact, instant)
    repro fig5                     # simulation figure (bench scale)
    repro fig5 --paper             # full Section 4.1 scale (hours)
    repro fig6 --senders 5 20 35 --runs 3 --sim-time 300
    repro fig11 --step 64          # prototype sweep at finer threshold step
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.models.sweeps import SweepScale
from repro.report import figures
from repro.testbed.experiment import default_threshold_sweep

#: Figures that accept a SweepScale.
_SIM_FIGURES = {"fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
#: Figures driven by the prototype testbed.
_PROTO_FIGURES = {"fig11", "fig12"}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures of 'Improving Energy Conservation "
            "Using Bulk Transmission over High-Power Radios in Sensor "
            "Networks' (ICDCS 2008)."
        ),
    )
    parser.add_argument(
        "artifact",
        help="artifact id: table1, fig1..fig12, or 'list'",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run simulation figures at full paper scale (5000 s, 20 runs)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="replicated runs per cell"
    )
    parser.add_argument(
        "--sim-time", type=float, default=None, help="simulated seconds per run"
    )
    parser.add_argument(
        "--senders",
        type=int,
        nargs="+",
        default=None,
        help="sender counts to sweep",
    )
    parser.add_argument(
        "--bursts",
        type=int,
        nargs="+",
        default=None,
        help="burst sizes (packets) to sweep",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="base random seed"
    )
    parser.add_argument(
        "--step",
        type=int,
        default=128,
        help="prototype threshold step in bytes (fig11/fig12)",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the artifact to a file instead of stdout",
    )
    return parser


def _scale_from_args(args: argparse.Namespace) -> SweepScale:
    artifact = args.artifact.lower()
    if args.paper:
        scale = SweepScale.paper()
    elif artifact in ("fig7", "fig10"):
        # Energy-delay figures run at 0.2 kb/s: buffers need much longer
        # to cycle, and only the (cheap) dual model is swept.
        scale = SweepScale(bursts=(10, 100, 500), n_runs=1, sim_time_s=1500.0)
    else:
        scale = SweepScale()
    changes: dict[str, typing.Any] = {"seed": args.seed}
    if args.runs is not None:
        changes["n_runs"] = args.runs
    if args.sim_time is not None:
        changes["sim_time_s"] = args.sim_time
    if args.senders is not None:
        changes["senders"] = tuple(args.senders)
    if args.bursts is not None:
        changes["bursts"] = tuple(args.bursts)
    import dataclasses

    return dataclasses.replace(scale, **changes)


def render_artifact(args: argparse.Namespace) -> str:
    """Produce the requested artifact's text."""
    artifact = args.artifact.lower()
    if artifact == "list":
        lines = ["available artifacts:"]
        for name, fn in figures.REGISTRY.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            lines.append(f"  {name:8s} {doc}")
        return "\n".join(lines)
    if artifact not in figures.REGISTRY:
        raise SystemExit(
            f"unknown artifact {artifact!r}; try 'repro list'"
        )
    if artifact in _SIM_FIGURES:
        scale = _scale_from_args(args)
        fn = getattr(figures, artifact)
        return fn(scale=scale)
    if artifact in _PROTO_FIGURES:
        thresholds = default_threshold_sweep(step_bytes=args.step)
        fn = getattr(figures, artifact)
        return fn(thresholds=thresholds)
    return figures.REGISTRY[artifact]()


def main(argv: typing.Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    text = render_artifact(args)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.artifact} to {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
