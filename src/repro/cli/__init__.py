"""Command-line interface (``repro`` / ``python -m repro.cli``)."""

from repro.cli.main import build_parser, main, render_artifact

__all__ = ["build_parser", "main", "render_artifact"]
