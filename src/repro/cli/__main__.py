"""``python -m repro.cli`` entry point."""

import sys

from repro.cli.main import main

sys.exit(main())
