"""Regeneration entry points for every table and figure in the paper.

Each ``table1``/``fig1``…``fig12`` function reproduces one artifact of the
paper's evaluation and returns the rendered text (tables or gnuplot-style
series).  The CLI (``python -m repro.cli <id>``) and the benchmark suite
both call these.

Analytical artifacts (Table 1, Figs. 1–4) are exact and cheap.  Simulation
artifacts (Figs. 5–10) take a :class:`~repro.models.sweeps.SweepScale`; the
default is laptop-scale, ``SweepScale.paper()`` is the full Section 4.1
parameterization.  Prototype artifacts (Figs. 11–12) sweep the emulated
testbed.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.burst_savings import fig4_savings_vs_burst, knee_burst_size
from repro.analysis.feasibility import (
    Series,
    crossover_table,
    fig1_energy_vs_size,
    fig2_breakeven_vs_idle,
    fig3_breakeven_vs_forward_progress,
)
from repro.energy.radio_specs import TABLE_1
from repro.models.sweeps import (
    SweepData,
    SweepScale,
    energy_delay_points,
    energy_rows,
    goodput_rows,
    run_sweep,
)
from repro.runner.executor import SweepRunner
from repro.report.series import render_series
from repro.report.tables import render_matrix, render_table
from repro.testbed.experiment import (
    PrototypeConfig,
    default_threshold_sweep,
    sweep_thresholds,
)
from repro.units import w_to_mw


def table1() -> str:
    """Table 1: energy characteristics of the six radios (mW, mJ)."""
    headers = ["Radio", "Rate", "Ptx (mW)", "Prx (mW)", "Pi (mW)", "Ewakeup (mJ)"]
    rows = []
    for name, spec in TABLE_1.items():
        rate = (
            f"{spec.rate_bps / 1e6:g}Mbps"
            if spec.rate_bps >= 1e6
            else f"{spec.rate_bps / 1e3:g}Kbps"
        )
        rows.append(
            [
                name,
                rate,
                w_to_mw(spec.p_tx_w),
                w_to_mw(spec.p_rx_w),
                w_to_mw(spec.p_idle_w),
                spec.e_wakeup_j * 1e3 if spec.e_wakeup_j else "-",
            ]
        )
    return render_table(headers, rows, title="Table 1. Energy Characteristics")


def fig1() -> str:
    """Fig. 1: energy consumption vs data size (single hop, log-log)."""
    body = render_series(
        fig1_energy_vs_size(),
        x_label="Data size (KB)",
        y_label="Energy consumption (mJ)",
        title="Figure 1. Energy consumption",
        max_points=20,
    )
    crossings = crossover_table()
    extra = ["", "# break-even points s* (KB):"]
    for label, kb in crossings.items():
        extra.append(f"#   {label}: {'infeasible' if kb == float('inf') else f'{kb:.2f} KB'}")
    return body + "\n" + "\n".join(extra)


def fig2() -> str:
    """Fig. 2: break-even size vs high-radio idle time (log-log)."""
    return render_series(
        fig2_breakeven_vs_idle(),
        x_label="Idle time (s)",
        y_label="Break-even data size (KB)",
        title="Figure 2. s* as idling time increases",
        max_points=20,
    )


def fig3() -> str:
    """Fig. 3: break-even size vs forward progress (hops)."""
    return render_series(
        fig3_breakeven_vs_forward_progress(),
        x_label="Forward progress (hop)",
        y_label="Break-even data size (KB)",
        title="Figure 3. s* as forward progress increases",
    )


def fig4() -> str:
    """Fig. 4: fraction of energy savings vs burst size (log x)."""
    body = render_series(
        fig4_savings_vs_burst(),
        x_label="Number of packets",
        y_label="Fraction of energy savings",
        title="Figure 4. Energy savings with burst size",
        max_points=25,
    )
    knees = [
        f"#   {name}: 90% of max savings at n = {knee_burst_size(spec)}"
        for name, spec in TABLE_1.items()
        if spec.kind == "high"
    ]
    return body + "\n\n# rule-of-thumb knees:\n" + "\n".join(knees)


# ---------------------------------------------------------------------------
# Simulation figures (5-10).  The sweeps are shared between figure pairs, so
# callers wanting several views should run the sweep once themselves.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SimSweep:
    """The sweep one simulation figure consumes.

    Declarative so the CLI's ``--shard`` mode can lay out the *same* plan
    a figure would run (same case, rate and baselines → same configs →
    same cache keys) without rendering anything.
    """

    case: str
    rate_bps: float
    include_wifi: bool = True
    include_sensor: bool = True


#: Figure id → the sweep it runs.  fig5/fig6 share one sweep, fig8/fig9
#: another; the energy-delay figures (7/10) run the cheap dual-only
#: matrix at 0.2 kb/s.
SIM_SWEEPS: dict[str, SimSweep] = {
    "fig5": SimSweep("SH", 2000.0),
    "fig6": SimSweep("SH", 2000.0),
    "fig7": SimSweep("SH", 200.0, include_wifi=False, include_sensor=False),
    "fig8": SimSweep("MH", 2000.0),
    "fig9": SimSweep("MH", 2000.0),
    "fig10": SimSweep("MH", 200.0, include_wifi=False, include_sensor=False),
}


def run_figure_sweep(
    artifact: str,
    scale: SweepScale | None = None,
    runner: SweepRunner | None = None,
) -> SweepData:
    """Run the sweep behind one simulation figure, per :data:`SIM_SWEEPS`."""
    spec = SIM_SWEEPS[artifact]
    return run_sweep(
        spec.case,
        scale,
        rate_bps=spec.rate_bps,
        include_wifi=spec.include_wifi,
        include_sensor=spec.include_sensor,
        runner=runner,
    )


def fig5(
    scale: SweepScale | None = None,
    sweep: SweepData | None = None,
    runner: SweepRunner | None = None,
) -> str:
    """Fig. 5: SH goodput vs number of senders."""
    sweep = sweep or run_figure_sweep("fig5", scale, runner)
    return render_matrix(
        goodput_rows(sweep),
        x_label="senders",
        title=f"Figure 5. SH: Goodput ({sweep.rate_bps:g} bps, "
        f"{sweep.sim_time_s:g}s x {sweep.n_runs} runs)",
    )


def fig6(
    scale: SweepScale | None = None,
    sweep: SweepData | None = None,
    runner: SweepRunner | None = None,
) -> str:
    """Fig. 6: SH normalized energy (J/Kbit) vs number of senders."""
    sweep = sweep or run_figure_sweep("fig6", scale, runner)
    return render_matrix(
        energy_rows(sweep),
        x_label="senders",
        title=f"Figure 6. SH: Normalized energy J/Kbit ({sweep.rate_bps:g} bps)",
    )


def fig7(
    scale: SweepScale | None = None,
    sweep: SweepData | None = None,
    runner: SweepRunner | None = None,
) -> str:
    """Fig. 7: SH normalized energy vs delay (0.2 kb/s; one line per
    sender count, one point per burst size)."""
    if sweep is None:
        scale = scale or SweepScale(
            bursts=(10, 100, 500), sim_time_s=1200.0, n_runs=1
        )
        sweep = run_figure_sweep("fig7", scale, runner)
    series = []
    for n_senders, points in sorted(energy_delay_points(sweep).items()):
        series.append(
            Series(
                label=f"0.2Kbps-{n_senders}",
                x=tuple(delay for _burst, delay, _energy in points),
                y=tuple(energy for _burst, _delay, energy in points),
            )
        )
    return render_series(
        series,
        x_label="Average delay (s)",
        y_label="Normalized energy (J/Kb)",
        title="Figure 7. SH: Normalized energy vs. delay "
        "(points along each line are burst sizes)",
    )


def fig8(
    scale: SweepScale | None = None,
    sweep: SweepData | None = None,
    runner: SweepRunner | None = None,
) -> str:
    """Fig. 8: MH goodput vs number of senders (2 kb/s)."""
    sweep = sweep or run_figure_sweep("fig8", scale, runner)
    return render_matrix(
        goodput_rows(sweep),
        x_label="senders",
        title=f"Figure 8. MH: Goodput ({sweep.rate_bps:g} bps)",
    )


def fig9(
    scale: SweepScale | None = None,
    sweep: SweepData | None = None,
    runner: SweepRunner | None = None,
) -> str:
    """Fig. 9: MH normalized energy (J/Kbit) vs number of senders."""
    sweep = sweep or run_figure_sweep("fig9", scale, runner)
    return render_matrix(
        energy_rows(sweep),
        x_label="senders",
        title=f"Figure 9. MH: Normalized energy J/Kbit ({sweep.rate_bps:g} bps)",
    )


def fig10(
    scale: SweepScale | None = None,
    sweep: SweepData | None = None,
    runner: SweepRunner | None = None,
) -> str:
    """Fig. 10: MH normalized energy vs delay (0.2 kb/s)."""
    if sweep is None:
        scale = scale or SweepScale(
            bursts=(10, 100, 500), sim_time_s=1200.0, n_runs=1
        )
        sweep = run_figure_sweep("fig10", scale, runner)
    series = []
    for n_senders, points in sorted(energy_delay_points(sweep).items()):
        series.append(
            Series(
                label=f"0.2Kbps-{n_senders}",
                x=tuple(delay for _burst, delay, _energy in points),
                y=tuple(energy for _burst, _delay, energy in points),
            )
        )
    return render_series(
        series,
        x_label="Average delay (s)",
        y_label="Normalized energy (J/Kb)",
        title="Figure 10. MH: Normalized energy vs. delay",
    )


# ---------------------------------------------------------------------------
# Prototype figures (11-12).
# ---------------------------------------------------------------------------


def fig11(
    thresholds: typing.Sequence[float] | None = None,
    config: PrototypeConfig | None = None,
    runner: SweepRunner | None = None,
) -> str:
    """Fig. 11: prototype energy per packet vs threshold size (α·s*)."""
    thresholds = list(thresholds or default_threshold_sweep())
    results = sweep_thresholds(thresholds, config, runner=runner)
    dual = Series(
        "Dual-Radio",
        tuple(result.threshold_bytes for result in results),
        tuple(result.dual_energy_per_packet_uj for result in results),
    )
    sensor = Series(
        "Sensor Radio",
        tuple(result.threshold_bytes for result in results),
        tuple(result.sensor_energy_per_packet_uj for result in results),
    )
    return render_series(
        [dual, sensor],
        x_label="Threshold Size (Bytes)",
        y_label="Energy Consumption per packet (uJ)",
        title="Figure 11. Energy Consumption vs. alpha-s*",
        max_points=40,
    )


def fig12(
    thresholds: typing.Sequence[float] | None = None,
    config: PrototypeConfig | None = None,
    runner: SweepRunner | None = None,
) -> str:
    """Fig. 12: prototype energy per packet vs delay per packet."""
    thresholds = list(thresholds or default_threshold_sweep())
    results = sweep_thresholds(thresholds, config, runner=runner)
    curve = Series(
        "Dual-Radio",
        tuple(result.mean_delay_per_packet_ms for result in results),
        tuple(result.dual_energy_per_packet_uj for result in results),
    )
    return render_series(
        [curve],
        x_label="Delay / Packet (ms)",
        y_label="Energy Consumption per packet (uJ)",
        title="Figure 12. Energy consumption vs. delay",
        max_points=40,
    )


#: Artifact id → regeneration function (no-argument defaults).
REGISTRY: dict[str, typing.Callable[[], str]] = {
    "table1": table1,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
}
