"""Gnuplot-style data-block rendering and CSV export for figure series."""

from __future__ import annotations

import io
import typing

from repro.analysis.feasibility import Series


def render_series(
    series_list: typing.Sequence[Series],
    x_label: str,
    y_label: str,
    title: str | None = None,
    max_points: int | None = None,
) -> str:
    """Render series as labelled two-column blocks (gnuplot ``index`` style).

    ``max_points`` thins dense sweeps for readability (first/last always
    kept).
    """
    out = []
    if title:
        out.append(f"# {title}")
    out.append(f"# x: {x_label}   y: {y_label}")
    for series in series_list:
        out.append("")
        out.append(f'# series "{series.label}"')
        points = list(zip(series.x, series.y))
        if max_points is not None and len(points) > max_points:
            stride = max(1, len(points) // max_points)
            thinned = points[::stride]
            if thinned[-1] != points[-1]:
                thinned.append(points[-1])
            points = thinned
        for x, y in points:
            out.append(f"{x:.6g}\t{y:.6g}")
    return "\n".join(out)


def series_to_csv(series_list: typing.Sequence[Series]) -> str:
    """Long-format CSV (``label,x,y``) for external plotting tools."""
    buffer = io.StringIO()
    buffer.write("label,x,y\n")
    for series in series_list:
        for x, y in zip(series.x, series.y):
            buffer.write(f"{series.label},{x:.10g},{y:.10g}\n")
    return buffer.getvalue()
