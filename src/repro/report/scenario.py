"""Text rendering for single-scenario runs (the ``repro run`` artifact).

The figure renderers aggregate whole sweeps; ``repro run`` executes one
composed cell (possibly replicated over seeds) and wants a compact,
self-describing block: what was composed (topology, propagation, radios,
traffic), what came out (goodput, energy, delay with CIs), and the channel
counters that explain *why* (collisions, losses, BCP handshakes).
"""

from __future__ import annotations

import typing

from repro.report.tables import format_value, render_table
from repro.stats.metrics import ENERGY_TOTAL, RunResult, merge_counters
from repro.stats.summary import ReplicatedSummary

if typing.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.models.scenario import ScenarioConfig


def describe_composition(config: "ScenarioConfig") -> list[str]:
    """Human lines describing the config's composition axes."""
    if config.topology is None:
        topology = (
            f"grid({config.rows}x{config.cols}, "
            f"spacing={config.spacing_m:g} m)"
        )
    else:
        topology = config.topology.describe()
    propagation = (
        "unit-disc (paper default)"
        if config.propagation is None
        else config.propagation.describe()
    )
    if config.high_radios is None:
        radios = config.effective_high_spec().name
    else:
        assignment = config.high_radios
        default = assignment.default or config.effective_high_spec().name
        parts = [f"default={default}"]
        parts += [f"node {node}={name}" for node, name in assignment.overrides]
        radios = ", ".join(parts)
    traffic = config.traffic
    if config.traffic_mix:
        mix = ", ".join(f"node {node}={name}" for node, name in config.traffic_mix)
        traffic = f"{traffic} ({mix})"
    if config.routing_policy == "hops":
        routing = f"hops ({config.routing_engine()} engine)"
    else:
        routing = f"{config.routing_policy} (dijkstra engine)"
    return [
        f"model       : {config.model}",
        f"topology    : {topology}  ({config.n_nodes} nodes, sink {config.sink})",
        f"propagation : {propagation}",
        f"high radio  : {radios}",
        f"low radio   : {config.low_spec.name}",
        f"routing     : {routing}",
        f"traffic     : {traffic}  ({config.n_senders} senders at "
        f"{config.rate_bps:g} b/s)",
        f"burst       : {config.burst_packets} packets, buffer "
        f"{config.buffer_packets} packets",
    ]


def _counter_rows(results: typing.Sequence[RunResult]) -> list[list[object]]:
    counters = merge_counters(*(result.counters for result in results))
    interesting = (
        "medium.low.sent",
        "medium.low.collided",
        "medium.high.sent",
        "medium.high.collided",
        "medium.high.lost",
        "mac.retransmissions",
        "bcp.wakeups",
        "bcp.bursts",
        "bcp.handshake_failures",
        "bcp.buffer_drops",
        "fwd.dropped",
    )
    n = max(len(results), 1)
    return [
        [name, counters[name] / n] for name in interesting if name in counters
    ]


def _lifetime_lines(results: typing.Sequence[RunResult]) -> list[str]:
    """The network-lifetime block — present only on faulted runs.

    ``faults.*`` counters exist exactly when a non-trivial
    :class:`~repro.faults.plan.FaultPlan` ran, so fault-free reports are
    byte-identical to the pre-fault harness.
    """
    per_run = [
        result.counters
        for result in results
        if "faults.first_death_s" in result.counters
    ]
    if not per_run:
        return []
    first_deaths = [
        c["faults.first_death_s"]
        for c in per_run
        if c["faults.first_death_s"] >= 0.0
    ]
    n = len(per_run)
    lines = ["", "network lifetime", "----------------"]
    if first_deaths:
        lines.append(
            f"first death : {format_value(sum(first_deaths) / len(first_deaths))} s "
            f"mean over {len(first_deaths)}/{n} run(s) with deaths"
        )
    else:
        lines.append("first death : none (every node survived)")
    for label, key in (
        ("deaths      ", "faults.deaths"),
        ("  battery   ", "faults.battery_deaths"),
        ("recoveries  ", "faults.recoveries"),
        ("partitioned ", "faults.partitioned_epochs"),
        ("mac drops   ", "faults.power_down_drops"),
        ("unroutable  ", "faults.unroutable_drops"),
    ):
        total = sum(c.get(key, 0.0) for c in per_run)
        lines.append(f"{label}: {format_value(total / n)} per run")
    return lines


def _mean_first_death(results: typing.Sequence[RunResult]) -> float | None:
    """Mean first-node-death time over runs that saw one, else ``None``."""
    deaths = [
        result.counters["faults.first_death_s"]
        for result in results
        if result.counters.get("faults.first_death_s", -1.0) >= 0.0
    ]
    if not deaths:
        return None
    return sum(deaths) / len(deaths)


def render_policy_comparison(
    results_by_policy: typing.Mapping[str, typing.Sequence[RunResult]],
    baseline: str = "hops",
) -> str:
    """Per-policy energy and lifetime deltas against a baseline policy.

    One row per policy: mean fleet energy (with % delta vs ``baseline``)
    and mean first-node-death time (with delta in seconds; ``-`` when no
    node died).  The input maps policy name → that policy's replicated
    :class:`RunResult` list — ``repro run`` cells or the lifetime
    example's sweeps alike.
    """
    base_results = results_by_policy.get(baseline)
    base_energy = None
    base_death = None
    if base_results:
        base_energy = sum(
            result.energy_j[ENERGY_TOTAL] for result in base_results
        ) / len(base_results)
        base_death = _mean_first_death(base_results)
    rows: list[list[object]] = []
    for policy, results in results_by_policy.items():
        if not results:
            continue
        energy = sum(
            result.energy_j[ENERGY_TOTAL] for result in results
        ) / len(results)
        if base_energy:
            energy_delta = f"{(energy / base_energy - 1.0) * 100.0:+.1f}%"
        else:
            energy_delta = "-"
        death = _mean_first_death(results)
        death_cell = format_value(death) if death is not None else "-"
        if death is not None and base_death is not None:
            death_delta = f"{death - base_death:+g} s"
        else:
            death_delta = "-"
        rows.append(
            [policy, format_value(energy), energy_delta, death_cell, death_delta]
        )
    return render_table(
        (
            "policy",
            "energy (J)",
            f"vs {baseline}",
            "first death (s)",
            f"vs {baseline}",
        ),
        rows,
        title="routing policies",
    )


def render_run_report(
    config: "ScenarioConfig",
    results: typing.Sequence[RunResult],
    summary: ReplicatedSummary,
) -> str:
    """The full ``repro run`` text artifact."""
    lines = ["scenario", "--------"]
    lines += describe_composition(config)
    lines += [
        f"runs        : {summary.n_runs} seed(s) from {config.seed}, "
        f"{config.sim_time_s:g} s each",
        "",
        "results (mean +/- 95% CI)",
        "-------------------------",
    ]
    row = summary.row()
    lines.append(
        f"goodput     : {format_value(row['goodput'])} b/s "
        f"+/- {format_value(row['goodput_ci'])}"
    )
    lines.append(
        f"energy      : {format_value(row['energy_j_per_kbit'])} J/Kbit "
        f"+/- {format_value(row['energy_ci'])}"
    )
    lines.append(
        f"mean delay  : {format_value(row['delay_s'])} s "
        f"+/- {format_value(row['delay_ci'])}"
    )
    if summary.undelivered_runs:
        lines.append(
            f"undelivered : {summary.undelivered_runs}/{summary.n_runs} runs "
            "delivered nothing (excluded from energy)"
        )
    lines += _lifetime_lines(results)
    counter_rows = _counter_rows(results)
    if counter_rows:
        lines += ["", ""]
        lines.append(
            render_table(
                ("counter", "per-run mean"),
                counter_rows,
                title="channel / protocol counters",
            )
        )
    return "\n".join(lines)
