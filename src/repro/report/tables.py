"""Plain-text table rendering for experiment output."""

from __future__ import annotations

import typing


def format_value(value: object, precision: int = 4) -> str:
    """Human-friendly cell formatting (numbers trimmed, inf spelled out)."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 10 ** (precision + 2) or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Raises
    ------
    ValueError
        If any row's width differs from the header's.
    """
    string_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        string_rows.append([format_value(cell) for cell in row])
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: typing.Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    for row in string_rows:
        out.append(line(row))
    return "\n".join(out)


def render_matrix(
    matrix: typing.Mapping[str, typing.Mapping[int, float]],
    x_label: str,
    title: str | None = None,
) -> str:
    """Render a label × x-value grid (the shape of Figs. 5, 6, 8, 9)."""
    xs: list[int] = sorted({x for row in matrix.values() for x in row})
    headers = [x_label] + [str(x) for x in xs]
    rows = []
    for label, row in matrix.items():
        rows.append([label] + [row.get(x, float("nan")) for x in xs])
    return render_table(headers, rows, title=title)
