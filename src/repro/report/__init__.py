"""Rendering of tables/series and the per-figure regeneration registry."""

from repro.report.figures import REGISTRY
from repro.report.series import render_series, series_to_csv
from repro.report.tables import format_value, render_matrix, render_table

__all__ = [
    "REGISTRY",
    "format_value",
    "render_matrix",
    "render_series",
    "render_table",
    "series_to_csv",
]
