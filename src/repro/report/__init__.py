"""Rendering of tables/series and the per-figure regeneration registry."""

from repro.report.figures import REGISTRY
from repro.report.scenario import (
    describe_composition,
    render_policy_comparison,
    render_run_report,
)
from repro.report.series import render_series, series_to_csv
from repro.report.tables import format_value, render_matrix, render_table

__all__ = [
    "REGISTRY",
    "describe_composition",
    "format_value",
    "render_matrix",
    "render_policy_comparison",
    "render_run_report",
    "render_series",
    "render_table",
    "series_to_csv",
]
