"""repro — a reproduction of *Improving Energy Conservation Using Bulk
Transmission over High-Power Radios in Sensor Networks* (Sengul, Bakht,
Harris, Abdelzaher, Kravets; ICDCS 2008).

The package provides, from scratch:

* a deterministic discrete-event simulation kernel (:mod:`repro.sim`);
* the paper's energy substrate: Table 1 radio characteristics, energy
  accounting, and the Section 2 break-even analysis (:mod:`repro.energy`);
* radio/channel/MAC/routing substrates for dual-radio sensor networks
  (:mod:`repro.radio`, :mod:`repro.channel`, :mod:`repro.mac`,
  :mod:`repro.net`);
* **BCP**, the Bulk Communication Protocol (:mod:`repro.core`);
* the Section 4 evaluation: the Sensor / 802.11 / Dual-radio models and
  sweep harness (:mod:`repro.models`), and the two-mote prototype
  emulation (:mod:`repro.testbed`);
* analysis, statistics and reporting to regenerate every table and figure
  (:mod:`repro.analysis`, :mod:`repro.stats`, :mod:`repro.report`,
  :mod:`repro.cli`).

Quick start::

    from repro.energy import DualRadioLink, MICAZ, LUCENT_11, breakeven_bits
    link = DualRadioLink(low=MICAZ, high=LUCENT_11)
    print(breakeven_bits(link) / 8, "bytes to break even")

    from repro.models import ScenarioConfig, run_scenario
    result = run_scenario(ScenarioConfig(model="dual", burst_packets=500,
                                         n_senders=10, sim_time_s=300.0))
    print(result.goodput, result.normalized_energy_j_per_kbit())
"""

from repro.core.bcp import BcpAgent
from repro.core.config import BcpConfig
from repro.energy.breakeven import (
    DualRadioLink,
    breakeven_bits,
    breakeven_bits_multihop,
    crossover_bits,
    energy_high,
    energy_low,
)
from repro.energy.radio_specs import (
    CABLETRON,
    LUCENT_2,
    LUCENT_11,
    MICA,
    MICA2,
    MICAZ,
    TABLE_1,
    RadioSpec,
    get_spec,
)
from repro.models.scenario import (
    ScenarioConfig,
    multi_hop_config,
    run_replicated,
    run_scenario,
    single_hop_config,
)
from repro.sim.events import Event, Timeout
from repro.sim.scheduler import CalendarScheduler, HeapScheduler, Scheduler
from repro.sim.simulator import Simulator
from repro.stats.metrics import RunResult
from repro.testbed.experiment import (
    PrototypeConfig,
    run_prototype,
    sweep_thresholds,
)

__version__ = "1.0.0"

__all__ = [
    "BcpAgent",
    "BcpConfig",
    "CABLETRON",
    "CalendarScheduler",
    "DualRadioLink",
    "Event",
    "HeapScheduler",
    "LUCENT_11",
    "LUCENT_2",
    "MICA",
    "MICA2",
    "MICAZ",
    "PrototypeConfig",
    "RadioSpec",
    "RunResult",
    "ScenarioConfig",
    "Scheduler",
    "Simulator",
    "TABLE_1",
    "Timeout",
    "__version__",
    "breakeven_bits",
    "breakeven_bits_multihop",
    "crossover_bits",
    "energy_high",
    "energy_low",
    "get_spec",
    "multi_hop_config",
    "run_prototype",
    "run_replicated",
    "run_scenario",
    "single_hop_config",
    "sweep_thresholds",
]
