"""Stable content hashes for experiment configurations.

A cache key must identify the *fully resolved* configuration: two configs
that differ in any field — including nested :class:`~repro.energy.radio_specs.RadioSpec`
values — must hash differently, and the same config must hash identically
across processes, platforms and Python versions.  ``hash()`` is salted and
``pickle`` is version-sensitive, so we canonicalize to JSON instead:
dataclass → nested plain dict (sorted keys) → compact JSON → sha256.

The key also covers the config's class (module-qualified name), the cache
schema version, and the package version, so configs of different types can
never collide and both format changes and simulator releases invalidate
stale entries wholesale.  The package version cannot see uncommitted
simulator edits, though — when iterating on simulator code itself, run
with ``--no-cache`` (or bump :data:`CACHE_SCHEMA_VERSION`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing

#: Bump to invalidate every existing cache entry (result format changes,
#: semantic changes to the simulator that keep configs identical, ...).
#: v2: entries carry a ``result_type`` tag (the cache now stores
#: prototype measurements alongside simulation results).
#: v3: ScenarioConfig grew the scenario-composition axes (topology /
#: propagation / high_radios / traffic_mix specs); every pre-axis key is
#: retired wholesale rather than left as unreachable dead weight.
#: v4: ScenarioConfig grew the ``routing`` engine selector (auto / eager
#: / lazy); pre-selector keys are retired wholesale.
#: v5: ScenarioConfig grew the ``scheduler`` agenda selector (heap /
#: calendar).  Results are byte-identical across backends, but the field
#: is part of the canonicalized config, so pre-field keys are retired.
#: v6: ScenarioConfig grew the ``mac_engine`` selector (flat /
#: generator), and MAC runs now report a ``mac.acks_dropped`` counter —
#: the counters dict is part of the digested result, so paper-scenario
#: golden digests were consciously re-pinned in the same change (both
#: engines × both schedulers reproduce the new digests byte-identically).
#: v7: ScenarioConfig grew the ``faults`` schedule
#: (:class:`~repro.faults.plan.FaultPlan`).  The no-fault path is
#: byte-identical (golden digests unchanged), but the field widens every
#: config key, so pre-fault keys are retired wholesale.
#: v8: ScenarioConfig grew the ``routing_policy`` axis (hops / tx-energy
#: / residual-energy) and RadioSpec the ``tx_power_levels`` ladder.  The
#: ``"hops"`` default with an empty ladder is byte-identical (golden
#: digests unchanged), but both fields widen every config key, so
#: pre-policy keys are retired wholesale.
CACHE_SCHEMA_VERSION = 8


def _canonicalize(value: typing.Any) -> typing.Any:
    """Reduce ``value`` to JSON-encodable plain data, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonicalize(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _canonicalize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    if isinstance(value, float):
        # json.dumps renders finite doubles via repr(), which round-trips
        # exactly.  Non-finite values would emit `Infinity`/`NaN` (not
        # standard JSON), so encode them as a tagged object — a bare repr
        # string would collide with a literal string field of "inf".
        if value != value or value in (float("inf"), float("-inf")):
            return {"__float__": repr(value)}
        return value
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for hashing: {value!r}"
    )


def _package_version() -> str:
    # Imported lazily: ``repro`` pulls in the model layer, which (via the
    # sweep modules) imports this package.
    import repro

    return repro.__version__


def canonical_json(config: typing.Any) -> str:
    """The canonical JSON form of a (possibly nested) dataclass config."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "version": _package_version(),
        "type": f"{type(config).__module__}.{type(config).__qualname__}",
        "config": _canonicalize(config),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_key(config: typing.Any) -> str:
    """A stable sha256 hex key identifying ``config``."""
    return hashlib.sha256(canonical_json(config).encode()).hexdigest()
