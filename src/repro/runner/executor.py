"""The sweep executor: cache-aware cell execution over pluggable backends.

:class:`SweepRunner` maps a pure function over a batch of configs.  The
strategy-independent parts live here — cache lookups and stores, progress
events, result ordering — while the actual execution is delegated to a
:class:`~repro.runner.backends.Backend`:

* :class:`~repro.runner.backends.SerialBackend` — in-process, in-order,
  bit-identical to the pre-runner code path (the default for ``jobs=1``);
* :class:`~repro.runner.backends.ProcessBackend` — a local
  ``ProcessPoolExecutor`` fan-out (``jobs > 1``);
* :class:`~repro.runner.shard.ShardBackend` — one machine's deterministic
  slice of a multi-machine run (requires a cache; see
  :mod:`repro.runner.shard`).

Because every cell's result is a pure function of its config (see
:mod:`repro.sim.rng` — all randomness derives from the config's own
seed), the backend changes wall-clock time only, never results, and
results can be cached across processes, sessions and machines.

Process-crossing backends need ``fn`` to be module-level (picklable) and
configs to be dataclasses, which :func:`~repro.models.scenario.run_scenario`
and :class:`~repro.models.scenario.ScenarioConfig` satisfy.
"""

from __future__ import annotations

import os
import typing

from repro.runner.backends import Backend, default_backend
from repro.runner.cache import CACHE_DIR_ENV, ResultCache
from repro.runner.progress import ProgressEvent, ProgressTracker

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

ConfigT = typing.TypeVar("ConfigT")
ResultT = typing.TypeVar("ResultT")


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value to a concrete worker count.

    ``None`` falls back to ``$REPRO_JOBS``, then to 1 (serial).  A value
    of 0 (or any negative) means "all cores".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"${JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class SweepRunner:
    """Executes batches of independent cells, with caching and progress.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (the default) runs serial and in-process,
        ``None`` reads ``$REPRO_JOBS``, and 0 means all cores.  Ignored
        when ``backend`` is given explicitly.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely.
    progress:
        Optional callback receiving one :class:`ProgressEvent` per
        finished cell.
    backend:
        Execution strategy.  Defaults to what ``jobs`` implies (serial
        or process pool), overridable globally via ``$REPRO_BACKEND``.
        Backends that execute only a slice of the batch (sharding)
        require a cache — the runner refuses them without one, since the
        skipped cells' results would be silently lost.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        progress: typing.Callable[[ProgressEvent], None] | None = None,
        backend: Backend | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.backend = (
            backend if backend is not None else default_backend(self.jobs)
        )
        if self.backend.requires_cache and cache is None:
            raise ValueError(
                f"backend {self.backend.name!r} executes only a slice of "
                "each batch and therefore requires a result cache"
            )
        self.cache = cache
        self.progress = progress

    def map(
        self,
        fn: typing.Callable[[ConfigT], ResultT],
        configs: typing.Sequence[ConfigT],
        describe: typing.Callable[[int, ConfigT], str] | None = None,
        progress: typing.Callable[[ProgressEvent], None] | None = None,
    ) -> list[ResultT]:
        """Run ``fn`` over ``configs``, returning results in input order.

        Cached cells are served without executing ``fn``; the rest go to
        the backend.  Either way the returned list lines up
        index-for-index with ``configs``.  Under a sharding backend the
        slots of out-of-shard, uncached cells are ``None`` — the product
        of such a run is its cache entries, not the returned list.
        ``progress`` receives this batch's events in addition to the
        runner's own sink.
        """
        if describe is None:
            describe = lambda index, _config: f"cell {index}"  # noqa: E731
        sinks = [s for s in (self.progress, progress) if s is not None]

        def fan_out(event: ProgressEvent) -> None:
            for sink in sinks:
                sink(event)

        tracker = ProgressTracker(len(configs), sink=fan_out if sinks else None)
        results: list[ResultT | None] = [None] * len(configs)
        pending: list[int] = []
        for index, config in enumerate(configs):
            cached = self.cache.get(config) if self.cache is not None else None
            if cached is not None:
                results[index] = typing.cast(ResultT, cached)
                tracker.cell_done(index, describe(index, config), cached=True)
            else:
                pending.append(index)

        def complete(index: int, result: typing.Any) -> None:
            results[index] = typing.cast(ResultT, result)
            if self.cache is not None:
                self.cache.put(configs[index], result)
            tracker.cell_done(index, describe(index, configs[index]), cached=False)

        self.backend.execute(fn, configs, pending, complete)
        return typing.cast("list[ResultT]", results)


def runner_from_env(
    progress: typing.Callable[[ProgressEvent], None] | None = None,
) -> SweepRunner:
    """A runner configured purely from the environment.

    ``$REPRO_JOBS`` picks the worker count (default serial),
    ``$REPRO_BACKEND`` overrides the execution strategy, and, when
    ``$REPRO_CACHE_DIR`` is set, results persist there; without it no disk
    cache is used.  This is what the benchmark suite builds, so local runs
    get the speedup by exporting two variables and CI stays hermetic.
    """
    cache_dir = os.environ.get(CACHE_DIR_ENV)
    cache = ResultCache(cache_dir) if cache_dir else None
    return SweepRunner(jobs=None, cache=cache, progress=progress)
