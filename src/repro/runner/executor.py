"""The sweep executor: cache-aware, optionally parallel cell execution.

:class:`SweepRunner` maps a pure function over a batch of configs.  The
default is strictly serial (in-process, debuggable, bit-identical to the
pre-runner code path); ``jobs > 1`` fans the batch out over a
``ProcessPoolExecutor``.  Because every cell's result is a pure function
of its config (see :mod:`repro.sim.rng` — all randomness derives from the
config's own seed), parallel execution changes wall-clock time only, never
results, and results can be cached across processes and sessions.

Worker functions must be module-level (picklable) and configs must be
dataclasses, which :func:`~repro.models.scenario.run_scenario` and
:class:`~repro.models.scenario.ScenarioConfig` satisfy.
"""

from __future__ import annotations

import concurrent.futures
import os
import typing

from repro.runner.cache import CACHE_DIR_ENV, ResultCache
from repro.runner.progress import ProgressEvent, ProgressTracker

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

ConfigT = typing.TypeVar("ConfigT")
ResultT = typing.TypeVar("ResultT")


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value to a concrete worker count.

    ``None`` falls back to ``$REPRO_JOBS``, then to 1 (serial).  A value
    of 0 (or any negative) means "all cores".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"${JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class SweepRunner:
    """Executes batches of independent cells, with caching and progress.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (the default) runs serial and in-process,
        ``None`` reads ``$REPRO_JOBS``, and 0 means all cores.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely.
    progress:
        Optional callback receiving one :class:`ProgressEvent` per
        finished cell.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        progress: typing.Callable[[ProgressEvent], None] | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.progress = progress

    def map(
        self,
        fn: typing.Callable[[ConfigT], ResultT],
        configs: typing.Sequence[ConfigT],
        describe: typing.Callable[[int, ConfigT], str] | None = None,
        progress: typing.Callable[[ProgressEvent], None] | None = None,
    ) -> list[ResultT]:
        """Run ``fn`` over ``configs``, returning results in input order.

        Cached cells are served without executing ``fn``; the rest run
        serially or across the worker pool.  Either way the returned list
        lines up index-for-index with ``configs``.  ``progress`` receives
        this batch's events in addition to the runner's own sink.
        """
        if describe is None:
            describe = lambda index, _config: f"cell {index}"  # noqa: E731
        sinks = [s for s in (self.progress, progress) if s is not None]

        def fan_out(event: ProgressEvent) -> None:
            for sink in sinks:
                sink(event)

        tracker = ProgressTracker(len(configs), sink=fan_out if sinks else None)
        results: list[ResultT | None] = [None] * len(configs)
        pending: list[int] = []
        for index, config in enumerate(configs):
            cached = self.cache.get(config) if self.cache is not None else None
            if cached is not None:
                results[index] = typing.cast(ResultT, cached)
                tracker.cell_done(index, describe(index, config), cached=True)
            else:
                pending.append(index)

        if self.jobs <= 1 or len(pending) <= 1:
            for index in pending:
                results[index] = self._finish(
                    fn, configs, index, fn(configs[index]), describe, tracker
                )
        else:
            workers = min(self.jobs, len(pending))
            pool = concurrent.futures.ProcessPoolExecutor(workers)
            try:
                futures = {
                    pool.submit(fn, configs[index]): index for index in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    index = futures[future]
                    results[index] = self._finish(
                        fn, configs, index, future.result(), describe, tracker
                    )
            except BaseException:
                # On Ctrl-C (or a failed cell) drop the queued cells instead
                # of draining them — a paper-scale sweep queues thousands.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            pool.shutdown()
        return typing.cast("list[ResultT]", results)

    def _finish(
        self,
        fn: typing.Callable[[ConfigT], ResultT],
        configs: typing.Sequence[ConfigT],
        index: int,
        result: ResultT,
        describe: typing.Callable[[int, ConfigT], str],
        tracker: ProgressTracker,
    ) -> ResultT:
        if self.cache is not None:
            self.cache.put(configs[index], result)
        tracker.cell_done(index, describe(index, configs[index]), cached=False)
        return result


def runner_from_env(
    progress: typing.Callable[[ProgressEvent], None] | None = None,
) -> SweepRunner:
    """A runner configured purely from the environment.

    ``$REPRO_JOBS`` picks the worker count (default serial) and, when
    ``$REPRO_CACHE_DIR`` is set, results persist there; without it no disk
    cache is used.  This is what the benchmark suite builds, so local runs
    get the speedup by exporting two variables and CI stays hermetic.
    """
    cache_dir = os.environ.get(CACHE_DIR_ENV)
    cache = ResultCache(cache_dir) if cache_dir else None
    return SweepRunner(jobs=None, cache=cache, progress=progress)
