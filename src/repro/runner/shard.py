"""Deterministic cross-machine sharding of sweep plans.

The result cache already gives every cell a globally-unique identity —
the sha256 of its canonical config (:func:`~repro.runner.hashing.config_key`)
— so splitting a sweep across N machines needs no coordinator: each
machine derives the *same* key for the *same* cell and executes only the
keys that land in its shard.  The partition is a pure function of
``(key, shard_count)``:

    ``shard_index(key, n) = int(key[:16], 16) % n``

which is disjoint and exhaustive by construction, uniform because sha256
is, and stable across processes, machines and Python versions because
the key itself is.

Workflow (see the README's multi-machine section)::

    host0$ repro fig5 --paper --shard 0/2 --cache-dir /tmp/shard0
    host1$ repro fig5 --paper --shard 1/2 --cache-dir /tmp/shard1
    # rsync both cache dirs to one host, then:
    $ repro merge-shards merged/ /tmp/shard0 /tmp/shard1
    $ repro fig5 --paper --cache-dir merged/     # served 100% from cache

Each shard run writes a **manifest** (``shard-<K>of<N>.manifest``) next
to its cache entries, recording the cache schema, the package version and
the cell keys the shard owns.  :func:`merge_shards` assembles manifests
from several directories into one cache, refusing on any schema/version
mismatch — merging results produced by different simulator versions would
silently mix incompatible physics.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import typing

from repro.runner.backends import Backend, CompleteFn, SerialBackend
from repro.runner.hashing import CACHE_SCHEMA_VERSION, config_key

#: File-name suffix of shard manifests.  Deliberately *not* ``.json``:
#: cache entries are ``<sha256>.json`` and everything that globs entries
#: (GC, ``len(cache)``, merging) must never confuse a manifest for one.
MANIFEST_SUFFIX = ".manifest"

#: The ``kind`` tag inside a manifest file.
MANIFEST_KIND = "repro-shard-manifest"


class MergeError(RuntimeError):
    """A shard merge refused: incompatible or missing manifests."""


def shard_index(key: str, shard_count: int) -> int:
    """Which shard of ``shard_count`` owns the cell with hash ``key``.

    Pure, uniform, and stable: derived from the leading 64 bits of the
    cell's sha256 config key.
    """
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")
    try:
        prefix = int(key[:16], 16)
    except ValueError:
        raise ValueError(f"not a config-hash key: {key!r}") from None
    return prefix % shard_count


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One machine's slice of a sweep: ``shard index of count``."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"K/N"`` (e.g. ``--shard 0/2``)."""
        parts = text.strip().split("/")
        if len(parts) != 2:
            raise ValueError(
                f"bad shard spec {text!r}; expected K/N, e.g. 0/2"
            )
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"bad shard spec {text!r}; expected integers K/N"
            ) from None
        return cls(index, count)

    def owns(self, key: str) -> bool:
        """Whether this shard executes the cell with config-hash ``key``."""
        return shard_index(key, self.count) == self.index

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


class ShardBackend:
    """Execute only this machine's deterministic slice of the batch.

    Wraps an inner backend (serial or process — sharding composes with
    local parallelism) and filters the pending indices down to the cells
    :meth:`ShardSpec.owns`.  Cells outside the slice are simply never
    executed; their result slots stay ``None``, which is why the runner
    insists on a cache (``requires_cache``) — a shard run's *product* is
    cache entries plus a manifest, not an in-memory result list.

    After :meth:`execute`, :attr:`owned` / :attr:`skipped` report the
    slice split of the last batch (for CLI summaries).
    """

    requires_cache = True

    def __init__(self, spec: ShardSpec, inner: Backend | None = None):
        self.spec = spec
        self.inner: Backend = inner if inner is not None else SerialBackend()
        self.owned = 0
        self.skipped = 0

    @property
    def name(self) -> str:
        return f"shard:{self.spec} over {self.inner.name}"

    def execute(
        self,
        fn: typing.Callable[[typing.Any], typing.Any],
        configs: typing.Sequence[typing.Any],
        pending: typing.Sequence[int],
        complete: CompleteFn,
    ) -> None:
        mine = [
            index
            for index in pending
            if self.spec.owns(config_key(configs[index]))
        ]
        self.owned = len(mine)
        self.skipped = len(pending) - len(mine)
        self.inner.execute(fn, configs, mine, complete)


def manifest_path(
    directory: str | os.PathLike, spec: ShardSpec
) -> pathlib.Path:
    """Where the manifest of ``spec`` lives inside a cache directory."""
    return (
        pathlib.Path(directory)
        / f"shard-{spec.index}of{spec.count}{MANIFEST_SUFFIX}"
    )


def write_shard_manifest(
    directory: str | os.PathLike,
    spec: ShardSpec,
    keys: typing.Sequence[str],
    artifact: str | None = None,
) -> pathlib.Path:
    """Record which cells a shard run owns, for :func:`merge_shards`.

    ``keys`` are the config-hash keys of the cells this shard owns
    (whether computed this run or already cached).  Atomic like cache
    writes; re-running a shard simply rewrites its manifest.
    """
    import repro

    path = manifest_path(directory, spec)
    payload = {
        "kind": MANIFEST_KIND,
        "schema": CACHE_SCHEMA_VERSION,
        "version": repro.__version__,
        "shard": {"index": spec.index, "count": spec.count},
        "artifact": artifact,
        "cells": sorted(keys),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f"{MANIFEST_SUFFIX}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
    os.replace(tmp, path)
    return path


def read_shard_manifest(path: str | os.PathLike) -> dict[str, typing.Any]:
    """Load and structurally validate one manifest file."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise MergeError(f"unreadable shard manifest {path}: {error}")
    if not isinstance(payload, dict) or payload.get("kind") != MANIFEST_KIND:
        raise MergeError(f"{path} is not a shard manifest")
    for field in ("schema", "version", "shard", "cells"):
        if field not in payload:
            raise MergeError(f"shard manifest {path} lacks {field!r}")
    return payload


@dataclasses.dataclass
class MergeReport:
    """What :func:`merge_shards` did, for CLI reporting and tests."""

    manifests: int = 0
    shard_count: int = 0
    shards_seen: set[int] = dataclasses.field(default_factory=set)
    cells_listed: int = 0
    copied: int = 0
    already_present: int = 0
    missing: int = 0

    @property
    def missing_shards(self) -> list[int]:
        """Shard indices no manifest covered (partial merges are legal)."""
        return [
            index
            for index in range(self.shard_count)
            if index not in self.shards_seen
        ]

    @property
    def complete(self) -> bool:
        """Whether every shard contributed and every listed cell landed."""
        return not self.missing_shards and self.missing == 0

    def summary(self) -> str:
        """One-paragraph human rendering."""
        lines = [
            f"merged {self.manifests} shard manifest(s) covering "
            f"{len(self.shards_seen)}/{self.shard_count} shard(s): "
            f"{self.copied} cell(s) copied, "
            f"{self.already_present} already present, "
            f"{self.missing} missing from their source dir(s)"
        ]
        if self.missing_shards:
            missing = ", ".join(str(i) for i in self.missing_shards)
            lines.append(f"warning: no manifest for shard(s) {missing}")
        return "\n".join(lines)


def _copy_entry(source: pathlib.Path, dest: pathlib.Path) -> None:
    tmp = dest.with_suffix(f".tmp{os.getpid()}")
    tmp.write_bytes(source.read_bytes())
    os.replace(tmp, dest)


def merge_shards(
    dest: str | os.PathLike, sources: typing.Sequence[str | os.PathLike]
) -> MergeReport:
    """Assemble shard cache directories into one result set.

    Every source directory must carry at least one shard manifest; all
    manifests (across all sources) must agree on the cache schema, the
    package version, and the shard count — any mismatch refuses the whole
    merge with :class:`MergeError`, because a half-merged cache of mixed
    simulator versions is worse than no cache.  Missing cell files (e.g.
    evicted by GC after the manifest was written) are tolerated and
    counted; re-running the shard regenerates them.

    Merging into a directory that already has entries (including one of
    the sources) is fine — entries are keyed by content hash, so a
    duplicate key is byte-equivalent and skipped.
    """
    import repro

    dest_dir = pathlib.Path(dest)
    if dest_dir.exists() and not dest_dir.is_dir():
        raise MergeError(f"merge destination {dest_dir} is not a directory")
    report = MergeReport()
    plans: list[tuple[pathlib.Path, list[str]]] = []
    for source in sources:
        source_dir = pathlib.Path(source)
        manifests = sorted(source_dir.glob(f"*{MANIFEST_SUFFIX}"))
        if not manifests:
            raise MergeError(
                f"{source_dir} has no shard manifest; was it produced by "
                "a --shard run?"
            )
        for path in manifests:
            payload = read_shard_manifest(path)
            if payload["schema"] != CACHE_SCHEMA_VERSION:
                raise MergeError(
                    f"{path}: cache schema {payload['schema']!r} does not "
                    f"match this build's {CACHE_SCHEMA_VERSION!r}"
                )
            if payload["version"] != repro.__version__:
                raise MergeError(
                    f"{path}: produced by repro {payload['version']}, this "
                    f"build is {repro.__version__}; rerun the shard"
                )
            shard = payload["shard"]
            if report.manifests and shard["count"] != report.shard_count:
                raise MergeError(
                    f"{path}: shard count {shard['count']} conflicts with "
                    f"earlier manifests' {report.shard_count}"
                )
            report.manifests += 1
            report.shard_count = shard["count"]
            report.shards_seen.add(shard["index"])
            plans.append((source_dir, list(payload["cells"])))
    dest_dir.mkdir(parents=True, exist_ok=True)
    for source_dir, keys in plans:
        for key in keys:
            report.cells_listed += 1
            entry = source_dir / f"{key}.json"
            target = dest_dir / f"{key}.json"
            if target.exists():
                report.already_present += 1
                continue
            if not entry.exists():
                report.missing += 1
                continue
            _copy_entry(entry, target)
            report.copied += 1
    return report
