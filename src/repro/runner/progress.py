"""Progress reporting for sweep execution.

The executor emits one :class:`ProgressEvent` per finished cell (computed
or cache hit).  :class:`ProgressPrinter` renders events as single-line
updates — cells completed, cache hits, ETA — suitable for stderr while an
artifact streams to stdout.
"""

from __future__ import annotations

import dataclasses
import sys
import time
import typing


@dataclasses.dataclass(frozen=True)
class ProgressEvent:
    """One cell finished (by computation or by cache hit).

    Attributes
    ----------
    index:
        Position of the finished cell in the submitted batch.
    completed / total:
        Batch progress after this cell.
    cache_hits:
        Cells of this batch served from the cache so far.
    cached:
        Whether *this* cell was a cache hit.
    elapsed_s / eta_s:
        Wall-clock spent so far, and the remaining-time estimate derived
        from the mean pace of *computed* (non-cached) cells.  ``eta_s`` is
        ``None`` until at least one cell was computed.
    description:
        Human-readable cell label (e.g. ``"SH: DualRadio-500 senders=20"``).
    """

    index: int
    completed: int
    total: int
    cache_hits: int
    cached: bool
    elapsed_s: float
    eta_s: float | None
    description: str

    def format(self) -> str:
        """Render as a one-line status, e.g. ``[3/12] ... (hit) ETA 41s``."""
        parts = [f"[{self.completed}/{self.total}]", self.description]
        if self.cached:
            parts.append("(cache hit)")
        if self.eta_s is not None and self.completed < self.total:
            parts.append(f"ETA {_format_duration(self.eta_s)}")
        if self.completed == self.total:
            parts.append(
                f"done in {_format_duration(self.elapsed_s)}"
                f" ({self.cache_hits}/{self.total} cached)"
            )
        return " ".join(parts)


def _format_duration(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{rest:02.0f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h{minutes:02d}m"


class ProgressTracker:
    """Aggregates per-cell completions into :class:`ProgressEvent` values."""

    def __init__(
        self,
        total: int,
        sink: typing.Callable[[ProgressEvent], None] | None = None,
        clock: typing.Callable[[], float] = time.monotonic,
    ):
        self.total = total
        self.sink = sink
        self._clock = clock
        self._start = clock()
        self.completed = 0
        self.cache_hits = 0

    def cell_done(self, index: int, description: str, cached: bool) -> ProgressEvent:
        """Record one finished cell and notify the sink."""
        self.completed += 1
        if cached:
            self.cache_hits += 1
        elapsed = self._clock() - self._start
        computed = self.completed - self.cache_hits
        remaining = self.total - self.completed
        # Cache hits are ~free; pace the ETA on computed cells only.
        eta = elapsed / computed * remaining if computed > 0 else None
        event = ProgressEvent(
            index=index,
            completed=self.completed,
            total=self.total,
            cache_hits=self.cache_hits,
            cached=cached,
            elapsed_s=elapsed,
            eta_s=eta,
            description=description,
        )
        if self.sink is not None:
            self.sink(event)
        return event


class ProgressPrinter:
    """A sink that writes each event's one-line rendering to a stream."""

    def __init__(self, stream: typing.TextIO | None = None):
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: ProgressEvent) -> None:
        print(event.format(), file=self.stream, flush=True)
