"""Pluggable execution backends for the sweep runner.

A *backend* is the strategy that turns a batch of pending cells into
results: in-process serial execution, a local process pool, or a
deterministic shard of a larger multi-machine run
(:class:`~repro.runner.shard.ShardBackend`).  The
:class:`~repro.runner.executor.SweepRunner` owns everything strategy-
independent — cache lookups, cache stores, progress events, result
ordering — and delegates only the "execute these indices" step, so a new
backend (asyncio, a cluster scheduler, ...) is one small class away.

The contract, precisely:

* ``execute(fn, configs, pending, complete)`` receives the *full* config
  batch plus ``pending``, the indices whose results are not already known
  (cache hits never reach a backend).
* The backend calls ``complete(index, fn(configs[index]))`` exactly once
  for every pending index it executes, **from the coordinating process**
  (never from a worker), in any order it likes.  The runner handles cache
  stores and progress there.
* A backend may legitimately execute a *subset* of ``pending`` — that is
  how sharding works — but must never execute an index outside it.
* ``fn`` is a pure function of its config (see :mod:`repro.sim.rng`), so
  *which* backend ran a cell can never change its result — the
  determinism tests pin this down byte-for-byte.

Backends that cross a process boundary additionally require ``fn`` to be
a module-level (picklable) function and configs to be picklable
dataclasses, which :func:`~repro.models.scenario.run_scenario` /
:class:`~repro.models.scenario.ScenarioConfig` and
:func:`~repro.testbed.experiment.run_prototype` /
:class:`~repro.testbed.experiment.PrototypeConfig` all satisfy.

``$REPRO_BACKEND`` overrides the default choice globally (CI runs the
test suite once per backend this way): ``serial``, ``process`` or
``process:N``.  Shard backends are deliberately *not* selectable through
the environment: every full-batch consumer (``run_sweep``, the figures)
expects a complete result list, and an env-injected shard would silently
hand it ``None`` holes.  Sharding is always an explicit choice — the
CLI's ``--shard K/N`` or a :class:`~repro.runner.shard.ShardBackend`
constructed in code.
"""

from __future__ import annotations

import concurrent.futures
import os
import typing

#: Environment variable selecting the default backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Callback the runner hands to a backend: ``complete(index, result)``.
CompleteFn = typing.Callable[[int, typing.Any], None]


class Backend(typing.Protocol):
    """What the :class:`~repro.runner.executor.SweepRunner` needs.

    Attributes
    ----------
    name:
        Short human-readable identifier (``"serial"``, ``"process:4"``,
        ``"shard:0/2"``), used in progress lines and error messages.
    requires_cache:
        ``True`` when the backend intentionally leaves some pending cells
        unexecuted (sharding), so running it without a result cache would
        silently discard work.  The runner refuses that combination.
    """

    name: str
    requires_cache: bool

    def execute(
        self,
        fn: typing.Callable[[typing.Any], typing.Any],
        configs: typing.Sequence[typing.Any],
        pending: typing.Sequence[int],
        complete: CompleteFn,
    ) -> None:
        """Run (a backend-chosen subset of) the pending cells.

        Must invoke ``complete(index, result)`` once per executed index,
        from the calling process.
        """
        ...  # pragma: no cover - protocol


class SerialBackend:
    """In-process, in-order execution — the debuggable reference backend.

    Bit-identical to the pre-runner code path: no pickling, no worker
    processes, exceptions propagate with their original tracebacks.
    """

    name = "serial"
    requires_cache = False

    def execute(
        self,
        fn: typing.Callable[[typing.Any], typing.Any],
        configs: typing.Sequence[typing.Any],
        pending: typing.Sequence[int],
        complete: CompleteFn,
    ) -> None:
        for index in pending:
            complete(index, fn(configs[index]))


class ProcessBackend:
    """Fan pending cells over a local ``ProcessPoolExecutor``.

    Parameters
    ----------
    jobs:
        Worker processes; 0 (or negative) means all cores.  A single
        pending cell is run in-process — a pool spawn costs more than the
        cell.

    Results complete in whatever order workers finish; the runner's
    result list restores input order, so output is byte-identical to
    :class:`SerialBackend`.
    """

    requires_cache = False

    def __init__(self, jobs: int):
        if jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs

    @property
    def name(self) -> str:
        return f"process:{self.jobs}"

    def execute(
        self,
        fn: typing.Callable[[typing.Any], typing.Any],
        configs: typing.Sequence[typing.Any],
        pending: typing.Sequence[int],
        complete: CompleteFn,
    ) -> None:
        if len(pending) <= 1:
            for index in pending:
                complete(index, fn(configs[index]))
            return
        workers = min(self.jobs, len(pending))
        pool = concurrent.futures.ProcessPoolExecutor(workers)
        try:
            futures = {
                pool.submit(fn, configs[index]): index for index in pending
            }
            for future in concurrent.futures.as_completed(futures):
                complete(futures[future], future.result())
        except BaseException:
            # On Ctrl-C (or a failed cell) drop the queued cells instead
            # of draining them — a paper-scale sweep queues thousands.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown()


def parse_backend(spec: str, jobs: int = 1) -> "Backend":
    """Build a backend from its string form.

    Accepted forms (case-insensitive): ``serial``, ``process``,
    ``process:N``, ``shard:K/N``.  ``process`` without a count uses
    ``jobs`` workers (at least 2 — an explicit process backend that ran
    serially would defeat the point); ``shard:K/N`` wraps the serial or
    process backend ``jobs`` implies.
    """
    raw = spec.strip().lower()
    if raw == "serial":
        return SerialBackend()
    if raw == "process":
        return ProcessBackend(max(jobs, 2))
    if raw.startswith("process:"):
        count = raw.split(":", 1)[1]
        try:
            return ProcessBackend(int(count))
        except ValueError:
            raise ValueError(
                f"bad process worker count {count!r} in backend {spec!r}"
            ) from None
    if raw.startswith("shard:"):
        from repro.runner.shard import ShardBackend, ShardSpec

        inner = ProcessBackend(jobs) if jobs > 1 else SerialBackend()
        return ShardBackend(ShardSpec.parse(raw.split(":", 1)[1]), inner)
    raise ValueError(
        f"unknown backend {spec!r}; expected serial, process[:N] or "
        "shard:K/N"
    )


def default_backend(jobs: int) -> "Backend":
    """The backend ``jobs`` implies, unless ``$REPRO_BACKEND`` overrides.

    Without the override this preserves the historic behavior exactly:
    ``jobs <= 1`` is serial, more fans out over a process pool.  Shard
    specs are refused here: a sweep that expects full results would get
    ``None`` holes from an env-injected shard (use ``--shard K/N`` or
    construct a ``ShardBackend`` explicitly instead).
    """
    raw = os.environ.get(BACKEND_ENV, "").strip()
    if raw:
        if raw.lower().startswith("shard:"):
            raise ValueError(
                f"${BACKEND_ENV} cannot select a shard backend (full-batch "
                "sweeps would silently lose the skipped cells); use the "
                "CLI's --shard K/N instead"
            )
        return parse_backend(raw, jobs)
    if jobs > 1:
        return ProcessBackend(jobs)
    return SerialBackend()
