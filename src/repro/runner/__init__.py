"""Parallel, shardable sweep execution with persistent result caching.

The paper's evaluation is an embarrassingly-parallel matrix of independent
``(model, sender-count, seed)`` simulation cells.  This package executes
such matrices:

* :mod:`~repro.runner.hashing` — stable content keys for scenario configs
  (dataclass → canonical JSON → sha256);
* :mod:`~repro.runner.cache` — an on-disk :class:`ResultCache` keyed by
  those hashes (simulation *and* prototype results), with GC
  (:meth:`ResultCache.gc` — corruption, age, LRU-by-size under a
  cache-dir lockfile) and inventory stats;
* :mod:`~repro.runner.backends` — the pluggable :class:`Backend` protocol
  and its local strategies, :class:`SerialBackend` and
  :class:`ProcessBackend` (``--jobs N`` / ``$REPRO_JOBS``;
  ``$REPRO_BACKEND`` overrides globally);
* :mod:`~repro.runner.shard` — :class:`ShardBackend`, deterministic
  ``shard K of N`` partitioning of a sweep across machines by config
  hash, shard manifests, and :func:`merge_shards` to assemble the
  machines' cache directories into one result set;
* :mod:`~repro.runner.executor` — :class:`SweepRunner`, the
  cache-and-progress coordinator that drives whichever backend;
* :mod:`~repro.runner.progress` — per-cell :class:`ProgressEvent` stream
  (cells completed, cache hits, ETA) for CLI reporting.

Determinism: every stochastic choice in the simulator derives from the
config's own ``seed`` via named RNG streams (:mod:`repro.sim.rng`), so a
cell's result is a pure function of its config.  Serial, process-pool and
sharded execution therefore produce byte-identical results (the
golden-trace tests pin a digest of them), and a config hash is a sound
cache key on any machine.
"""

from repro.runner.backends import (
    Backend,
    ProcessBackend,
    SerialBackend,
    default_backend,
    parse_backend,
)
from repro.runner.cache import (
    CacheDirLock,
    CacheLockedError,
    GcReport,
    ResultCache,
    default_cache_dir,
    register_result_type,
    results_digest,
)
from repro.runner.executor import SweepRunner, resolve_jobs, runner_from_env
from repro.runner.hashing import canonical_json, config_key
from repro.runner.progress import ProgressEvent, ProgressPrinter
from repro.runner.shard import (
    MergeError,
    MergeReport,
    ShardBackend,
    ShardSpec,
    merge_shards,
    shard_index,
    write_shard_manifest,
)

__all__ = [
    "Backend",
    "CacheDirLock",
    "CacheLockedError",
    "GcReport",
    "MergeError",
    "MergeReport",
    "ProcessBackend",
    "ProgressEvent",
    "ProgressPrinter",
    "ResultCache",
    "SerialBackend",
    "ShardBackend",
    "ShardSpec",
    "SweepRunner",
    "canonical_json",
    "config_key",
    "default_backend",
    "default_cache_dir",
    "merge_shards",
    "parse_backend",
    "register_result_type",
    "resolve_jobs",
    "results_digest",
    "runner_from_env",
    "shard_index",
    "write_shard_manifest",
]
