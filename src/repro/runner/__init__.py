"""Parallel sweep execution with persistent result caching.

The paper's evaluation is an embarrassingly-parallel matrix of independent
``(model, sender-count, seed)`` simulation cells.  This package executes
such matrices:

* :mod:`~repro.runner.hashing` — stable content keys for scenario configs
  (dataclass → canonical JSON → sha256);
* :mod:`~repro.runner.cache` — an on-disk :class:`ResultCache` keyed by
  those hashes, so repeated figure regenerations and CI runs skip cells
  they have already computed;
* :mod:`~repro.runner.executor` — :class:`SweepRunner`, which fans cells
  out over a ``ProcessPoolExecutor`` (``--jobs N`` / ``REPRO_JOBS``,
  default serial) while preserving input order and determinism;
* :mod:`~repro.runner.progress` — per-cell :class:`ProgressEvent` stream
  (cells completed, cache hits, ETA) for CLI reporting.

Determinism: every stochastic choice in the simulator derives from the
config's own ``seed`` via named RNG streams (:mod:`repro.sim.rng`), so a
cell's result is a pure function of its config.  Parallel and serial
execution therefore produce byte-identical results, and a config hash is a
sound cache key.
"""

from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.executor import SweepRunner, resolve_jobs, runner_from_env
from repro.runner.hashing import canonical_json, config_key
from repro.runner.progress import ProgressEvent, ProgressPrinter

__all__ = [
    "ProgressEvent",
    "ProgressPrinter",
    "ResultCache",
    "SweepRunner",
    "canonical_json",
    "config_key",
    "default_cache_dir",
    "resolve_jobs",
    "runner_from_env",
]
