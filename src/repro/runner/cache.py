"""On-disk cache of experiment results, keyed by config hash.

One cache entry is one JSON file ``<sha256>.json`` under the cache
directory, holding the schema version, the canonical config JSON (for
debuggability — ``jq .config`` shows exactly what produced an entry), a
``result_type`` tag, and the serialized result.  Two result types are
registered out of the box: simulation
:class:`~repro.stats.metrics.RunResult` records and (via
:mod:`repro.testbed.experiment`) prototype ``PrototypeResult``
measurements; further types register through
:func:`register_result_type`.

Robustness rules:

* **Writes are atomic** (temp file + ``os.replace``), so a killed run
  never leaves a half-written entry behind.
* **Reads never trust the file**: any unreadable, truncated, schema-stale
  or otherwise malformed entry is treated as a miss, deleted, and
  recomputed — a corrupted cache can cost time, never correctness.
* **GC never races writers**: :meth:`ResultCache.gc` takes a cache-dir
  lockfile (two GCs cannot interleave) and skips *in-flight* entries —
  files younger than a grace window that a live sweep may have just
  written.  Sweeps themselves stay lock-free: their atomic writes plus
  the grace window make concurrent GC safe, and a cell GC'd immediately
  after being written costs a recompute, never a wrong result.

The default location is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import time
import typing
import warnings

from repro.runner.hashing import CACHE_SCHEMA_VERSION, canonical_json, config_key
from repro.stats.metrics import RunResult

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Name of the GC lockfile inside a cache directory.
GC_LOCK_NAME = "gc.lock"

#: Entries younger than this are treated as in-flight during GC: a
#: concurrent sweep may have just written them, so eviction policies
#: (LRU, corruption) leave them alone.
GC_GRACE_S = 60.0


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, or ``~/.cache/repro`` when unset."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


# ---------------------------------------------------------------------------
# Result-type registry: what the cache knows how to (de)serialize.
# ---------------------------------------------------------------------------


def result_to_dict(result: RunResult) -> dict[str, typing.Any]:
    """Serialize a :class:`RunResult` to plain JSON-encodable data."""
    return dataclasses.asdict(result)


def result_from_dict(data: dict[str, typing.Any]) -> RunResult:
    """Rebuild a :class:`RunResult`; raises on missing/unknown fields."""
    field_names = {field.name for field in dataclasses.fields(RunResult)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(f"unknown RunResult fields: {sorted(unknown)}")
    return RunResult(**data)


@dataclasses.dataclass(frozen=True)
class ResultTypeSpec:
    """How the cache serializes one result class."""

    name: str
    cls: type
    to_dict: typing.Callable[[typing.Any], dict[str, typing.Any]]
    from_dict: typing.Callable[[dict[str, typing.Any]], typing.Any]


_RESULT_TYPES: dict[str, ResultTypeSpec] = {}


def register_result_type(
    cls: type,
    to_dict: typing.Callable[[typing.Any], dict[str, typing.Any]],
    from_dict: typing.Callable[[dict[str, typing.Any]], typing.Any],
) -> None:
    """Teach the cache to store instances of ``cls``.

    Registration is idempotent (module reloads re-register the same
    type).  The class name is the on-disk tag, so renaming a result class
    invalidates its entries — as it should, the payload schema changed.
    """
    _RESULT_TYPES[cls.__name__] = ResultTypeSpec(
        cls.__name__, cls, to_dict, from_dict
    )


def result_type_for(result: typing.Any) -> ResultTypeSpec:
    """The registered spec serializing ``result``, or ``TypeError``."""
    spec = _RESULT_TYPES.get(type(result).__name__)
    if spec is None or not isinstance(result, spec.cls):
        raise TypeError(
            f"no registered result type for {type(result).__name__!r}; "
            "register_result_type() it before caching"
        )
    return spec


register_result_type(RunResult, result_to_dict, result_from_dict)


def results_digest(results: typing.Sequence[typing.Any]) -> str:
    """A stable sha256 over a sequence of registered results.

    The golden-trace determinism tests pin this digest in-repo: identical
    across backends, processes, platforms and Python versions because it
    goes through the same canonical serialization the cache stores
    (sorted keys, ``repr``-round-tripped floats).
    """
    import hashlib

    payload = [
        {"type": result_type_for(r).name, "result": result_type_for(r).to_dict(r)}
        for r in results
    ]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# GC locking and reports.
# ---------------------------------------------------------------------------


class CacheLockedError(RuntimeError):
    """Another GC holds the cache-dir lock; retry later."""


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe).

    ``PermissionError`` means the pid exists but belongs to another
    user — alive.  Any other failure errs on the side of alive: a lock
    is only broken on positive evidence of death (or old age).
    """
    if pid <= 0:
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


class CacheDirLock:
    """An exclusive advisory lock on a cache directory (``gc.lock``).

    Created with ``O_CREAT | O_EXCL`` so exactly one holder wins; the
    file records pid and timestamp for post-mortems.  A lock is presumed
    orphaned — and broken — when it is older than ``stale_after_s``, or
    immediately when its recorded holder pid no longer names a live
    process (a GC crash would otherwise block every future GC for the
    full staleness window; a long-dead holder for ever, on filesystems
    whose clock skews).  A lock whose pid cannot be read (mid-write, or
    hand-created) falls back to the age policy alone.  Used by GC only —
    result writes are atomic and do not lock.
    """

    def __init__(
        self, directory: str | os.PathLike, stale_after_s: float = 900.0
    ):
        self.path = pathlib.Path(directory) / GC_LOCK_NAME
        self.stale_after_s = stale_after_s
        self._held = False

    def acquire(self) -> None:
        """Take the lock or raise :class:`CacheLockedError`."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for attempt in range(2):
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt == 0 and self._is_stale():
                    # Orphaned by a killed GC; break it and retry once.
                    try:
                        self.path.unlink()
                    except OSError:
                        pass
                    continue
                raise CacheLockedError(
                    f"cache GC already running (lock {self.path}); if no "
                    "GC is alive, delete the lockfile"
                ) from None
            with os.fdopen(fd, "w") as handle:
                json.dump({"pid": os.getpid(), "time": time.time()}, handle)
            self._held = True
            return

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        if self._held:
            self._held = False
            try:
                self.path.unlink()
            except OSError:
                pass

    def _is_stale(self) -> bool:
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            # Vanished between exists-check and stat: holder released it.
            return False
        if age > self.stale_after_s:
            return True
        pid = self._holder_pid()
        return pid is not None and not _pid_alive(pid)

    def _holder_pid(self) -> int | None:
        """The lock's recorded holder pid, or None when unreadable.

        Unreadable covers the holder-just-created race (the file exists
        before its JSON is written) — those locks are only ever broken by
        age.
        """
        try:
            return int(json.loads(self.path.read_text())["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def __enter__(self) -> "CacheDirLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: typing.Any) -> None:
        self.release()


@dataclasses.dataclass
class GcReport:
    """What one :meth:`ResultCache.gc` pass did."""

    scanned: int = 0
    bytes_scanned: int = 0
    evicted_corrupt: int = 0
    evicted_expired: int = 0
    evicted_lru: int = 0
    bytes_freed: int = 0
    skipped_inflight: int = 0
    tmp_removed: int = 0

    @property
    def evicted(self) -> int:
        """Entries removed, over all policies."""
        return self.evicted_corrupt + self.evicted_expired + self.evicted_lru

    @property
    def bytes_after(self) -> int:
        """Entry bytes remaining after the pass."""
        return self.bytes_scanned - self.bytes_freed

    def summary(self) -> str:
        """One-line human rendering for the CLI."""
        return (
            f"scanned {self.scanned} entries ({self.bytes_scanned} B): "
            f"evicted {self.evicted_corrupt} corrupt, "
            f"{self.evicted_expired} expired, {self.evicted_lru} over "
            f"budget ({self.bytes_freed} B freed, {self.bytes_after} B "
            f"kept, {self.skipped_inflight} in-flight skipped, "
            f"{self.tmp_removed} tmp files removed)"
        )


@dataclasses.dataclass
class CacheDiskStats:
    """A point-in-time inventory of a cache directory."""

    directory: str
    entries: int = 0
    total_bytes: int = 0
    by_type: dict[str, int] = dataclasses.field(default_factory=dict)
    corrupt: int = 0
    manifests: int = 0
    oldest_age_s: float | None = None
    newest_age_s: float | None = None
    locked: bool = False

    def summary(self) -> str:
        """Multi-line human rendering for ``repro cache stats``."""
        lines = [
            f"cache {self.directory}: {self.entries} entries, "
            f"{self.total_bytes} B"
        ]
        for name in sorted(self.by_type):
            lines.append(f"  {name}: {self.by_type[name]}")
        if self.corrupt:
            lines.append(f"  corrupt/stale: {self.corrupt}")
        if self.manifests:
            lines.append(f"  shard manifests: {self.manifests}")
        if self.oldest_age_s is not None and self.newest_age_s is not None:
            lines.append(
                f"  entry age: {self.newest_age_s:.0f}s newest, "
                f"{self.oldest_age_s:.0f}s oldest"
            )
        if self.locked:
            lines.append("  GC lock is held")
        return "\n".join(lines)


@dataclasses.dataclass
class CacheStats:
    """Counters of one cache's activity over its lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evicted_corrupt: int = 0
    write_errors: int = 0


class ResultCache:
    """Persistent config-hash → result store.

    Parameters
    ----------
    directory:
        Where entries live; created on first store.  Defaults to
        :func:`default_cache_dir`.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = pathlib.Path(
            directory if directory is not None else default_cache_dir()
        )
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"cache directory {self.directory} exists and is not a "
                "directory"
            )
        self.stats = CacheStats()
        self._sweep_stale_tmp_files()

    def _sweep_stale_tmp_files(self, max_age_s: float = 3600.0) -> int:
        """Remove temp files orphaned by killed writers.

        Only files older than ``max_age_s`` go, so a concurrent run's
        in-flight write is never pulled out from under it.
        """
        if not self.directory.is_dir():
            return 0
        cutoff = time.time() - max_age_s
        removed = 0
        for tmp in self.directory.glob("*.tmp*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def path_for(self, config: typing.Any) -> pathlib.Path:
        """The entry file a config maps to (whether or not it exists)."""
        return self.directory / f"{config_key(config)}.json"

    def get(self, config: typing.Any) -> typing.Any | None:
        """The cached result for ``config``, or ``None`` on a miss.

        Malformed entries are evicted and reported as misses.  Entries of
        a result type this process has not registered (its module is not
        imported) are misses too, but stay on disk — they are valid data
        to some other consumer.
        """
        path = self.path_for(config)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            # UnicodeDecodeError is a ValueError, so binary garbage takes
            # the same eviction path as malformed JSON.
            entry = json.loads(raw.decode())
            if entry["schema"] != CACHE_SCHEMA_VERSION:
                raise ValueError(f"stale cache schema {entry['schema']!r}")
            type_name = entry["result_type"]
            spec = _RESULT_TYPES.get(type_name)
            if spec is None:
                self.stats.misses += 1
                return None
            result = spec.from_dict(entry["result"])
        except (ValueError, KeyError, TypeError):
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: typing.Any, result: typing.Any) -> pathlib.Path:
        """Store ``result`` under ``config``'s key, atomically.

        ``result`` must be of a registered result type.  Write failures
        (disk full, permissions) degrade to a warning — an unusable cache
        must never abort a sweep that is mid-flight with hours of
        completed cells in hand.
        """
        spec = result_type_for(result)
        path = self.path_for(config)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "config": json.loads(canonical_json(config)),
            "result_type": spec.name,
            "result": spec.to_dict(result),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
            os.replace(tmp, path)
        except OSError as error:
            self.stats.write_errors += 1
            if self.stats.write_errors == 1:
                warnings.warn(
                    f"result cache write to {path} failed ({error}); "
                    "continuing without caching",
                    stacklevel=2,
                )
            return path
        self.stats.stores += 1
        return path

    def _evict(self, path: pathlib.Path) -> None:
        self._remove(path)
        self.stats.evicted_corrupt += 1

    @staticmethod
    def _remove(path: pathlib.Path) -> bool:
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def _entry_paths(self) -> list[pathlib.Path]:
        """All entry files, sorted for deterministic scans."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    # -- garbage collection -------------------------------------------------

    def gc(
        self,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
        grace_s: float = GC_GRACE_S,
        now: float | None = None,
    ) -> GcReport:
        """Evict entries: corrupted always, then by age, then LRU to size.

        Policies, in order:

        1. structurally invalid entries (unparseable JSON, stale schema)
           are removed;
        2. ``max_age_s``: entries whose mtime is older are removed;
        3. ``max_bytes``: oldest-mtime entries are removed until the
           surviving total fits (LRU — a cache hit rewrites nothing, but
           re-running a sweep re-``put``s its cells, refreshing mtimes).

        Entries younger than ``grace_s`` are *in-flight*: a concurrent
        sweep may have just written them, so no policy touches them
        (counted in the report instead).  The whole pass holds the
        cache-dir lockfile; a second GC gets :class:`CacheLockedError`.
        Entries vanishing mid-scan (a concurrent writer replacing them)
        are tolerated.  Shard manifests are not entries and are never
        collected.
        """
        report = GcReport()
        if not self.directory.is_dir():
            return report
        now = time.time() if now is None else now
        with CacheDirLock(self.directory):
            report.tmp_removed = self._sweep_stale_tmp_files()
            survivors: list[tuple[float, int, pathlib.Path]] = []
            for path in self._entry_paths():
                try:
                    stat = path.stat()
                except OSError:
                    continue  # vanished mid-scan
                report.scanned += 1
                report.bytes_scanned += stat.st_size
                age = now - stat.st_mtime
                if age < grace_s:
                    report.skipped_inflight += 1
                    continue
                try:
                    entry = json.loads(path.read_bytes().decode())
                    valid = (
                        isinstance(entry, dict)
                        and entry.get("schema") == CACHE_SCHEMA_VERSION
                        and "result" in entry
                        and "result_type" in entry
                    )
                except (OSError, ValueError):
                    valid = False
                if not valid:
                    if self._remove(path):
                        report.evicted_corrupt += 1
                        report.bytes_freed += stat.st_size
                    continue
                if max_age_s is not None and age > max_age_s:
                    if self._remove(path):
                        report.evicted_expired += 1
                        report.bytes_freed += stat.st_size
                    continue
                survivors.append((stat.st_mtime, stat.st_size, path))
            if max_bytes is not None:
                total = report.bytes_after
                for _mtime, size, path in sorted(survivors):
                    if total <= max_bytes:
                        break
                    if self._remove(path):
                        report.evicted_lru += 1
                        report.bytes_freed += size
                        total -= size
        return report

    def disk_stats(self, now: float | None = None) -> CacheDiskStats:
        """Inventory the cache directory (``repro cache stats``)."""
        stats = CacheDiskStats(directory=str(self.directory))
        if not self.directory.is_dir():
            return stats
        now = time.time() if now is None else now
        ages: list[float] = []
        for path in self._entry_paths():
            try:
                stat = path.stat()
                entry = json.loads(path.read_bytes().decode())
                type_name = entry["result_type"]
                if entry["schema"] != CACHE_SCHEMA_VERSION:
                    raise ValueError("stale schema")
            except (OSError, ValueError, KeyError, TypeError):
                stats.corrupt += 1
                continue
            stats.entries += 1
            stats.total_bytes += stat.st_size
            stats.by_type[type_name] = stats.by_type.get(type_name, 0) + 1
            ages.append(now - stat.st_mtime)
        if ages:
            stats.oldest_age_s = max(ages)
            stats.newest_age_s = min(ages)
        from repro.runner.shard import MANIFEST_SUFFIX

        stats.manifests = sum(
            1 for _ in self.directory.glob(f"*{MANIFEST_SUFFIX}")
        )
        lock = self.directory / GC_LOCK_NAME
        stats.locked = lock.exists()
        return stats

    def __len__(self) -> int:
        return len(self._entry_paths())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultCache dir={self.directory} entries={len(self)}>"
