"""On-disk cache of simulation results, keyed by config hash.

One cache entry is one JSON file ``<sha256>.json`` under the cache
directory, holding the schema version, the canonical config JSON (for
debuggability — ``jq .config`` shows exactly what produced an entry) and
the serialized :class:`~repro.stats.metrics.RunResult`.

Robustness rules:

* **Writes are atomic** (temp file + ``os.replace``), so a killed run
  never leaves a half-written entry behind.
* **Reads never trust the file**: any unreadable, truncated, schema-stale
  or otherwise malformed entry is treated as a miss, deleted, and
  recomputed — a corrupted cache can cost time, never correctness.

The default location is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import time
import typing
import warnings

from repro.runner.hashing import CACHE_SCHEMA_VERSION, canonical_json, config_key
from repro.stats.metrics import RunResult

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, or ``~/.cache/repro`` when unset."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def result_to_dict(result: RunResult) -> dict[str, typing.Any]:
    """Serialize a :class:`RunResult` to plain JSON-encodable data."""
    return dataclasses.asdict(result)


def result_from_dict(data: dict[str, typing.Any]) -> RunResult:
    """Rebuild a :class:`RunResult`; raises on missing/unknown fields."""
    field_names = {field.name for field in dataclasses.fields(RunResult)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(f"unknown RunResult fields: {sorted(unknown)}")
    return RunResult(**data)


@dataclasses.dataclass
class CacheStats:
    """Counters of one cache's activity over its lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evicted_corrupt: int = 0
    write_errors: int = 0


class ResultCache:
    """Persistent config-hash → :class:`RunResult` store.

    Parameters
    ----------
    directory:
        Where entries live; created on first store.  Defaults to
        :func:`default_cache_dir`.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = pathlib.Path(
            directory if directory is not None else default_cache_dir()
        )
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"cache directory {self.directory} exists and is not a "
                "directory"
            )
        self.stats = CacheStats()
        self._sweep_stale_tmp_files()

    def _sweep_stale_tmp_files(self, max_age_s: float = 3600.0) -> None:
        """Remove temp files orphaned by killed writers.

        Only files older than ``max_age_s`` go, so a concurrent run's
        in-flight write is never pulled out from under it.
        """
        if not self.directory.is_dir():
            return
        cutoff = time.time() - max_age_s
        for tmp in self.directory.glob("*.tmp*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:
                pass

    def path_for(self, config: typing.Any) -> pathlib.Path:
        """The entry file a config maps to (whether or not it exists)."""
        return self.directory / f"{config_key(config)}.json"

    def get(self, config: typing.Any) -> RunResult | None:
        """The cached result for ``config``, or ``None`` on a miss.

        Malformed entries are evicted and reported as misses.
        """
        path = self.path_for(config)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            # UnicodeDecodeError is a ValueError, so binary garbage takes
            # the same eviction path as malformed JSON.
            entry = json.loads(raw.decode())
            if entry["schema"] != CACHE_SCHEMA_VERSION:
                raise ValueError(f"stale cache schema {entry['schema']!r}")
            result = result_from_dict(entry["result"])
        except (ValueError, KeyError, TypeError):
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: typing.Any, result: RunResult) -> pathlib.Path:
        """Store ``result`` under ``config``'s key, atomically.

        Write failures (disk full, permissions) degrade to a warning —
        an unusable cache must never abort a sweep that is mid-flight
        with hours of completed cells in hand.
        """
        path = self.path_for(config)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "config": json.loads(canonical_json(config)),
            "result": result_to_dict(result),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
            os.replace(tmp, path)
        except OSError as error:
            self.stats.write_errors += 1
            if self.stats.write_errors == 1:
                warnings.warn(
                    f"result cache write to {path} failed ({error}); "
                    "continuing without caching",
                    stacklevel=2,
                )
            return path
        self.stats.stores += 1
        return path

    def _evict(self, path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.evicted_corrupt += 1

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultCache dir={self.directory} entries={len(self)}>"
