"""The shared wireless medium: propagation, collisions and overhearing.

One :class:`Medium` models one frequency channel; the dual-radio scenarios
create two (the paper assumes the sensor and 802.11 radios operate on
non-overlapping channels).

Model
-----
* **Propagation** — pluggable (:mod:`repro.channel.propagation`).  The
  default is the paper's unit-disc model: audible exactly within each
  sender's nominal range.  Log-normal shadowing and distance-dependent
  PRR models can be swapped in per channel; they decide audibility (and
  optionally a per-frame decode roll) while the medium keeps timing,
  collisions and energy accounting.  Frames take ``total_bits / rate``
  seconds on the air.
* **Collisions** — receiver-centric: a unicast reception fails if another
  transmission audible at the receiver overlaps it in time (including the
  receiver's own transmissions — radios are half-duplex).  This models the
  hidden-terminal losses that carrier sensing cannot prevent.
* **Capture** — an overlapping transmission only corrupts the frame when
  the interferer is not markedly weaker than the wanted signal.  With
  distance-based power (path loss exponent ~3.5) an interferer at
  ``capture_ratio`` times the sender's distance is ≈8 dB down and the
  receiver captures the wanted frame — the behaviour real CC2420 and
  802.11 receivers (and the classic ns-2 model) exhibit.  Set
  ``capture_ratio=None`` for the pessimistic any-overlap-kills model.
* **Random loss** — an optional per-frame Bernoulli loss applied on top of
  collisions (:class:`LossModel`), plus whatever per-frame reception the
  propagation model rolls (e.g. distance-dependent PRR).
* **Overhearing** — every *listening* neighbour of the sender is charged
  reception energy for the frame via its radio's accounting hook; the
  evaluation models then include or exclude those charges (Sensor-ideal vs
  Sensor-header, Section 4).

Performance
-----------
The medium never schedules per-neighbour events: one start and one end
event per transmission, with set arithmetic over the (small) set of
concurrently active transmissions.  Audible sets come from a
:class:`~repro.channel.index.NeighborIndex` built once after registration
(layouts are immutable, so the index never invalidates mid-run): neighbor
lists are cached tuples and reachability/carrier-sense membership checks
are O(1), replacing the historical per-node O(n) scans.
"""

from __future__ import annotations

import typing

from repro.channel.index import NeighborIndex
from repro.channel.propagation import PropagationModel, UnitDiscPropagation
from repro.mac.frames import Frame
from repro.topology.layout import Layout

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.radio import RadioPort
    from repro.sim.simulator import Simulator


class LossModel:
    """Independent Bernoulli frame loss.

    Parameters
    ----------
    probability:
        Chance that an otherwise successful frame is lost (0 disables).
    rng:
        Random stream used for loss draws.
    """

    def __init__(self, probability: float = 0.0, rng: typing.Any = None):
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {probability}")
        self.probability = probability
        self._rng = rng

    def is_lost(self) -> bool:
        """Draw one loss decision."""
        if self.probability <= 0.0:
            return False
        return self._rng.random() < self.probability


class Transmission:
    """Bookkeeping record for one in-flight frame.

    The record doubles as its own end-of-frame callback (appended to the
    end event's callback list directly), saving a closure allocation per
    frame on the hottest medium path.
    """

    __slots__ = (
        "medium",
        "sender",
        "frame",
        "start_s",
        "end_s",
        "corrupted",
        "receiver_listening",
    )

    def __init__(
        self,
        medium: "Medium",
        sender: "RadioPort",
        frame: Frame,
        start_s: float,
        end_s: float,
        receiver_listening: bool,
    ):
        self.medium = medium
        self.sender = sender
        self.frame = frame
        self.start_s = start_s
        self.end_s = end_s
        #: Set when another audible transmission overlapped at the receiver.
        self.corrupted = False
        #: Whether the addressed receiver could hear when the frame started.
        self.receiver_listening = receiver_listening

    def __call__(self, _event: typing.Any) -> None:
        self.medium._finish(self)


class Medium:
    """One radio channel shared by a set of registered radio ports.

    Parameters
    ----------
    sim:
        The simulation kernel.
    layout:
        Node placement (positions are looked up per node id).
    name:
        Channel label, used for RNG stream naming and traces.
    loss:
        Optional random-loss model applied to otherwise successful frames.
    propagation:
        Optional :class:`~repro.channel.propagation.PropagationModel`;
        defaults to the paper's unit-disc model over ``layout``.
    """

    #: Default capture threshold as a distance ratio: an interferer farther
    #: than 1.7x the sender's distance is ~8 dB weaker (path loss ~3.5) and
    #: does not corrupt the reception.  DSSS radios reject co-channel
    #: interference much harder — the CC2420 datasheet specifies ~3 dB
    #: co-channel rejection, i.e. a ratio near
    #: :data:`CC2420_CAPTURE_RATIO` — so the sensor channel uses that.
    DEFAULT_CAPTURE_RATIO = 1.7

    #: Distance-ratio equivalent of the CC2420's 3 dB co-channel rejection
    #: at path-loss exponent 3.5 (10^(3/35)).
    CC2420_CAPTURE_RATIO = 1.25

    def __init__(
        self,
        sim: "Simulator",
        layout: Layout,
        name: str = "channel",
        loss: LossModel | None = None,
        capture_ratio: float | None = DEFAULT_CAPTURE_RATIO,
        propagation: PropagationModel | None = None,
    ):
        self.sim = sim
        self.layout = layout
        self.name = name
        self.loss = loss or LossModel(0.0)
        self.propagation = propagation or UnitDiscPropagation(layout)
        if capture_ratio is not None and capture_ratio < 1.0:
            raise ValueError("capture_ratio must be >= 1 (or None)")
        self.capture_ratio = capture_ratio
        self._ports: dict[int, "RadioPort"] = {}
        self._active: list[Transmission] = []
        #: Precomputed audible sets; built lazily after the last register.
        self._index: NeighborIndex | None = None
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_collided = 0
        self.frames_lost = 0

    # -- registration ------------------------------------------------------

    def register(self, port: "RadioPort") -> None:
        """Attach a radio port; one port per node per medium."""
        if port.node_id in self._ports:
            raise ValueError(
                f"node {port.node_id} already has a radio on medium {self.name!r}"
            )
        if port.node_id not in self.layout:
            raise ValueError(f"node {port.node_id} is not in the layout")
        self._ports[port.node_id] = port
        self._index = None

    def port(self, node_id: int) -> "RadioPort":
        """The radio port registered for ``node_id``."""
        return self._ports[node_id]

    def _neighbor_index(self) -> NeighborIndex:
        index = self._index
        if index is None:
            index = NeighborIndex(self.layout, self._ports, self.propagation)
            self._index = index
        return index

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        """Registered nodes audible from ``node_id`` (precomputed tuple)."""
        if node_id not in self._ports:
            raise KeyError(node_id)
        return self._neighbor_index().neighbors(node_id)

    def is_neighbor(self, sender_id: int, listener_id: int) -> bool:
        """Whether ``listener_id`` can hear ``sender_id`` (O(1) lookup)."""
        return self._neighbor_index().is_neighbor(sender_id, listener_id)

    # -- carrier sensing -----------------------------------------------------

    def is_busy_for(self, node_id: int) -> bool:
        """Whether ``node_id`` senses the channel busy right now.

        True if any active transmission is audible at the listener's
        position (energy detection), or the listener is itself sending.
        """
        active = self._active
        if not active:
            return False
        is_neighbor = self._neighbor_index().is_neighbor
        for tx in active:
            sender_id = tx.sender.node_id
            if sender_id == node_id or is_neighbor(sender_id, node_id):
                return True
        return False

    # -- transmission ------------------------------------------------------

    def transmit(self, sender: "RadioPort", frame: Frame) -> "typing.Any":
        """Put ``frame`` on the air from ``sender``; returns the end event.

        The caller (the radio) is responsible for putting itself into the
        transmitting state for the returned duration; the medium handles
        interference, delivery and receiver-side energy.
        """
        duration = sender.airtime(frame)
        start = self.sim.now
        end = start + duration
        receiver_port = (
            self._ports.get(frame.dst) if not frame.is_broadcast else None
        )
        record = Transmission(
            self,
            sender,
            frame,
            start,
            end,
            receiver_listening=(
                receiver_port.is_listening if receiver_port is not None else False
            ),
        )
        self.frames_sent += 1

        # Interference bookkeeping against currently active transmissions.
        for other in self._active:
            # The new transmission corrupts ongoing receptions whose
            # receiver hears this sender too loudly to reject it.
            if not other.frame.is_broadcast and not other.corrupted:
                if self._corrupts(interferer=sender, victim=other):
                    other.corrupted = True
            # Ongoing transmissions corrupt the new one if audible at its
            # receiver (this includes the receiver itself transmitting).
            if receiver_port is not None and not record.corrupted:
                if self._corrupts(interferer=other.sender, victim=record):
                    record.corrupted = True

        self._active.append(record)
        end_event = self.sim.timeout(duration)
        end_event.callbacks.append(record)
        return end_event

    def _corrupts(self, interferer: "RadioPort", victim: Transmission) -> bool:
        """Whether ``interferer``'s signal ruins ``victim``'s reception.

        The interferer must be audible at the victim's receiver, and — when
        capture is enabled — not far enough away for the receiver to reject
        it.  A receiver that is itself transmitting (distance 0) is always
        corrupted: radios are half-duplex.
        """
        victim_rx = victim.frame.dst
        if victim_rx == interferer.node_id:
            return True
        if victim_rx not in self._ports:
            return False
        if not self._neighbor_index().is_neighbor(interferer.node_id, victim_rx):
            return False
        if self.capture_ratio is None:
            return True
        rx_pos = self.layout.position(victim_rx)
        signal_distance = self.layout.position(
            victim.sender.node_id
        ).distance_to(rx_pos)
        interference_distance = self.layout.position(
            interferer.node_id
        ).distance_to(rx_pos)
        return interference_distance < self.capture_ratio * signal_distance

    def _finish(self, record: Transmission) -> None:
        """End-of-frame: deliver (or not) and charge receiver-side energy."""
        self._active.remove(record)
        frame = record.frame
        sender_id = record.sender.node_id
        duration = record.end_s - record.start_s
        ports = self._ports
        index = self._neighbor_index()
        audible = index.neighbors(sender_id)
        is_broadcast = frame.is_broadcast
        frame_dst = frame.dst

        # Receiver-side energy for everyone who heard the frame.  Charged
        # whether or not the frame decodes: the radio listened regardless.
        # Promiscuous listeners additionally get a copy of frames addressed
        # elsewhere (approximation: decodability at third parties follows
        # the addressed receiver's collision outcome).
        for neighbor_id in audible:
            port = ports[neighbor_id]
            if not port.is_listening:
                continue
            addressed = neighbor_id == frame_dst or is_broadcast
            port.charge_reception(frame, duration, addressed=addressed)
            if port.promiscuous and not addressed and not record.corrupted:
                port.deliver_overheard(frame)

        if is_broadcast:
            loss = self.loss
            delivery_roll = self.propagation.delivery_roll
            for neighbor_id in audible:
                port = ports[neighbor_id]
                if (
                    port.is_listening
                    and not loss.is_lost()
                    and delivery_roll(record.sender, neighbor_id)
                ):
                    port.deliver(frame)
            self.frames_delivered += 1
            return

        port = ports.get(frame_dst)
        if port is None:
            return
        in_reach = index.is_neighbor(sender_id, frame_dst)
        if not in_reach or not record.receiver_listening or not port.is_listening:
            return
        if record.corrupted:
            self.frames_collided += 1
            return
        if self.loss.is_lost():
            self.frames_lost += 1
            return
        if not self.propagation.delivery_roll(record.sender, frame.dst):
            self.frames_lost += 1
            return
        self.frames_delivered += 1
        port.deliver(frame)
