"""The shared wireless medium: propagation, collisions and overhearing.

One :class:`Medium` models one frequency channel; the dual-radio scenarios
create two (the paper assumes the sensor and 802.11 radios operate on
non-overlapping channels).

Model
-----
* **Propagation** — pluggable (:mod:`repro.channel.propagation`).  The
  default is the paper's unit-disc model: audible exactly within each
  sender's nominal range.  Log-normal shadowing and distance-dependent
  PRR models can be swapped in per channel; they decide audibility (and
  optionally a per-frame decode roll) while the medium keeps timing,
  collisions and energy accounting.  Frames take ``total_bits / rate``
  seconds on the air.
* **Collisions** — receiver-centric: a reception fails if another
  transmission audible at the receiver overlaps it in time (including the
  receiver's own transmissions — radios are half-duplex).  This models the
  hidden-terminal losses that carrier sensing cannot prevent.  Broadcast
  frames are checked per receiver: each overlapping transmission is
  recorded while the broadcast is on the air, and at end-of-frame every
  audible listener independently applies the same overlap/capture test a
  unicast receiver would.
* **Capture** — an overlapping transmission only corrupts the frame when
  the interferer is not markedly weaker than the wanted signal.  With
  distance-based power (path loss exponent ~3.5) an interferer at
  ``capture_ratio`` times the sender's distance is ≈8 dB down and the
  receiver captures the wanted frame — the behaviour real CC2420 and
  802.11 receivers (and the classic ns-2 model) exhibit.  Set
  ``capture_ratio=None`` for the pessimistic any-overlap-kills model.
* **Random loss** — an optional per-frame Bernoulli loss applied on top of
  collisions (:class:`LossModel`), plus whatever per-frame reception the
  propagation model rolls (e.g. distance-dependent PRR).
* **Overhearing** — every *listening* neighbour of the sender is charged
  reception energy for the frame via its radio's accounting hook; the
  evaluation models then include or exclude those charges (Sensor-ideal vs
  Sensor-header, Section 4).

Performance
-----------
The medium never schedules per-neighbour events: one start and one end
event per transmission.  Audible sets come from a
:class:`~repro.channel.index.NeighborIndex` built once after registration
(layouts are immutable, so on the no-fault path the index never
invalidates mid-run; fault injection instead *repairs* it in place — see
"Topology epochs" below), and both hot paths are batched over its
registration-order rank arrays:

* **Carrier sense is an O(1) read.**  ``transmit`` increments and
  ``_finish`` decrements one busy refcount per *audibility group* (ports
  with identical closed audible sets share a counter — see
  :class:`~repro.channel.index.NeighborIndex`), so :meth:`is_busy_for`
  indexes one array cell instead of scanning the active-transmission
  list per query, and a dense cell pays one counter update per frame
  instead of one per audible neighbor.
* **Delivery is one batched pass.**  :meth:`_finish` walks the sender's
  cached neighbor-rank tuple with every lookup hoisted: listening states
  come from a flat per-rank array that radios keep current through
  :meth:`note_state` at their (rare) state transitions, and receiver-side
  energy for a homogeneous fleet metered by one
  :class:`~repro.energy.meter.MeterBank` is charged through a single
  column batch op
  (:meth:`~repro.energy.meter.MeterBank.charge_reception_fanout`) whose
  per-frame charge plan is computed once instead of re-derived per
  receiver.  The batch op replays per-node charge order exactly, so
  golden digests are unchanged; heterogeneous port stacks (mixed radio
  classes, specs or meters) fall back to the historical per-port loop
  with identical behaviour.

Topology epochs
---------------
Fault injection makes the fleet mortal without touching the no-fault hot
path.  :meth:`retire_node` / :meth:`restore_node` (node churn) and
:meth:`set_link` (scripted link up/down) bump :attr:`topology_epoch` and
repair state incrementally: the neighbor index refilters only the
affected audible sets (:meth:`NeighborIndex.retire_node`), in-flight
frames from a dying sender are *aborted* (their end event still pops,
but end-of-frame processing is skipped — no delivery, no charges), and
the busy refcounts are replayed over the surviving active records
against the repaired audibility groups — the same replay
:meth:`_build_index` runs for a mid-flight registration.  Routing tables
consume the epoch through their own ``invalidate_epoch`` API; a run that
never injects a fault never executes any of this.
"""

from __future__ import annotations

import typing

from repro.channel.index import NeighborIndex
from repro.channel.propagation import PropagationModel, UnitDiscPropagation
from repro.mac.frames import BROADCAST, Frame
from repro.topology.layout import Layout

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.radio import RadioPort
    from repro.sim.simulator import Simulator


class LossModel:
    """Independent Bernoulli frame loss.

    Parameters
    ----------
    probability:
        Chance that an otherwise successful frame is lost (0 disables).
    rng:
        Random stream used for loss draws.  Required whenever
        ``probability`` is nonzero — validated here so a missing stream
        fails at construction rather than as an ``AttributeError`` on the
        first mid-run draw.
    """

    def __init__(self, probability: float = 0.0, rng: typing.Any = None):
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {probability}")
        if probability > 0.0 and rng is None:
            raise ValueError(
                f"a loss probability of {probability} requires an rng"
            )
        self.probability = probability
        self._rng = rng

    def is_lost(self) -> bool:
        """Draw one loss decision."""
        if self.probability <= 0.0:
            return False
        return self._rng.random() < self.probability


#: Upper bound on recycled Transmission records retained per medium.
_RECORD_POOL_MAX = 64


class Transmission:
    """Bookkeeping record for one in-flight frame.

    The record doubles as its own end-of-frame callback (appended to the
    end event's callback list directly), saving a closure allocation per
    frame on the hottest medium path — and recycles itself through the
    medium's record pool after end-of-frame processing.
    """

    __slots__ = (
        "medium",
        "sender",
        "frame",
        "start_s",
        "end_s",
        "corrupted",
        "receiver_listening",
        "busy_ranks",
        "busy_groups",
        "interferers",
        "deaf_ranks",
        "aborted",
    )

    def __init__(
        self,
        medium: "Medium",
        sender: "RadioPort",
        frame: Frame,
        start_s: float,
        end_s: float,
        receiver_listening: bool,
    ):
        self.medium = medium
        self.sender = sender
        self.frame = frame
        self.start_s = start_s
        self.end_s = end_s
        #: Set when another audible transmission overlapped at the receiver
        #: (unicast frames only; broadcasts track interferers per receiver).
        self.corrupted = False
        #: Whether the addressed receiver could hear when the frame started.
        self.receiver_listening = receiver_listening
        #: The sender's audible ranks (the index's shared tuple — no
        #: per-frame allocation); delivery fans out over these.
        self.busy_ranks: tuple[int, ...] = ()
        #: Audibility-group ids whose busy refcount this record
        #: incremented (also an index-owned shared tuple).
        self.busy_groups: tuple[int, ...] = ()
        #: Broadcast only: sender ports of every transmission that
        #: overlapped this one, checked per receiver at end-of-frame.
        self.interferers: list["RadioPort"] | None = None
        #: Broadcast only: audible ranks that were not listening at frame
        #: start (they missed the preamble and cannot sync, mirroring the
        #: unicast ``receiver_listening`` snapshot); None when all heard it.
        self.deaf_ranks: frozenset[int] | None = None
        #: Set by :meth:`Medium.retire_node` when the sender dies
        #: mid-frame: the end event still pops, but ``_finish`` skips
        #: end-of-frame processing entirely (the busy-refcount replay
        #: already excluded the record).
        self.aborted = False

    def __call__(self, _event: typing.Any) -> None:
        medium = self.medium
        medium._finish(self)
        # The record is dead after _finish (nothing else references it):
        # drop the payload references and recycle it so the next transmit
        # skips the allocation.  The record stays valid in the end event's
        # already-dispatched callback slot — it is never called twice.
        self.sender = None
        self.frame = None
        self.interferers = None
        self.deaf_ranks = None
        pool = medium._record_pool
        if len(pool) < _RECORD_POOL_MAX:
            pool.append(self)


class Medium:
    """One radio channel shared by a set of registered radio ports.

    Parameters
    ----------
    sim:
        The simulation kernel.
    layout:
        Node placement (positions are looked up per node id).
    name:
        Channel label, used for RNG stream naming and traces.
    loss:
        Optional random-loss model applied to otherwise successful frames.
    propagation:
        Optional :class:`~repro.channel.propagation.PropagationModel`;
        defaults to the paper's unit-disc model over ``layout``.
    """

    #: Default capture threshold as a distance ratio: an interferer farther
    #: than 1.7x the sender's distance is ~8 dB weaker (path loss ~3.5) and
    #: does not corrupt the reception.  DSSS radios reject co-channel
    #: interference much harder — the CC2420 datasheet specifies ~3 dB
    #: co-channel rejection, i.e. a ratio near
    #: :data:`CC2420_CAPTURE_RATIO` — so the sensor channel uses that.
    DEFAULT_CAPTURE_RATIO = 1.7

    #: Distance-ratio equivalent of the CC2420's 3 dB co-channel rejection
    #: at path-loss exponent 3.5 (10^(3/35)).
    CC2420_CAPTURE_RATIO = 1.25

    def __init__(
        self,
        sim: "Simulator",
        layout: Layout,
        name: str = "channel",
        loss: LossModel | None = None,
        capture_ratio: float | None = DEFAULT_CAPTURE_RATIO,
        propagation: PropagationModel | None = None,
    ):
        self.sim = sim
        #: Bound once: transmit creates one end event per frame and the
        #: two attribute hops are measurable at contention scale.
        self._timeout = sim.timeout
        self.layout = layout
        self.name = name
        self.loss = loss or LossModel(0.0)
        self.propagation = propagation or UnitDiscPropagation(layout)
        if capture_ratio is not None and capture_ratio < 1.0:
            raise ValueError("capture_ratio must be >= 1 (or None)")
        self.capture_ratio = capture_ratio
        self._ports: dict[int, "RadioPort"] = {}
        self._active: list[Transmission] = []
        #: Precomputed audible sets; built lazily after the last register.
        #: The three per-rank arrays below share its lifetime: they are
        #: rebuilt with it and invalidated with it, so ``_index is not
        #: None`` implies all of them are populated.
        self._index: NeighborIndex | None = None
        #: Per-audibility-group count of active transmissions audible at
        #: the group's ports (their own included) — the O(1) carrier-sense
        #: read.  ``_busy_group_of`` maps a port's rank to its group.
        self._busy: list[int] | None = None
        self._busy_group_of: list[int] | None = None
        #: Per-rank ``is_listening`` mirror, updated by :meth:`note_state`.
        self._listening: list[bool] | None = None
        #: ``(bank, bank_row_by_rank)`` when the fleet is homogeneous
        #: enough for batched energy fanout; None forces the generic loop.
        self._fanout: tuple[typing.Any, list[int]] | None = None
        #: Ranks of promiscuous ports (index lifetime, like ``_listening``);
        #: an empty set lets delivery skip the overhear pass entirely, and
        #: a small one touches only actual overhearers instead of scanning
        #: every listener per frame.  ``_promiscuous_sorted`` caches the
        #: ascending-rank iteration order the historical per-listener scan
        #: used (rebuilt lazily after mutation).
        self._promiscuous: set[int] | None = None
        self._promiscuous_sorted: tuple[int, ...] | None = None
        #: Recycled Transmission records (see ``Transmission.__call__``).
        self._record_pool: list[Transmission] = []
        #: Memoized reception-charge column plans for the batched fanout
        #: path, keyed by ``(header_bits, duration, addressed)``.  Valid
        #: only while the fanout precondition holds (every port shares one
        #: spec/class), which is exactly when the memo is consulted;
        #: cleared on registration alongside the fanout itself.
        self._charges_memo: dict[
            tuple[int, float, bool], list[tuple[float, list[float], list[int]]]
        ] = {}
        #: Memoized interference verdicts keyed (interferer, sender, rx)
        #: node ids — run constants while the port set is stable; cleared
        #: on registration with the index (see :meth:`_interferes`).
        self._interferes_memo: dict[tuple[int, int, int], bool] = {}
        #: Bumped by every retire/restore/set_link; routing tables compare
        #: against it to decide whether their memos are stale.  A no-fault
        #: run leaves it at 0 forever.
        self.topology_epoch = 0
        #: Source of truth for fault state: a mid-run ``register`` nulls
        #: the index, so the rebuild must reapply these to the fresh one.
        self._retired: set[int] = set()
        self._links_down: set[tuple[int, int]] = set()
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_collided = 0
        self.frames_lost = 0

    # -- registration ------------------------------------------------------

    def register(self, port: "RadioPort") -> None:
        """Attach a radio port; one port per node per medium."""
        if port.node_id in self._ports:
            raise ValueError(
                f"node {port.node_id} already has a radio on medium {self.name!r}"
            )
        if port.node_id not in self.layout:
            raise ValueError(f"node {port.node_id} is not in the layout")
        self._ports[port.node_id] = port
        self._index = None
        self._busy = None
        self._busy_group_of = None
        self._listening = None
        self._fanout = None
        self._promiscuous = None
        self._promiscuous_sorted = None
        self._charges_memo.clear()
        self._interferes_memo.clear()

    def port(self, node_id: int) -> "RadioPort":
        """The radio port registered for ``node_id``."""
        return self._ports[node_id]

    def _neighbor_index(self) -> NeighborIndex:
        index = self._index
        if index is None:
            index = self._build_index()
        return index

    def _build_index(self) -> NeighborIndex:
        """Build the neighbor index and the per-rank arrays tied to it."""
        # Runtime import: the radio module only needs the medium for type
        # checking, so importing it here cannot cycle.
        from repro.energy.meter import NodeMeter
        from repro.radio.radio import HighPowerRadio, LowPowerRadio, RadioPort

        index = NeighborIndex(self.layout, self._ports, self.propagation)
        # Reapply fault state to the fresh index: a register() after a
        # retire must not resurrect the retired node's audibility.
        for node_id in sorted(self._retired):
            index.retire_node(node_id)
        for a, b in sorted(self._links_down):
            index.set_link(a, b, up=False)
        ports = index.ports_by_rank
        for rank, port in enumerate(ports):
            port._medium_rank = rank
        self._listening = [port.is_listening for port in ports]
        # Busy refcounts replay the increments of whatever is still on the
        # air (registration mid-flight rebuilds audibility, so each active
        # record's rank and group tuples are refreshed alongside).  Aborted
        # records are dead weight awaiting their end event and hold no
        # refcounts.
        busy = [0] * index.n_groups
        for record in self._active:
            if record.aborted:
                continue
            sender_id = record.sender.node_id
            record.busy_ranks = index.neighbor_ranks(sender_id)
            record.busy_groups = groups = index.busy_groups(sender_id)
            for group in groups:
                busy[group] += 1
        self._busy = busy
        self._busy_group_of = index.group_of_rank
        self._promiscuous = {
            rank for rank, port in enumerate(ports) if port.promiscuous
        }
        self._promiscuous_sorted = None
        # Batched energy fanout needs one charge plan to fit every
        # receiver: identical concrete radio class (exact — subclasses may
        # override accounting), shared spec and component, and all meters
        # rows of one MeterBank.  The scenario builder's fleets qualify;
        # anything else takes the per-port loop.
        self._fanout = None
        if ports:
            first = ports[0]
            cls = type(first)
            if (
                cls in (LowPowerRadio, HighPowerRadio)
                and cls.charge_reception is RadioPort.charge_reception
                and all(
                    type(port) is cls
                    and port.spec is first.spec
                    and port.component == first.component
                    and type(port.meter) is NodeMeter
                    and port.meter.bank is first.meter.bank
                    for port in ports
                )
            ):
                rows = [port.meter.index for port in ports]
                if len(set(rows)) == len(rows):
                    self._fanout = (first.meter.bank, rows)
        self._index = index
        return index

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        """Registered nodes audible from ``node_id`` (precomputed tuple)."""
        if node_id not in self._ports:
            raise KeyError(node_id)
        return self._neighbor_index().neighbors(node_id)

    def is_neighbor(self, sender_id: int, listener_id: int) -> bool:
        """Whether ``listener_id`` can hear ``sender_id`` (O(1) lookup)."""
        return self._neighbor_index().is_neighbor(sender_id, listener_id)

    # -- port state notifications ------------------------------------------

    def note_state(self, port: "RadioPort") -> None:
        """Mirror ``port.is_listening`` into the per-rank array.

        Radios call this at every listening-state transition (transmit
        start/end, wake completion, sleep), which is what lets delivery
        read a flat array instead of calling n properties per frame.
        """
        listening = self._listening
        if listening is not None:
            listening[port._medium_rank] = port.is_listening

    def note_promiscuous(self, port: "RadioPort") -> None:
        """Record that ``port`` wants overheard frames.

        Before the index exists there is nothing to mirror — the build
        collects promiscuous flags from the ports directly.
        """
        promiscuous = self._promiscuous
        if promiscuous is not None and port._medium_rank >= 0:
            promiscuous.add(port._medium_rank)
            self._promiscuous_sorted = None

    # -- carrier sensing -----------------------------------------------------

    def is_busy_for(self, node_id: int) -> bool:
        """Whether ``node_id`` senses the channel busy right now.

        True if any active transmission is audible at the listener's
        position (energy detection), or the listener is itself sending.
        O(1): reads the group busy refcount ``transmit``/``_finish``
        maintain.
        """
        if not self._active:
            return False
        if self._busy is None:
            self._neighbor_index()
        port = self._ports.get(node_id)
        if port is None:
            return False
        return self._busy[self._busy_group_of[port._medium_rank]] > 0

    # -- topology epochs ---------------------------------------------------

    def retire_node(self, node_id: int) -> None:
        """Take ``node_id`` off the air: abort its in-flight frames and
        repair audibility, busy refcounts and the listening bitmap.

        The port stays registered — :meth:`restore_node` brings it back.
        Callers power down the node's radio/MAC first, so its
        ``is_listening`` already reads False by the time delivery looks.
        """
        if node_id not in self._ports:
            raise KeyError(node_id)
        if node_id in self._retired:
            raise ValueError(f"node {node_id} is already retired")
        self._retired.add(node_id)
        for record in self._active:
            if not record.aborted and record.sender.node_id == node_id:
                record.aborted = True
        index = self._index
        if index is None:
            # No index yet: the next build reapplies ``_retired`` wholesale.
            self.topology_epoch += 1
            return
        index.retire_node(node_id)
        rank = self._ports[node_id]._medium_rank
        self._listening[rank] = False
        promiscuous = self._promiscuous
        if promiscuous is not None and rank in promiscuous:
            promiscuous.discard(rank)
            self._promiscuous_sorted = None
        self._repair_after_topology_change(index)

    def restore_node(self, node_id: int) -> None:
        """Bring a retired ``node_id`` back on the air."""
        if node_id not in self._ports:
            raise KeyError(node_id)
        if node_id not in self._retired:
            raise ValueError(f"node {node_id} is not retired")
        self._retired.discard(node_id)
        index = self._index
        if index is None:
            self.topology_epoch += 1
            return
        index.restore_node(node_id)
        port = self._ports[node_id]
        rank = port._medium_rank
        self._listening[rank] = port.is_listening
        if port.promiscuous and self._promiscuous is not None:
            self._promiscuous.add(rank)
            self._promiscuous_sorted = None
        self._repair_after_topology_change(index)

    def set_link(self, a: int, b: int, up: bool) -> None:
        """Force the ``a``–``b`` link down (or back up) regardless of range."""
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a} twice")
        if a not in self._ports:
            raise KeyError(a)
        if b not in self._ports:
            raise KeyError(b)
        key = (a, b) if a < b else (b, a)
        if up:
            if key not in self._links_down:
                raise ValueError(f"link {a}-{b} is not down")
            self._links_down.discard(key)
        else:
            if key in self._links_down:
                raise ValueError(f"link {a}-{b} is already down")
            self._links_down.add(key)
        index = self._index
        if index is None:
            self.topology_epoch += 1
            return
        index.set_link(a, b, up=up)
        self._repair_after_topology_change(index)

    def _repair_after_topology_change(self, index: NeighborIndex) -> None:
        """Replay busy refcounts against the repaired audibility groups.

        The same replay :meth:`_build_index` runs for a mid-flight
        registration: surviving records refresh their rank/group tuples,
        aborted ones hold nothing.  The interference memo is cleared
        wholesale — verdicts between surviving nodes would stay valid,
        but faults are rare enough that a cold memo beats proving which
        triples survived.
        """
        busy = [0] * index.n_groups
        for record in self._active:
            if record.aborted:
                continue
            sender_id = record.sender.node_id
            record.busy_ranks = index.neighbor_ranks(sender_id)
            record.busy_groups = groups = index.busy_groups(sender_id)
            for group in groups:
                busy[group] += 1
        self._busy = busy
        self._busy_group_of = index.group_of_rank
        self._interferes_memo.clear()
        self.topology_epoch += 1

    # -- transmission ------------------------------------------------------

    def transmit(
        self,
        sender: "RadioPort",
        frame: Frame,
        duration: float | None = None,
    ) -> "typing.Any":
        """Put ``frame`` on the air from ``sender``; returns the end event.

        The caller (the radio) is responsible for putting itself into the
        transmitting state for the returned duration; the medium handles
        interference, delivery and receiver-side energy.  ``duration`` is
        the frame's airtime when the caller already computed it (the radio
        needs it for accounting); None recomputes it here.
        """
        if duration is None:
            duration = sender.airtime(frame)
        start = self.sim.now
        end = start + duration
        # frame.dst == BROADCAST inlines the is_broadcast property — this
        # method and _finish run once per frame and the descriptor call
        # shows up at contention scale.
        is_broadcast = frame.dst == BROADCAST
        receiver_port = (
            self._ports.get(frame.dst) if not is_broadcast else None
        )
        receiver_listening = (
            receiver_port.is_listening if receiver_port is not None else False
        )
        pool = self._record_pool
        if pool:
            record = pool.pop()
            record.sender = sender
            record.frame = frame
            record.start_s = start
            record.end_s = end
            record.corrupted = False
            record.receiver_listening = receiver_listening
            record.busy_ranks = ()
            record.busy_groups = ()
            record.interferers = None
            record.deaf_ranks = None
            record.aborted = False
        else:
            record = Transmission(
                self,
                sender,
                frame,
                start,
                end,
                receiver_listening=receiver_listening,
            )
        self.frames_sent += 1
        index = self._index
        if index is None:
            index = self._build_index()

        # Interference bookkeeping against currently active transmissions.
        # Unicast victims resolve immediately (their receiver is known);
        # broadcast records instead accumulate the overlapping senders and
        # resolve per receiver at end-of-frame.
        if is_broadcast:
            record.interferers = []
        corrupts = self._corrupts
        for other in self._active:
            # The new transmission corrupts ongoing receptions whose
            # receiver hears this sender too loudly to reject it.
            if other.frame.dst == BROADCAST:
                other.interferers.append(sender)
            elif not other.corrupted and corrupts(
                interferer=sender, victim=other
            ):
                other.corrupted = True
            # Ongoing transmissions corrupt the new one if audible at its
            # receiver (this includes the receiver itself transmitting).
            if is_broadcast:
                record.interferers.append(other.sender)
            elif receiver_port is not None and not record.corrupted:
                if corrupts(interferer=other.sender, victim=record):
                    record.corrupted = True

        # Direct dict reads over the index's per-node tuples: these two
        # lookups run once per frame on the hottest path in the codebase.
        sender_id = sender.node_id
        record.busy_ranks = ranks = index._neighbor_ranks[sender_id]
        record.busy_groups = groups = index._busy_groups[sender_id]
        busy = self._busy
        for group in groups:
            busy[group] += 1
        if is_broadcast:
            ports_by_rank = index.ports_by_rank
            deaf = [
                rank for rank in ranks if not ports_by_rank[rank].is_listening
            ]
            if deaf:
                record.deaf_ranks = frozenset(deaf)

        self._active.append(record)
        end_event = self._timeout(duration)
        end_event.callbacks.append(record)
        return end_event

    def _corrupts(self, interferer: "RadioPort", victim: Transmission) -> bool:
        """Whether ``interferer``'s signal ruins ``victim``'s reception.

        The interferer must be audible at the victim's receiver, and — when
        capture is enabled — not far enough away for the receiver to reject
        it.  A receiver that is itself transmitting (distance 0) is always
        corrupted: radios are half-duplex.

        The interference memo is consulted inline rather than through
        :meth:`_interferes`: this runs per overlapping transmission pair
        and the extra call frame is measurable under heavy contention.
        """
        victim_rx = victim.frame.dst
        interferer_id = interferer.node_id
        if victim_rx == interferer_id:
            return True
        sender = victim.sender
        key = (interferer_id, sender.node_id, victim_rx)
        memo = self._interferes_memo
        try:
            # Hit-dominated after warmup: the triples recur every overlap.
            return memo[key]
        except KeyError:
            pass
        if victim_rx not in self._ports:
            return False
        verdict = memo[key] = self._interferes_uncached(
            interferer_id, sender, victim_rx
        )
        return verdict

    def _interferes(
        self, interferer: "RadioPort", sender: "RadioPort", rx_id: int
    ) -> bool:
        """The receiver-centric overlap/capture test at node ``rx_id``.

        Memoized: the layout is immutable and the audibility index only
        changes on registration (which clears the memo), so the verdict
        for a ``(interferer, sender, rx)`` triple is a run constant.  On
        contention-heavy cells the same triples recur for every frame
        overlap, making this one of the hottest calls in the run.
        """
        interferer_id = interferer.node_id
        if rx_id == interferer_id:
            return True
        key = (interferer_id, sender.node_id, rx_id)
        memo = self._interferes_memo
        verdict = memo.get(key)
        if verdict is not None:
            return verdict
        verdict = self._interferes_uncached(interferer_id, sender, rx_id)
        memo[key] = verdict
        return verdict

    def _interferes_uncached(
        self, interferer_id: int, sender: "RadioPort", rx_id: int
    ) -> bool:
        if not self._neighbor_index().is_neighbor(interferer_id, rx_id):
            return False
        if self.capture_ratio is None:
            return True
        rx_pos = self.layout.position(rx_id)
        signal_distance = self.layout.position(
            sender.node_id
        ).distance_to(rx_pos)
        interference_distance = self.layout.position(
            interferer_id
        ).distance_to(rx_pos)
        return interference_distance < self.capture_ratio * signal_distance

    def _reception_plan(
        self,
        bank: typing.Any,
        sender: "RadioPort",
        frame: Frame,
        duration: float,
        addressed: bool,
    ) -> list[tuple[float, list[float], list[int]]]:
        """Memoized column plan for the batched fanout path.

        :meth:`RadioPort.reception_charges` is a pure function of the
        radio's spec and the frame's shape, and the fanout precondition
        guarantees every port on this medium shares one spec — so frames
        of one size (almost all of them: data frames and ACKs each come
        in one shape per run) resolve straight to the bank's cached
        column plan instead of recomputing the same float arithmetic and
        column lookups hundreds of thousands of times.
        """
        key = (frame.header_bits, duration, addressed)
        plan = self._charges_memo.get(key)
        if plan is None:
            plan = self._charges_memo[key] = bank.fanout_plan(
                sender.component,
                sender.reception_charges(frame, duration, addressed=addressed),
            )
        return plan

    def _broadcast_corrupted(self, record: Transmission, rx_id: int) -> bool:
        """Whether any recorded interferer ruins ``record`` at ``rx_id``."""
        sender = record.sender
        for interferer in record.interferers:
            if self._interferes(interferer, sender, rx_id):
                return True
        return False

    def _finish(self, record: Transmission) -> None:
        """End-of-frame: deliver (or not) and charge receiver-side energy."""
        self._active.remove(record)
        if record.aborted:
            # The sender died mid-frame: the topology repair already
            # dropped this record's busy refcounts and nobody decodes a
            # truncated frame, so there is nothing to deliver or charge.
            return
        sender = record.sender
        busy = self._busy
        if busy is not None:
            for group in record.busy_groups:
                busy[group] -= 1

        frame = record.frame
        sender_id = sender.node_id
        duration = record.end_s - record.start_s
        # transmit() built the index before this record existed; a rebuild
        # only happens if someone registered mid-flight.
        index = self._index
        if index is None:
            index = self._build_index()
        frame_dst = frame.dst
        is_broadcast = frame_dst == BROADCAST
        # The ranks this record made busy are exactly the sender's audible
        # ranks (refreshed by _build_index on a mid-flight rebuild) — no
        # second index lookup needed.
        ranks = record.busy_ranks
        ports_by_rank = index.ports_by_rank

        # Receiver-side energy for everyone who heard the frame.  Charged
        # whether or not the frame decodes: the radio listened regardless.
        # Promiscuous listeners additionally get a copy of frames addressed
        # elsewhere (approximation: decodability at third parties follows
        # the addressed receiver's collision outcome).
        fanout = self._fanout
        if fanout is not None:
            bank, rows = fanout
            listening = self._listening
            # One fused pass: filter listeners and map them to bank rows
            # (the promiscuous walk below rebuilds the rank list only in
            # the rare run that needs it).
            listener_rows = [rows[rank] for rank in ranks if listening[rank]]
            if listener_rows:
                if is_broadcast:
                    bank.apply_fanout(
                        listener_rows,
                        self._reception_plan(bank, sender, frame, duration, True),
                    )
                else:
                    dst_port = self._ports.get(frame_dst)
                    bank.apply_fanout(
                        listener_rows,
                        self._reception_plan(
                            bank, sender, frame, duration, False
                        ),
                        special_row=(
                            rows[dst_port._medium_rank]
                            if dst_port is not None
                            else -1
                        ),
                        special_plan=self._reception_plan(
                            bank, sender, frame, duration, True
                        ),
                    )
                    promiscuous = self._promiscuous
                    if promiscuous and not record.corrupted:
                        # Intersect the promiscuous rank set with the
                        # sender's audible listeners, walking whichever
                        # side is smaller; both walks visit overhearers
                        # in the same ascending-rank order the historical
                        # per-listener scan used.
                        if len(promiscuous) <= len(listener_rows):
                            overhearers = self._promiscuous_sorted
                            if overhearers is None:
                                overhearers = self._promiscuous_sorted = (
                                    tuple(sorted(promiscuous))
                                )
                            for rank in overhearers:
                                if not listening[rank]:
                                    continue
                                port = ports_by_rank[rank]
                                node_id = port.node_id
                                if node_id != frame_dst and index.is_neighbor(
                                    sender_id, node_id
                                ):
                                    port.deliver_overheard(frame)
                        else:
                            for rank in ranks:
                                if rank in promiscuous and listening[rank]:
                                    port = ports_by_rank[rank]
                                    if port.node_id != frame_dst:
                                        port.deliver_overheard(frame)
        else:
            ports = self._ports
            for neighbor_id in index.neighbors(sender_id):
                port = ports[neighbor_id]
                if not port.is_listening:
                    continue
                addressed = neighbor_id == frame_dst or is_broadcast
                port.charge_reception(frame, duration, addressed=addressed)
                if port.promiscuous and not addressed and not record.corrupted:
                    port.deliver_overheard(frame)

        # Loss and propagation rolls are hoisted behind cheap flag reads:
        # is_lost() without a configured probability and delivery_roll()
        # on a non-rolling model draw nothing and always pass, so skipping
        # the calls is behaviour-identical and saves two method calls per
        # delivered frame.
        loss = self.loss
        lossy = loss.probability > 0.0
        propagation = self.propagation
        rolls = propagation.rolls_delivery

        if is_broadcast:
            deaf = record.deaf_ranks
            interferers = record.interferers
            for rank in ranks:
                port = ports_by_rank[rank]
                if not port.is_listening:
                    continue
                if deaf is not None and rank in deaf:
                    continue
                if interferers and self._broadcast_corrupted(
                    record, port.node_id
                ):
                    self.frames_collided += 1
                    continue
                if lossy and loss.is_lost():
                    self.frames_lost += 1
                    continue
                if rolls and not propagation.delivery_roll(
                    sender, port.node_id
                ):
                    self.frames_lost += 1
                    continue
                self.frames_delivered += 1
                port.deliver(frame)
            return

        port = self._ports.get(frame_dst)
        if port is None:
            return
        in_reach = frame_dst in index._members[sender_id]
        if not in_reach or not record.receiver_listening or not port.is_listening:
            return
        if record.corrupted:
            self.frames_collided += 1
            return
        if lossy and loss.is_lost():
            self.frames_lost += 1
            return
        if rolls and not propagation.delivery_roll(sender, frame_dst):
            self.frames_lost += 1
            return
        self.frames_delivered += 1
        port.deliver(frame)
