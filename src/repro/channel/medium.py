"""The shared wireless medium: propagation, collisions and overhearing.

One :class:`Medium` models one frequency channel; the dual-radio scenarios
create two (the paper assumes the sensor and 802.11 radios operate on
non-overlapping channels).

Model
-----
* **Propagation** — pluggable (:mod:`repro.channel.propagation`).  The
  default is the paper's unit-disc model: audible exactly within each
  sender's nominal range.  Log-normal shadowing and distance-dependent
  PRR models can be swapped in per channel; they decide audibility (and
  optionally a per-frame decode roll) while the medium keeps timing,
  collisions and energy accounting.  Frames take ``total_bits / rate``
  seconds on the air.
* **Collisions** — receiver-centric: a reception fails if another
  transmission audible at the receiver overlaps it in time (including the
  receiver's own transmissions — radios are half-duplex).  This models the
  hidden-terminal losses that carrier sensing cannot prevent.  Broadcast
  frames are checked per receiver: each overlapping transmission is
  recorded while the broadcast is on the air, and at end-of-frame every
  audible listener independently applies the same overlap/capture test a
  unicast receiver would.
* **Capture** — an overlapping transmission only corrupts the frame when
  the interferer is not markedly weaker than the wanted signal.  With
  distance-based power (path loss exponent ~3.5) an interferer at
  ``capture_ratio`` times the sender's distance is ≈8 dB down and the
  receiver captures the wanted frame — the behaviour real CC2420 and
  802.11 receivers (and the classic ns-2 model) exhibit.  Set
  ``capture_ratio=None`` for the pessimistic any-overlap-kills model.
* **Random loss** — an optional per-frame Bernoulli loss applied on top of
  collisions (:class:`LossModel`), plus whatever per-frame reception the
  propagation model rolls (e.g. distance-dependent PRR).
* **Overhearing** — every *listening* neighbour of the sender is charged
  reception energy for the frame via its radio's accounting hook; the
  evaluation models then include or exclude those charges (Sensor-ideal vs
  Sensor-header, Section 4).

Performance
-----------
The medium never schedules per-neighbour events: one start and one end
event per transmission.  Audible sets come from a
:class:`~repro.channel.index.NeighborIndex` built once after registration
(layouts are immutable, so the index never invalidates mid-run), and both
hot paths are batched over its registration-order rank arrays:

* **Carrier sense is an O(1) read.**  ``transmit`` increments and
  ``_finish`` decrements a per-port busy refcount over the sender's
  audible ranks, so :meth:`is_busy_for` indexes one array cell instead of
  scanning the active-transmission list per query.
* **Delivery is one batched pass.**  :meth:`_finish` walks the sender's
  cached neighbor-rank tuple with every lookup hoisted: listening states
  come from a flat per-rank array that radios keep current through
  :meth:`note_state` at their (rare) state transitions, and receiver-side
  energy for a homogeneous fleet metered by one
  :class:`~repro.energy.meter.MeterBank` is charged through a single
  column batch op
  (:meth:`~repro.energy.meter.MeterBank.charge_reception_fanout`) whose
  per-frame charge plan is computed once instead of re-derived per
  receiver.  The batch op replays per-node charge order exactly, so
  golden digests are unchanged; heterogeneous port stacks (mixed radio
  classes, specs or meters) fall back to the historical per-port loop
  with identical behaviour.
"""

from __future__ import annotations

import typing

from repro.channel.index import NeighborIndex
from repro.channel.propagation import PropagationModel, UnitDiscPropagation
from repro.mac.frames import Frame
from repro.topology.layout import Layout

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.radio import RadioPort
    from repro.sim.simulator import Simulator


class LossModel:
    """Independent Bernoulli frame loss.

    Parameters
    ----------
    probability:
        Chance that an otherwise successful frame is lost (0 disables).
    rng:
        Random stream used for loss draws.  Required whenever
        ``probability`` is nonzero — validated here so a missing stream
        fails at construction rather than as an ``AttributeError`` on the
        first mid-run draw.
    """

    def __init__(self, probability: float = 0.0, rng: typing.Any = None):
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {probability}")
        if probability > 0.0 and rng is None:
            raise ValueError(
                f"a loss probability of {probability} requires an rng"
            )
        self.probability = probability
        self._rng = rng

    def is_lost(self) -> bool:
        """Draw one loss decision."""
        if self.probability <= 0.0:
            return False
        return self._rng.random() < self.probability


class Transmission:
    """Bookkeeping record for one in-flight frame.

    The record doubles as its own end-of-frame callback (appended to the
    end event's callback list directly), saving a closure allocation per
    frame on the hottest medium path.
    """

    __slots__ = (
        "medium",
        "sender",
        "frame",
        "start_s",
        "end_s",
        "corrupted",
        "receiver_listening",
        "busy_ranks",
        "interferers",
        "deaf_ranks",
    )

    def __init__(
        self,
        medium: "Medium",
        sender: "RadioPort",
        frame: Frame,
        start_s: float,
        end_s: float,
        receiver_listening: bool,
    ):
        self.medium = medium
        self.sender = sender
        self.frame = frame
        self.start_s = start_s
        self.end_s = end_s
        #: Set when another audible transmission overlapped at the receiver
        #: (unicast frames only; broadcasts track interferers per receiver).
        self.corrupted = False
        #: Whether the addressed receiver could hear when the frame started.
        self.receiver_listening = receiver_listening
        #: Neighbor ranks whose busy refcount this record incremented
        #: (the index's shared tuple — no per-frame allocation).
        self.busy_ranks: tuple[int, ...] = ()
        #: Broadcast only: sender ports of every transmission that
        #: overlapped this one, checked per receiver at end-of-frame.
        self.interferers: list["RadioPort"] | None = None
        #: Broadcast only: audible ranks that were not listening at frame
        #: start (they missed the preamble and cannot sync, mirroring the
        #: unicast ``receiver_listening`` snapshot); None when all heard it.
        self.deaf_ranks: frozenset[int] | None = None

    def __call__(self, _event: typing.Any) -> None:
        self.medium._finish(self)


class Medium:
    """One radio channel shared by a set of registered radio ports.

    Parameters
    ----------
    sim:
        The simulation kernel.
    layout:
        Node placement (positions are looked up per node id).
    name:
        Channel label, used for RNG stream naming and traces.
    loss:
        Optional random-loss model applied to otherwise successful frames.
    propagation:
        Optional :class:`~repro.channel.propagation.PropagationModel`;
        defaults to the paper's unit-disc model over ``layout``.
    """

    #: Default capture threshold as a distance ratio: an interferer farther
    #: than 1.7x the sender's distance is ~8 dB weaker (path loss ~3.5) and
    #: does not corrupt the reception.  DSSS radios reject co-channel
    #: interference much harder — the CC2420 datasheet specifies ~3 dB
    #: co-channel rejection, i.e. a ratio near
    #: :data:`CC2420_CAPTURE_RATIO` — so the sensor channel uses that.
    DEFAULT_CAPTURE_RATIO = 1.7

    #: Distance-ratio equivalent of the CC2420's 3 dB co-channel rejection
    #: at path-loss exponent 3.5 (10^(3/35)).
    CC2420_CAPTURE_RATIO = 1.25

    def __init__(
        self,
        sim: "Simulator",
        layout: Layout,
        name: str = "channel",
        loss: LossModel | None = None,
        capture_ratio: float | None = DEFAULT_CAPTURE_RATIO,
        propagation: PropagationModel | None = None,
    ):
        self.sim = sim
        self.layout = layout
        self.name = name
        self.loss = loss or LossModel(0.0)
        self.propagation = propagation or UnitDiscPropagation(layout)
        if capture_ratio is not None and capture_ratio < 1.0:
            raise ValueError("capture_ratio must be >= 1 (or None)")
        self.capture_ratio = capture_ratio
        self._ports: dict[int, "RadioPort"] = {}
        self._active: list[Transmission] = []
        #: Precomputed audible sets; built lazily after the last register.
        #: The three per-rank arrays below share its lifetime: they are
        #: rebuilt with it and invalidated with it, so ``_index is not
        #: None`` implies all of them are populated.
        self._index: NeighborIndex | None = None
        #: Per-rank count of active transmissions audible at that port
        #: (including its own) — the O(1) carrier-sense read.
        self._busy: list[int] | None = None
        #: Per-rank ``is_listening`` mirror, updated by :meth:`note_state`.
        self._listening: list[bool] | None = None
        #: ``(bank, bank_row_by_rank)`` when the fleet is homogeneous
        #: enough for batched energy fanout; None forces the generic loop.
        self._fanout: tuple[typing.Any, list[int]] | None = None
        #: False lets delivery skip the per-listener promiscuous scan.
        self._any_promiscuous = False
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_collided = 0
        self.frames_lost = 0

    # -- registration ------------------------------------------------------

    def register(self, port: "RadioPort") -> None:
        """Attach a radio port; one port per node per medium."""
        if port.node_id in self._ports:
            raise ValueError(
                f"node {port.node_id} already has a radio on medium {self.name!r}"
            )
        if port.node_id not in self.layout:
            raise ValueError(f"node {port.node_id} is not in the layout")
        self._ports[port.node_id] = port
        self._index = None
        self._busy = None
        self._listening = None
        self._fanout = None

    def port(self, node_id: int) -> "RadioPort":
        """The radio port registered for ``node_id``."""
        return self._ports[node_id]

    def _neighbor_index(self) -> NeighborIndex:
        index = self._index
        if index is None:
            index = self._build_index()
        return index

    def _build_index(self) -> NeighborIndex:
        """Build the neighbor index and the per-rank arrays tied to it."""
        # Runtime import: the radio module only needs the medium for type
        # checking, so importing it here cannot cycle.
        from repro.energy.meter import NodeMeter
        from repro.radio.radio import HighPowerRadio, LowPowerRadio, RadioPort

        index = NeighborIndex(self.layout, self._ports, self.propagation)
        ports = index.ports_by_rank
        for rank, port in enumerate(ports):
            port._medium_rank = rank
        self._listening = [port.is_listening for port in ports]
        # Busy refcounts replay the increments of whatever is still on the
        # air (registration mid-flight rebuilds audibility, so each active
        # record's rank tuple is refreshed alongside).
        busy = [0] * len(ports)
        for record in self._active:
            ranks = index.neighbor_ranks(record.sender.node_id)
            record.busy_ranks = ranks
            busy[record.sender._medium_rank] += 1
            for rank in ranks:
                busy[rank] += 1
        self._busy = busy
        self._any_promiscuous = any(port.promiscuous for port in ports)
        # Batched energy fanout needs one charge plan to fit every
        # receiver: identical concrete radio class (exact — subclasses may
        # override accounting), shared spec and component, and all meters
        # rows of one MeterBank.  The scenario builder's fleets qualify;
        # anything else takes the per-port loop.
        self._fanout = None
        if ports:
            first = ports[0]
            cls = type(first)
            if (
                cls in (LowPowerRadio, HighPowerRadio)
                and cls.charge_reception is RadioPort.charge_reception
                and all(
                    type(port) is cls
                    and port.spec is first.spec
                    and port.component == first.component
                    and type(port.meter) is NodeMeter
                    and port.meter.bank is first.meter.bank
                    for port in ports
                )
            ):
                rows = [port.meter.index for port in ports]
                if len(set(rows)) == len(rows):
                    self._fanout = (first.meter.bank, rows)
        self._index = index
        return index

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        """Registered nodes audible from ``node_id`` (precomputed tuple)."""
        if node_id not in self._ports:
            raise KeyError(node_id)
        return self._neighbor_index().neighbors(node_id)

    def is_neighbor(self, sender_id: int, listener_id: int) -> bool:
        """Whether ``listener_id`` can hear ``sender_id`` (O(1) lookup)."""
        return self._neighbor_index().is_neighbor(sender_id, listener_id)

    # -- port state notifications ------------------------------------------

    def note_state(self, port: "RadioPort") -> None:
        """Mirror ``port.is_listening`` into the per-rank array.

        Radios call this at every listening-state transition (transmit
        start/end, wake completion, sleep), which is what lets delivery
        read a flat array instead of calling n properties per frame.
        """
        listening = self._listening
        if listening is not None:
            listening[port._medium_rank] = port.is_listening

    def note_promiscuous(self, port: "RadioPort") -> None:
        """Record that at least one port wants overheard frames."""
        self._any_promiscuous = True

    # -- carrier sensing -----------------------------------------------------

    def is_busy_for(self, node_id: int) -> bool:
        """Whether ``node_id`` senses the channel busy right now.

        True if any active transmission is audible at the listener's
        position (energy detection), or the listener is itself sending.
        O(1): reads the busy refcount ``transmit``/``_finish`` maintain.
        """
        if not self._active:
            return False
        if self._busy is None:
            self._neighbor_index()
        port = self._ports.get(node_id)
        return port is not None and self._busy[port._medium_rank] > 0

    # -- transmission ------------------------------------------------------

    def transmit(self, sender: "RadioPort", frame: Frame) -> "typing.Any":
        """Put ``frame`` on the air from ``sender``; returns the end event.

        The caller (the radio) is responsible for putting itself into the
        transmitting state for the returned duration; the medium handles
        interference, delivery and receiver-side energy.
        """
        duration = sender.airtime(frame)
        start = self.sim.now
        end = start + duration
        is_broadcast = frame.is_broadcast
        receiver_port = (
            self._ports.get(frame.dst) if not is_broadcast else None
        )
        record = Transmission(
            self,
            sender,
            frame,
            start,
            end,
            receiver_listening=(
                receiver_port.is_listening if receiver_port is not None else False
            ),
        )
        self.frames_sent += 1
        index = self._neighbor_index()

        # Interference bookkeeping against currently active transmissions.
        # Unicast victims resolve immediately (their receiver is known);
        # broadcast records instead accumulate the overlapping senders and
        # resolve per receiver at end-of-frame.
        if is_broadcast:
            record.interferers = []
        for other in self._active:
            # The new transmission corrupts ongoing receptions whose
            # receiver hears this sender too loudly to reject it.
            if other.frame.is_broadcast:
                other.interferers.append(sender)
            elif not other.corrupted and self._corrupts(
                interferer=sender, victim=other
            ):
                other.corrupted = True
            # Ongoing transmissions corrupt the new one if audible at its
            # receiver (this includes the receiver itself transmitting).
            if is_broadcast:
                record.interferers.append(other.sender)
            elif receiver_port is not None and not record.corrupted:
                if self._corrupts(interferer=other.sender, victim=record):
                    record.corrupted = True

        ranks = index.neighbor_ranks(sender.node_id)
        record.busy_ranks = ranks
        busy = self._busy
        busy[sender._medium_rank] += 1
        for rank in ranks:
            busy[rank] += 1
        if is_broadcast:
            ports_by_rank = index.ports_by_rank
            deaf = [
                rank for rank in ranks if not ports_by_rank[rank].is_listening
            ]
            if deaf:
                record.deaf_ranks = frozenset(deaf)

        self._active.append(record)
        end_event = self.sim.timeout(duration)
        end_event.callbacks.append(record)
        return end_event

    def _corrupts(self, interferer: "RadioPort", victim: Transmission) -> bool:
        """Whether ``interferer``'s signal ruins ``victim``'s reception.

        The interferer must be audible at the victim's receiver, and — when
        capture is enabled — not far enough away for the receiver to reject
        it.  A receiver that is itself transmitting (distance 0) is always
        corrupted: radios are half-duplex.
        """
        victim_rx = victim.frame.dst
        if victim_rx == interferer.node_id:
            return True
        if victim_rx not in self._ports:
            return False
        return self._interferes(interferer, victim.sender, victim_rx)

    def _interferes(
        self, interferer: "RadioPort", sender: "RadioPort", rx_id: int
    ) -> bool:
        """The receiver-centric overlap/capture test at node ``rx_id``."""
        if rx_id == interferer.node_id:
            return True
        if not self._neighbor_index().is_neighbor(interferer.node_id, rx_id):
            return False
        if self.capture_ratio is None:
            return True
        rx_pos = self.layout.position(rx_id)
        signal_distance = self.layout.position(
            sender.node_id
        ).distance_to(rx_pos)
        interference_distance = self.layout.position(
            interferer.node_id
        ).distance_to(rx_pos)
        return interference_distance < self.capture_ratio * signal_distance

    def _broadcast_corrupted(self, record: Transmission, rx_id: int) -> bool:
        """Whether any recorded interferer ruins ``record`` at ``rx_id``."""
        sender = record.sender
        for interferer in record.interferers:
            if self._interferes(interferer, sender, rx_id):
                return True
        return False

    def _finish(self, record: Transmission) -> None:
        """End-of-frame: deliver (or not) and charge receiver-side energy."""
        self._active.remove(record)
        sender = record.sender
        busy = self._busy
        if busy is not None:
            busy[sender._medium_rank] -= 1
            for rank in record.busy_ranks:
                busy[rank] -= 1

        frame = record.frame
        sender_id = sender.node_id
        duration = record.end_s - record.start_s
        index = self._neighbor_index()
        is_broadcast = frame.is_broadcast
        frame_dst = frame.dst
        ranks = index.neighbor_ranks(sender_id)
        ports_by_rank = index.ports_by_rank

        # Receiver-side energy for everyone who heard the frame.  Charged
        # whether or not the frame decodes: the radio listened regardless.
        # Promiscuous listeners additionally get a copy of frames addressed
        # elsewhere (approximation: decodability at third parties follows
        # the addressed receiver's collision outcome).
        fanout = self._fanout
        if fanout is not None:
            bank, rows = fanout
            listening = self._listening
            listeners = [rank for rank in ranks if listening[rank]]
            if listeners:
                if is_broadcast:
                    bank.charge_reception_fanout(
                        [rows[rank] for rank in listeners],
                        sender.component,
                        sender.reception_charges(frame, duration, addressed=True),
                    )
                else:
                    dst_port = self._ports.get(frame_dst)
                    bank.charge_reception_fanout(
                        [rows[rank] for rank in listeners],
                        sender.component,
                        sender.reception_charges(frame, duration, addressed=False),
                        special_row=(
                            rows[dst_port._medium_rank]
                            if dst_port is not None
                            else -1
                        ),
                        special_charges=sender.reception_charges(
                            frame, duration, addressed=True
                        ),
                    )
                    if self._any_promiscuous and not record.corrupted:
                        for rank in listeners:
                            port = ports_by_rank[rank]
                            if port.promiscuous and port.node_id != frame_dst:
                                port.deliver_overheard(frame)
        else:
            ports = self._ports
            for neighbor_id in index.neighbors(sender_id):
                port = ports[neighbor_id]
                if not port.is_listening:
                    continue
                addressed = neighbor_id == frame_dst or is_broadcast
                port.charge_reception(frame, duration, addressed=addressed)
                if port.promiscuous and not addressed and not record.corrupted:
                    port.deliver_overheard(frame)

        if is_broadcast:
            loss = self.loss
            delivery_roll = self.propagation.delivery_roll
            deaf = record.deaf_ranks
            interferers = record.interferers
            for rank in ranks:
                port = ports_by_rank[rank]
                if not port.is_listening:
                    continue
                if deaf is not None and rank in deaf:
                    continue
                if interferers and self._broadcast_corrupted(
                    record, port.node_id
                ):
                    self.frames_collided += 1
                    continue
                if loss.is_lost():
                    self.frames_lost += 1
                    continue
                if not delivery_roll(sender, port.node_id):
                    self.frames_lost += 1
                    continue
                self.frames_delivered += 1
                port.deliver(frame)
            return

        port = self._ports.get(frame_dst)
        if port is None:
            return
        in_reach = index.is_neighbor(sender_id, frame_dst)
        if not in_reach or not record.receiver_listening or not port.is_listening:
            return
        if record.corrupted:
            self.frames_collided += 1
            return
        if self.loss.is_lost():
            self.frames_lost += 1
            return
        if not self.propagation.delivery_roll(sender, frame_dst):
            self.frames_lost += 1
            return
        self.frames_delivered += 1
        port.deliver(frame)
