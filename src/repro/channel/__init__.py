"""Wireless channel: shared media, propagation, collisions, random loss."""

from repro.channel.index import NeighborIndex
from repro.channel.medium import LossModel, Medium, Transmission
from repro.channel.propagation import (
    PROPAGATION,
    DistancePrr,
    LogNormalShadowing,
    PropagationModel,
    PropagationSpec,
    UnitDiscPropagation,
    build_propagation,
)

__all__ = [
    "DistancePrr",
    "LogNormalShadowing",
    "LossModel",
    "Medium",
    "NeighborIndex",
    "PROPAGATION",
    "PropagationModel",
    "PropagationSpec",
    "Transmission",
    "UnitDiscPropagation",
    "build_propagation",
]
