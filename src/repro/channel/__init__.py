"""Wireless channel: shared media, propagation, collisions, random loss."""

from repro.channel.medium import LossModel, Medium, Transmission

__all__ = ["LossModel", "Medium", "Transmission"]
