"""A precomputed neighbor index for static deployments.

Layouts are immutable and radios never move, so each port's audible set is
fixed for the whole run.  The historical :meth:`Medium.neighbors` rebuilt
that set with an O(n) scan per node (and answered "is dst in reach?" with
an O(degree) list search per unicast frame).  :class:`NeighborIndex`
computes every audible set in one pass over a spatial hash — O(n · k) for
k candidates per cell neighborhood instead of O(n²) — and serves

* :meth:`neighbors` — the audible set as a cached tuple, ordered by port
  registration order (byte-compatible with the historical scan, which
  iterated the registration dict);
* :meth:`is_neighbor` — O(1) membership via per-node frozensets;
* the batch-delivery arrays the medium's hot path iterates:
  :meth:`neighbor_ranks` (each audible set as dense registration-order
  ranks) plus :attr:`ports_by_rank` (rank → port object), so one frame's
  delivery is a single pass over int tuples and list indexing with no
  per-receiver dict hops; and
* the carrier-sense *audibility groups*: when audibility is symmetric,
  two ports whose closed audible sets (``N(u) | {u}``) are identical
  always observe the same number of concurrently audible transmissions
  — the sender's own half-duplex +1 is exactly the self-membership term
  — so the medium keeps one busy refcount per group instead of one per
  rank.  A single-cell clique collapses to one counter (one increment
  per frame instead of ~n); a sparse random field degenerates to
  singleton groups, which is byte-for-byte the historical per-rank
  scheme.  Asymmetric audibility (heterogeneous reaches) disables the
  merge entirely and keeps singleton groups.

On the no-fault path the index never invalidates: it is built lazily
after the last :meth:`Medium.register` call and the inputs (layout
positions, port ranges, per-run propagation gains) never change
afterwards.  Fault injection relaxes that with *incremental epoch
repair*: :meth:`retire_node` / :meth:`restore_node` (node churn) and
:meth:`set_link` (scripted link up/down) refilter only the affected
nodes' neighbor tuples from a pristine snapshot and repartition the
audibility groups — the O(n · k) spatial/propagation pass is never
re-run, and a full retire → restore round trip restores every structure
to exactly the fresh-build state (pinned by a hypothesis property in
``tests/test_faults_churn.py``).
"""

from __future__ import annotations

import math
import typing

from repro.topology.geometry import RANGE_EPSILON_M

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.channel.propagation import PropagationModel
    from repro.radio.radio import RadioPort
    from repro.topology.layout import Layout


class NeighborIndex:
    """Audible-neighbor sets for every registered port, precomputed once.

    Parameters
    ----------
    layout:
        Node placement.
    ports:
        node id → port, in registration order (dicts preserve insertion
        order; that order defines the neighbor tuples' order).
    propagation:
        The channel's propagation model; :meth:`max_audible_m` bounds the
        spatial query radius and :meth:`link_audible` makes the final call
        per candidate.
    """

    def __init__(
        self,
        layout: "Layout",
        ports: typing.Mapping[int, "RadioPort"],
        propagation: "PropagationModel",
    ):
        order = {node: rank for rank, node in enumerate(ports)}
        max_reach = max(
            (propagation.max_audible_m(port) for port in ports.values()),
            default=0.0,
        )
        # Cells are sized to the *inclusive* reach (max audible distance
        # plus the boundary epsilon), mirroring CsrGraph.from_layout: a
        # candidate the predicate can accept then never lies more than
        # ``ceil(reach / cell) == 1`` cell away, so the uniform-range
        # window below is 3x3.  Sizing cells to the bare nominal range
        # used to make ``span = ceil((reach + ε) / reach) = 2`` — a 5x5
        # window scanning ~2.8x the candidates for no extra hits — and
        # degenerated to a near-unbounded span for reaches far below the
        # epsilon (e.g. zero-range ports).
        cell = max(max_reach + RANGE_EPSILON_M, 1e-9)
        buckets: dict[tuple[int, int], list[int]] = {}
        for node in ports:
            pos = layout.position(node)
            buckets.setdefault(
                (math.floor(pos.x / cell), math.floor(pos.y / cell)), []
            ).append(node)

        #: Rank (registration order) → port object, the medium's hot-path
        #: companion to the per-node rank tuples below.
        self.ports_by_rank: list["RadioPort"] = list(ports.values())
        self._neighbors: dict[int, tuple[int, ...]] = {}
        self._neighbor_ranks: dict[int, tuple[int, ...]] = {}
        self._members: dict[int, frozenset[int]] = {}
        for node, port in ports.items():
            pos = layout.position(node)
            # The epsilon keeps boundary placements (grid neighbors at
            # exactly the nominal range) inside the scanned cell window,
            # matching in_range()'s inclusive tolerance.
            reach = propagation.max_audible_m(port) + RANGE_EPSILON_M
            span = math.ceil(reach / cell) if reach > 0 else 0
            cx, cy = math.floor(pos.x / cell), math.floor(pos.y / cell)
            found: list[int] = []
            for bx in range(cx - span, cx + span + 1):
                for by in range(cy - span, cy + span + 1):
                    for other in buckets.get((bx, by), ()):
                        if other != node and propagation.link_audible(
                            port, other
                        ):
                            found.append(other)
            found.sort(key=order.__getitem__)
            self._neighbors[node] = tuple(found)
            self._neighbor_ranks[node] = tuple(order[i] for i in found)
            self._members[node] = frozenset(found)

        #: Node ids in registration (rank) order; epoch repair iterates
        #: this to reproduce the build's dict-insertion orders exactly.
        self._node_order: tuple[int, ...] = tuple(ports)
        self._rank_of: dict[int, int] = order
        #: Currently retired (powered-down) node ids.
        self.retired: set[int] = set()
        #: Scripted-down undirected links as ``(min_id, max_id)`` pairs.
        self._links_down: set[tuple[int, int]] = set()
        #: Pristine neighbor tuples, snapshotted lazily on the first
        #: retire/set_link call; None on the (common) no-fault path.
        self._pristine: dict[int, tuple[int, ...]] | None = None
        self._busy_groups: dict[int, tuple[int, ...]] = {}
        self._rebuild_groups()

    def _rebuild_groups(self) -> None:
        """(Re)partition carrier-sense audibility groups from ``_members``.

        Audibility groups for carrier sensing.  Merging is only sound
        when audibility is symmetric: the per-rank busy count equals
        |{active t : t.sender in N(u) | {u}}| (the union term is the
        sender's own half-duplex increment), and with u in N(s) <=> s in
        N(u) that count depends on u only through the closed set
        N(u) | {u} — ranks sharing it can share one counter.  Any
        asymmetric link breaks the equivalence, so heterogeneous-reach
        deployments fall back to one singleton group per rank, which
        reproduces the historical per-rank refcounts exactly.

        Runs once at construction and again after every epoch repair
        (retirement only filters closed sets, so a symmetric deployment
        stays symmetric); iteration order is the registration order, so a
        repaired partition is id-for-id the one a fresh build computes.
        """
        members = self._members
        node_order = self._node_order
        symmetric = all(
            node in members[other]
            for node, audible in members.items()
            for other in audible
        )
        n = len(self.ports_by_rank)
        busy_groups = self._busy_groups
        busy_groups.clear()
        if symmetric:
            group_ids: dict[frozenset[int], int] = {}
            group_of = [
                group_ids.setdefault(frozenset(members[node] | {node}), len(group_ids))
                for node in node_order
            ]
            self.n_groups = len(group_ids)
            for rank, node in enumerate(node_order):
                # Distinct groups covering the closed audible set; a group
                # intersecting it is wholly inside it (same closed sets),
                # so each member port's count moves by exactly one when
                # the group's counter does.
                busy_groups[node] = tuple(
                    dict.fromkeys(
                        [group_of[rank]]
                        + [group_of[r] for r in self._neighbor_ranks[node]]
                    )
                )
        else:
            group_of = list(range(n))
            self.n_groups = n
            for rank, node in enumerate(node_order):
                busy_groups[node] = (rank,) + self._neighbor_ranks[node]
        #: Rank → audibility-group id (carrier-sense reads index this).
        self.group_of_rank: list[int] = group_of

    # -- epoch repair (fault injection) --------------------------------------

    def _ensure_pristine(self) -> dict[int, tuple[int, ...]]:
        pristine = self._pristine
        if pristine is None:
            # The values are the build's immutable tuples, so the snapshot
            # is one dict copy — O(n) pointers, taken once per run at most.
            pristine = self._pristine = dict(self._neighbors)
        return pristine

    def _link_up(self, a: int, b: int) -> bool:
        links_down = self._links_down
        if not links_down:
            return True
        return ((a, b) if a < b else (b, a)) not in links_down

    def _refilter(self, nodes: typing.Iterable[int]) -> None:
        """Recompute ``nodes``' neighbor structures from the pristine
        snapshot minus retired nodes and downed links.

        Filtering the pristine tuple preserves registration order, so a
        node whose retirement is later undone reappears at exactly its
        original position — the invariant the retire → restore ==
        fresh-build property rests on.
        """
        pristine = self._ensure_pristine()
        retired = self.retired
        rank_of = self._rank_of
        for node in sorted(nodes, key=rank_of.__getitem__):
            if node in retired:
                # A retired node is deaf as well as mute — emptying its
                # own set keeps audibility symmetric, so the group merge
                # stays in force for the surviving fleet.
                alive: tuple[int, ...] = ()
            else:
                alive = tuple(
                    other
                    for other in pristine[node]
                    if other not in retired and self._link_up(node, other)
                )
            self._neighbors[node] = alive
            self._neighbor_ranks[node] = tuple(rank_of[i] for i in alive)
            self._members[node] = frozenset(alive)

    def retire_node(self, node_id: int) -> None:
        """Take ``node_id`` off the air: scrub it from every audible set.

        Incremental: only the node and its pristine neighbors are
        refiltered, then the group partition is recomputed — no spatial
        query or propagation call re-runs.  The medium (which owns the
        busy refcounts) replays them against the repaired groups.

        Raises
        ------
        ValueError
            If the node is already retired.
        KeyError
            If the node was never indexed.
        """
        if node_id in self.retired:
            raise ValueError(f"node {node_id} is already retired")
        pristine = self._ensure_pristine()
        touched = pristine[node_id]  # KeyError for unknown nodes
        self.retired.add(node_id)
        self._refilter((node_id, *touched))
        self._rebuild_groups()

    def restore_node(self, node_id: int) -> None:
        """Put a retired ``node_id`` back on the air (inverse of
        :meth:`retire_node`).

        Raises
        ------
        ValueError
            If the node is not currently retired.
        """
        if node_id not in self.retired:
            raise ValueError(f"node {node_id} is not retired")
        self.retired.discard(node_id)
        self._refilter((node_id, *self._pristine[node_id]))
        self._rebuild_groups()

    def set_link(self, a: int, b: int, up: bool) -> None:
        """Force the undirected ``a`` ↔ ``b`` link down (or back up).

        Muting a pair that was never audible is a harmless no-op on the
        neighbor sets; re-raising a link that is not down is a
        :class:`ValueError` (scripted fault plans should not double-fire).
        """
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a} twice")
        pristine = self._ensure_pristine()
        if a not in pristine or b not in pristine:
            raise KeyError(a if a not in pristine else b)
        key = (a, b) if a < b else (b, a)
        if up:
            if key not in self._links_down:
                raise ValueError(f"link {key} is not down")
            self._links_down.discard(key)
        else:
            if key in self._links_down:
                raise ValueError(f"link {key} is already down")
            self._links_down.add(key)
        self._refilter((a, b))
        self._rebuild_groups()

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        """Audible nodes for ``node_id``, in registration order."""
        return self._neighbors[node_id]

    def neighbor_ranks(self, node_id: int) -> tuple[int, ...]:
        """Audible nodes as :attr:`ports_by_rank` ranks (ascending, which
        is registration order — the same order :meth:`neighbors` uses)."""
        return self._neighbor_ranks[node_id]

    def is_neighbor(self, sender_id: int, listener_id: int) -> bool:
        """Whether ``listener_id`` can hear ``sender_id`` (O(1))."""
        return listener_id in self._members[sender_id]

    def busy_groups(self, node_id: int) -> tuple[int, ...]:
        """Audibility-group ids a transmission from ``node_id`` makes busy.

        Covers the node's closed audible set (itself plus every audible
        rank): incrementing each listed group once raises every covered
        port's effective busy count by exactly one, matching the
        historical per-rank increments (sender's own included).
        """
        return self._busy_groups[node_id]

    def __len__(self) -> int:
        return len(self.ports_by_rank)
