"""Propagation models: who can hear whom, and how reliably.

The paper's medium is unit-disc: a frame is audible exactly within the
sender's nominal range.  That stays the default (and is byte-identical to
the historical behaviour — it draws no randomness), but the model is now a
pluggable protocol behind :class:`~repro.channel.medium.Medium`, so lossy
and irregular channels from the broader literature are one config field
away:

``unit-disc``
    Audible iff within the sender's nominal range; every audible frame
    decodes (subject to collisions and the medium's Bernoulli loss).
``log-normal``
    Log-normal shadowing: each link's effective range is the nominal range
    scaled by a per-link gain drawn once per run from
    ``Normal(0, sigma_db)`` (clamped to ±3σ) through the path-loss
    exponent.  Link gains are derived from a per-run seed and the link's
    node ids — deterministic regardless of query order, and symmetric.
``distance-prr``
    Distance-dependent packet reception: audibility is unit-disc, but each
    audible frame decodes with probability ``1 - (d / range)^exponent``
    (floored at ``floor``), drawn per frame — the classic smooth PRR
    falloff of lossy-link studies.

A model answers three questions for the medium:

* :meth:`PropagationModel.max_audible_m` — the pruning radius the neighbor
  index may rely on (nothing beyond it is ever audible);
* :meth:`PropagationModel.link_audible` — can ``listener`` hear ``sender``
  at all (used for neighbor sets, carrier sense and interference);
* :meth:`PropagationModel.delivery_roll` — does this particular frame
  decode (per-frame randomness, on top of collisions and random loss).
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.registry import ParamSpec, Registry
from repro.sim.rng import derive_seed
from repro.topology.geometry import in_range
from repro.topology.layout import Layout

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.radio import RadioPort


@dataclasses.dataclass(frozen=True)
class PropagationSpec(ParamSpec):
    """A named propagation model plus parameters, in hashable form."""

    kind: str = "unit-disc"

    axis = "propagation model"


class PropagationModel:
    """Protocol for channel propagation (see module docstring)."""

    #: Whether :meth:`delivery_roll` ever returns False (i.e. draws
    #: per-frame randomness).  Models that always deliver leave this
    #: False so the medium can skip the per-delivery call entirely.
    rolls_delivery = False

    def max_audible_m(self, sender: "RadioPort") -> float:
        """Upper bound on the distance at which ``sender`` is audible."""
        raise NotImplementedError

    def link_audible(self, sender: "RadioPort", listener_id: int) -> bool:
        """Whether ``listener_id`` can hear ``sender`` at all this run."""
        raise NotImplementedError

    def delivery_roll(self, sender: "RadioPort", receiver_id: int) -> bool:
        """Per-frame decode decision for an audible, uncollided frame."""
        raise NotImplementedError


class UnitDiscPropagation(PropagationModel):
    """The paper's model: audible iff within nominal range, no randomness."""

    def __init__(self, layout: Layout):
        self.layout = layout

    def max_audible_m(self, sender: "RadioPort") -> float:
        return sender.range_m

    def link_audible(self, sender: "RadioPort", listener_id: int) -> bool:
        return in_range(
            self.layout.position(sender.node_id),
            self.layout.position(listener_id),
            sender.range_m,
        )

    def delivery_roll(self, sender: "RadioPort", receiver_id: int) -> bool:
        return True


class LogNormalShadowing(PropagationModel):
    """Per-link log-normal shadowing over the nominal range.

    Each unordered link gets one gain ``g ~ Normal(0, sigma_db)`` dB,
    clamped to ±3σ, converted to a range factor ``10^(g / (10 n))`` with
    path-loss exponent ``n``: links in a fade lose reach, lucky links gain
    it.  Gains derive from a per-run seed and the link's (sorted) node
    ids via SHA-256, so they are independent of query order and identical
    across processes — a shadowed deployment is as cacheable as a perfect
    one.
    """

    def __init__(
        self,
        layout: Layout,
        rng: typing.Any,
        sigma_db: float = 4.0,
        path_loss_exp: float = 3.5,
    ):
        if sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if path_loss_exp <= 0:
            raise ValueError("path_loss_exp must be positive")
        self.layout = layout
        self.sigma_db = sigma_db
        self.path_loss_exp = path_loss_exp
        # One 64-bit draw anchors every link gain for the run.
        self._run_seed = rng.getrandbits(64)
        self._factors: dict[tuple[int, int], float] = {}
        self._max_factor = 10.0 ** ((3.0 * sigma_db) / (10.0 * path_loss_exp))

    def _range_factor(self, a: int, b: int) -> float:
        link = (a, b) if a <= b else (b, a)
        factor = self._factors.get(link)
        if factor is None:
            gain_rng = random.Random(
                derive_seed(self._run_seed, f"link:{link[0]}:{link[1]}")
            )
            gain_db = gain_rng.gauss(0.0, self.sigma_db)
            gain_db = max(-3.0 * self.sigma_db, min(3.0 * self.sigma_db, gain_db))
            factor = 10.0 ** (gain_db / (10.0 * self.path_loss_exp))
            self._factors[link] = factor
        return factor

    def max_audible_m(self, sender: "RadioPort") -> float:
        return sender.range_m * self._max_factor

    def link_audible(self, sender: "RadioPort", listener_id: int) -> bool:
        factor = self._range_factor(sender.node_id, listener_id)
        return in_range(
            self.layout.position(sender.node_id),
            self.layout.position(listener_id),
            sender.range_m * factor,
        )

    def delivery_roll(self, sender: "RadioPort", receiver_id: int) -> bool:
        return True


class DistancePrr(PropagationModel):
    """Unit-disc audibility with distance-dependent packet reception.

    An audible frame decodes with probability
    ``max(floor, 1 - (d / range)^exponent)`` — near-perfect links close
    to the sender, increasingly lossy toward the range edge.  Draws come
    from the medium's dedicated propagation stream, so enabling the model
    never perturbs MAC backoff or traffic jitter streams.
    """

    rolls_delivery = True

    def __init__(
        self,
        layout: Layout,
        rng: typing.Any,
        exponent: float = 4.0,
        floor: float = 0.0,
    ):
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        self.layout = layout
        self.exponent = exponent
        self.floor = floor
        self._rng = rng

    def max_audible_m(self, sender: "RadioPort") -> float:
        return sender.range_m

    def link_audible(self, sender: "RadioPort", listener_id: int) -> bool:
        return in_range(
            self.layout.position(sender.node_id),
            self.layout.position(listener_id),
            sender.range_m,
        )

    def prr(self, sender: "RadioPort", receiver_id: int) -> float:
        """The link's packet reception ratio."""
        if sender.range_m <= 0:
            return self.floor
        distance = self.layout.position(sender.node_id).distance_to(
            self.layout.position(receiver_id)
        )
        ratio = min(1.0, distance / sender.range_m)
        return max(self.floor, 1.0 - ratio**self.exponent)

    def delivery_roll(self, sender: "RadioPort", receiver_id: int) -> bool:
        return self._rng.random() < self.prr(sender, receiver_id)


PROPAGATION: Registry[typing.Callable[..., PropagationModel]] = Registry(
    "propagation model"
)

PROPAGATION.register(
    "unit-disc",
    lambda layout, rng, **params: UnitDiscPropagation(layout, **params),
    summary="audible iff within nominal range (the paper's model; default)",
    params=(),
)
PROPAGATION.register(
    "log-normal",
    lambda layout, rng, **params: LogNormalShadowing(layout, rng, **params),
    summary="per-link log-normal shadowing of the nominal range",
    params=("sigma_db=4", "path_loss_exp=3.5"),
)
PROPAGATION.register(
    "distance-prr",
    lambda layout, rng, **params: DistancePrr(layout, rng, **params),
    summary="distance-dependent packet reception ratio inside the disc",
    params=("exponent=4", "floor=0"),
)


def build_propagation(
    spec: PropagationSpec, layout: Layout, rng: typing.Any = None
) -> PropagationModel:
    """Realize ``spec`` against ``layout``; ``rng`` feeds stochastic models."""
    factory = PROPAGATION.get(spec.kind)
    try:
        return factory(layout, rng, **spec.kwargs())
    except TypeError as error:
        raise ValueError(
            f"bad parameters for propagation model {spec.kind!r}: {error}"
        ) from None
