"""MAC timing/parameter presets for the two radio classes.

The paper (Section 4.1) uses the "full IEEE 802.11b MAC" for the high-power
radio and "a simpler MAC ... (e.g., no RTS/CTS)" for the sensor radio.  The
presets below encode standard constants:

* :func:`dcf_params` — IEEE 802.11b DCF: 20 µs slots, SIFS 10 µs,
  DIFS 50 µs, CWmin 32 / CWmax 1024, retry limit 7, 14-byte ACKs, 192 µs
  long PLCP preamble per frame.
* :func:`sensor_csma_params` — IEEE 802.15.4-style unslotted CSMA-CA as
  the CC2420 implements it: 320 µs unit backoff periods, initial window
  2^macMinBE = 8 slots growing to 2^macMaxBE-ish 128, SIFS-like 192 µs
  turnaround, retry limit 5, 11-byte ACKs, no RTS/CTS.

Simplification (documented): backoff counters are re-drawn (with a doubled
window, mirroring 802.15.4's backoff-exponent increment) when the channel
is found busy, instead of 802.11's freeze-and-resume.  This slightly
changes access-delay distribution under contention but preserves the
collision-avoidance behaviour the evaluation depends on.

These presets are also why the kernel's calendar scheduler pays off:
every timing constant here is a multiple of a small base unit (20 µs
802.11 slots, 320 µs CC2420 backoff periods), so contending nodes land
their timers on a handful of *exact* shared timestamps per slot
boundary.  ``CalendarScheduler`` buckets by exact timestamp and
dispatches each such batch with a single heap pop (see
:mod:`repro.sim.scheduler`).
"""

from __future__ import annotations

import dataclasses

from repro.units import BITS_PER_BYTE


@dataclasses.dataclass(frozen=True)
class MacParams:
    """Parameters shared by both MAC implementations.

    Attributes
    ----------
    slot_s / sifs_s / difs_s:
        Contention slot, short and distributed inter-frame spaces.
    cw_min_slots / cw_max_slots:
        Initial and maximum contention windows (in slots).
    max_retries:
        Retransmissions after the first attempt before a frame is dropped.
    ack_bits:
        On-air size of an acknowledgment frame.
    ack_timeout_margin_s:
        Grace added to the computed ACK wait (propagation + turnaround).
    preamble_s:
        Fixed PHY preamble added to every frame's airtime.
    queue_capacity:
        Transmit-queue depth; frames beyond it are dropped at enqueue
        (drop-tail).
    busy_cap_slots:
        Ceiling of the window growth on consecutive *busy* senses
        (802.15.4's macMaxBE); retries may still grow to
        ``cw_max_slots``.  ``None`` means no separate cap.
    """

    slot_s: float
    sifs_s: float
    difs_s: float
    cw_min_slots: int
    cw_max_slots: int
    max_retries: int
    ack_bits: int
    ack_timeout_margin_s: float = 1e-4
    preamble_s: float = 0.0
    queue_capacity: int = 512
    busy_cap_slots: int | None = None

    def __post_init__(self) -> None:
        if self.cw_min_slots < 1 or self.cw_max_slots < self.cw_min_slots:
            raise ValueError("contention windows must satisfy 1 <= min <= max")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def contention_window(self, attempt: int) -> int:
        """Window size (slots) for the ``attempt``-th try (0-based), doubling."""
        return min(self.cw_min_slots << attempt, self.cw_max_slots)


def dcf_params(queue_capacity: int = 512) -> MacParams:
    """IEEE 802.11b DCF constants (long preamble)."""
    return MacParams(
        slot_s=20e-6,
        sifs_s=10e-6,
        difs_s=50e-6,
        cw_min_slots=32,
        cw_max_slots=1024,
        max_retries=7,
        ack_bits=14 * BITS_PER_BYTE,
        preamble_s=192e-6,
        queue_capacity=queue_capacity,
    )


def sensor_csma_params(queue_capacity: int = 128) -> MacParams:
    """802.15.4/CC2420-style unslotted CSMA-CA constants (no RTS/CTS)."""
    return MacParams(
        slot_s=320e-6,
        sifs_s=192e-6,
        difs_s=128e-6,
        cw_min_slots=8,
        cw_max_slots=128,
        max_retries=5,
        ack_bits=11 * BITS_PER_BYTE,
        preamble_s=0.0,
        queue_capacity=queue_capacity,
        busy_cap_slots=32,
    )
