"""The sensor-radio MAC: unslotted CSMA/CA without RTS/CTS.

Section 4.1: "For the sensor radio, we chose a simpler MAC layer that
comply[s] with MAC protocols for sensor platforms (e.g., no RTS/CTS)."
This is the :class:`~repro.mac.base.ContentionMac` engine with
CC2420/TinyOS-style timing (:func:`repro.mac.timing.sensor_csma_params`).
"""

from __future__ import annotations

import typing

from repro.mac.base import ENGINE_FLAT, ContentionMac
from repro.mac.timing import MacParams, sensor_csma_params
from repro.radio.radio import RadioPort

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


#: The default parameter set, built once: :class:`MacParams` is a frozen
#: dataclass, so every MAC in a fleet shares this flyweight instead of
#: constructing an identical copy per node.
_DEFAULT_PARAMS = sensor_csma_params()


class SensorCsmaMac(ContentionMac):
    """CSMA/CA MAC for the low-power radio."""

    def __init__(
        self,
        sim: "Simulator",
        radio: RadioPort,
        params: MacParams | None = None,
        name: str | None = None,
        engine: str = ENGINE_FLAT,
    ):
        super().__init__(
            sim, radio, params or _DEFAULT_PARAMS, name=name, engine=engine
        )
