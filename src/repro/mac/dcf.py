"""The high-power radio MAC: IEEE 802.11b DCF.

Section 4.1: "Channel access and retransmissions in the presence of packet
losses are handled by [the] full IEEE 802.11b MAC layer for the IEEE 802.11
radio."  This is the :class:`~repro.mac.base.ContentionMac` engine with
802.11b constants (:func:`repro.mac.timing.dcf_params`), plus one dual-radio
concern: the underlying radio may be *off* (BCP turns it off between
bursts), in which case sends fail immediately rather than hang — BCP's
handshake is responsible for waking both ends before data flows.
"""

from __future__ import annotations

import typing

from repro.mac.base import ENGINE_FLAT, ContentionMac
from repro.mac.timing import MacParams, dcf_params
from repro.radio.radio import HighPowerRadio

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


#: The default parameter set, built once: :class:`MacParams` is a frozen
#: dataclass, so every MAC in a fleet shares this flyweight instead of
#: constructing an identical copy per node.
_DEFAULT_PARAMS = dcf_params()


class DcfMac(ContentionMac):
    """802.11 DCF MAC driving a :class:`HighPowerRadio`."""

    def __init__(
        self,
        sim: "Simulator",
        radio: HighPowerRadio,
        params: MacParams | None = None,
        name: str | None = None,
        engine: str = ENGINE_FLAT,
    ):
        super().__init__(
            sim, radio, params or _DEFAULT_PARAMS, name=name, engine=engine
        )

    def _radio_ready(self) -> bool:
        radio = typing.cast(HighPowerRadio, self.radio)
        return radio.is_on and not radio.is_transmitting
