"""MAC-layer frame representation shared by both radio stacks.

A :class:`Frame` is what actually occupies the channel.  Its ``payload`` is
opaque to the MAC — a network packet, a list of packets (BCP bursts), or a
control message — and only ``payload_bits``/``header_bits`` matter for
airtime and energy.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing

#: Destination id meaning "all nodes in range".
BROADCAST = -1

_frame_ids = itertools.count(1)


class FrameKind(enum.Enum):
    """What role a frame plays at the MAC layer."""

    DATA = "data"
    ACK = "ack"
    CONTROL = "control"


@dataclasses.dataclass
class Frame:
    """One on-air transmission unit.

    Attributes
    ----------
    kind:
        MAC role of the frame.
    src / dst:
        Node ids (``dst`` may be :data:`BROADCAST`).
    payload_bits / header_bits:
        Sizes determining airtime; ``total_bits`` is their sum.
    payload:
        Opaque upper-layer content.
    seq:
        MAC sequence number, unique per sender MAC (used for ACK matching
        and duplicate suppression).
    require_ack:
        Whether the sender expects a MAC-level acknowledgment.
    frame_id:
        Globally unique id for tracing.
    """

    kind: FrameKind
    src: int
    dst: int
    payload_bits: int
    header_bits: int
    payload: typing.Any = None
    seq: int = 0
    require_ack: bool = True
    frame_id: int = dataclasses.field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.payload_bits < 0 or self.header_bits < 0:
            raise ValueError("frame sizes must be non-negative")

    @property
    def total_bits(self) -> int:
        """On-air size: payload plus MAC header."""
        return self.payload_bits + self.header_bits

    @property
    def is_broadcast(self) -> bool:
        """Whether the frame is addressed to every listener."""
        return self.dst == BROADCAST

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Frame #{self.frame_id} {self.kind.value} {self.src}->{self.dst} "
            f"{self.total_bits}b seq={self.seq}>"
        )


def make_ack(data_frame: Frame, ack_bits: int) -> Frame:
    """Build the MAC acknowledgment for ``data_frame``.

    The ACK carries the acknowledged sequence number in ``payload`` and is
    itself never acknowledged.
    """
    return Frame(
        kind=FrameKind.ACK,
        src=data_frame.dst,
        dst=data_frame.src,
        payload_bits=0,
        header_bits=ack_bits,
        payload=data_frame.seq,
        seq=data_frame.seq,
        require_ack=False,
    )
