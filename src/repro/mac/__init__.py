"""MAC layers: frames, timing presets, CSMA (sensor) and DCF (802.11)."""

from repro.mac.base import (
    ENGINE_FLAT,
    ENGINE_GENERATOR,
    MAC_ENGINES,
    ContentionMac,
)
from repro.mac.csma import SensorCsmaMac
from repro.mac.dcf import DcfMac
from repro.mac.frames import BROADCAST, Frame, FrameKind, make_ack
from repro.mac.timing import MacParams, dcf_params, sensor_csma_params

__all__ = [
    "BROADCAST",
    "ContentionMac",
    "DcfMac",
    "ENGINE_FLAT",
    "ENGINE_GENERATOR",
    "Frame",
    "FrameKind",
    "MAC_ENGINES",
    "MacParams",
    "SensorCsmaMac",
    "dcf_params",
    "make_ack",
    "sensor_csma_params",
]
