"""The contention MAC engine shared by the sensor CSMA and 802.11 DCF MACs.

Both MACs follow the same skeleton — carrier sense, random backoff,
transmit, stop-and-wait ACK with binary exponential backoff on retry — and
differ only in their timing constants (:mod:`repro.mac.timing`).  The engine
runs one worker process per MAC which serializes the node's transmissions
(radios are half-duplex), with MAC-level ACKs taking priority over queued
data as SIFS < DIFS implies.

Receiver-side duties: ACK generation for addressed data frames, duplicate
suppression (retransmissions after a lost ACK), and upward delivery through
a pluggable callback.
"""

from __future__ import annotations

import collections
import typing

from repro.mac.frames import Frame, FrameKind, make_ack
from repro.mac.timing import MacParams
from repro.radio.radio import RadioPort
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

#: How many recent sequence numbers to remember per peer for dedup.
_DEDUP_WINDOW = 64


class ContentionMac:
    """Carrier-sense MAC with stop-and-wait ACKs.

    Parameters
    ----------
    sim / radio / params:
        Kernel, the radio port to drive, timing constants.
    name:
        RNG stream / trace label; defaults to ``mac.<node>.<radio>``.

    Notes
    -----
    Use :meth:`send` to enqueue a frame; the returned event's value is
    ``True`` on MAC-level success (ACK received, or frame sent for
    broadcast / no-ACK frames) and ``False`` when the retry budget is
    exhausted or the queue overflowed.
    """

    def __init__(
        self,
        sim: "Simulator",
        radio: RadioPort,
        params: MacParams,
        name: str | None = None,
    ):
        self.sim = sim
        self.radio = radio
        self.params = params
        self.name = name or f"mac.{radio.node_id}.{radio.spec.name}"
        # The backoff stream materializes on first contention: its seed is
        # a pure function of the stream *name*, so deferring creation is
        # trace-identical — and a 10k-node fleet skips 20k sha256 seed
        # derivations for MACs that never transmit.
        self._rng: typing.Any = None
        radio.set_receiver(self._on_frame)
        radio.preamble_s = params.preamble_s
        self._queue: collections.deque[tuple[Frame, Event]] = collections.deque()
        self._ack_queue: collections.deque[Frame] = collections.deque()
        self._pending_ack: dict[tuple[int, int], Event] = {}
        self._seen: dict[int, collections.OrderedDict] = {}
        self._seq = 0
        self._wakeup = sim.event()
        self._ack_in_progress = False
        self._on_data: typing.Callable[[Frame], None] | None = None
        #: Statistics: drops by cause.
        self.sent_ok = 0
        self.sent_failed = 0
        self.queue_drops = 0
        self.retransmissions = 0
        sim.process(self._worker(), name=self.name)

    # -- upper-layer wiring -------------------------------------------------

    def set_data_handler(self, callback: typing.Callable[[Frame], None]) -> None:
        """Install the network layer's delivery callback."""
        self._on_data = callback

    def next_seq(self) -> int:
        """Allocate the next MAC sequence number."""
        self._seq += 1
        return self._seq

    @property
    def queue_length(self) -> int:
        """Number of frames waiting for transmission."""
        return len(self._queue)

    @property
    def has_pending_ack(self) -> bool:
        """Whether a MAC-level ACK is queued or on the air.

        BCP consults this before sleeping the radio so that the final
        frame of a burst still gets acknowledged.
        """
        return bool(self._ack_queue) or self._ack_in_progress

    # -- send path ------------------------------------------------------------

    def send(self, frame: Frame) -> Event:
        """Enqueue ``frame``; the event resolves True/False on completion."""
        done = self.sim.event()
        if len(self._queue) >= self.params.queue_capacity:
            self.queue_drops += 1
            done.succeed(False)
            return done
        if frame.seq == 0:
            frame.seq = self.next_seq()
        self._queue.append((frame, done))
        self._kick()
        return done

    def _kick(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _worker(self) -> typing.Generator:
        while True:
            while not self._queue and not self._ack_queue:
                yield self._wakeup
                self._wakeup = self.sim.event()
            if self._ack_queue:
                ack = self._ack_queue.popleft()
                yield from self._transmit_ack(ack)
                continue
            frame, done = self._queue.popleft()
            success = yield from self._send_with_retries(frame)
            if success:
                self.sent_ok += 1
            else:
                self.sent_failed += 1
            if not done.triggered:
                done.succeed(success)

    def _transmit_ack(self, ack: Frame) -> typing.Generator:
        """SIFS, then send the ACK without contending for the channel."""
        self._ack_in_progress = True
        try:
            yield self.sim.timeout(self.params.sifs_s)
            if not self._radio_ready():
                return
            yield self.radio.transmit(ack)
        finally:
            self._ack_in_progress = False

    def _send_with_retries(self, frame: Frame) -> typing.Generator:
        needs_ack = frame.require_ack and not frame.is_broadcast
        attempts = 1 + (self.params.max_retries if needs_ack else 0)
        # The ack wait depends only on MAC params and the radio rate —
        # compute it once per frame, not once per retry attempt.
        ack_wait_s = self._ack_wait_s() if needs_ack else 0.0
        for attempt in range(attempts):
            if attempt > 0:
                self.retransmissions += 1
            yield from self._contend(attempt)
            if not self._radio_ready():
                return False
            yield self.radio.transmit(frame)
            if not needs_ack:
                return True
            ack_event = self.sim.event()
            key = (frame.dst, frame.seq)
            self._pending_ack[key] = ack_event
            timeout = self.sim.timeout(ack_wait_s)
            outcome = yield ack_event | timeout
            self._pending_ack.pop(key, None)
            if ack_event in outcome:
                # The ack won the race: the timer is dead weight on the
                # agenda.  Cancel it so the kernel discards it at pop time
                # instead of dispatching a no-op callback — on retry-heavy
                # contention runs abandoned ack timers used to be a
                # noticeable slice of events_processed.
                timeout.cancel()
                return True
        return False

    def _contend(self, attempt: int) -> typing.Generator:
        """DIFS + random backoff; on a busy sense, re-draw with a doubled
        window (802.15.4's backoff-exponent increment)."""
        params = self.params
        busy_cap = params.busy_cap_slots or params.cw_max_slots
        window = params.contention_window(attempt)
        rng = self._rng
        if rng is None:
            rng = self._rng = self.sim.rng.stream(f"{self.name}.backoff")
        while True:
            slots = rng.randrange(window)
            yield self.sim.timeout(params.difs_s + slots * params.slot_s)
            if not self.medium_busy():
                return
            window = min(window * 2, max(busy_cap, window))

    def medium_busy(self) -> bool:
        """Carrier-sense result at this node.

        O(1): the medium keeps a per-node busy refcount incrementally, so
        backoff loops can sense as often as they like without scanning the
        active-transmission list.
        """
        return self.radio.medium.is_busy_for(self.radio.node_id)

    def _ack_wait_s(self) -> float:
        ack_airtime = (
            self.params.preamble_s + self.params.ack_bits / self.radio.rate_bps
        )
        return self.params.sifs_s + ack_airtime + self.params.ack_timeout_margin_s

    def _radio_ready(self) -> bool:
        """Whether the radio can transmit right now (subclass hook)."""
        return not self.radio.is_transmitting

    # -- receive path ----------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        if frame.kind == FrameKind.ACK:
            waiter = self._pending_ack.get((frame.src, frame.seq))
            if waiter is not None and not waiter.triggered:
                waiter.succeed(frame)
            return
        addressed = frame.dst == self.radio.node_id
        if addressed and frame.require_ack:
            self._ack_queue.append(make_ack(frame, self.params.ack_bits))
            self._kick()
        if addressed or frame.is_broadcast:
            if self._is_duplicate(frame):
                return
            if self._on_data is not None:
                self._on_data(frame)

    def _is_duplicate(self, frame: Frame) -> bool:
        seen = self._seen.setdefault(frame.src, collections.OrderedDict())
        if frame.seq in seen:
            return True
        seen[frame.seq] = True
        while len(seen) > _DEDUP_WINDOW:
            seen.popitem(last=False)
        return False
