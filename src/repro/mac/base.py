"""The contention MAC engine shared by the sensor CSMA and 802.11 DCF MACs.

Both MACs follow the same skeleton — carrier sense, random backoff,
transmit, stop-and-wait ACK with binary exponential backoff on retry — and
differ only in their timing constants (:mod:`repro.mac.timing`).  The engine
serializes the node's transmissions (radios are half-duplex), with MAC-level
ACKs taking priority over queued data as SIFS < DIFS implies.

Receiver-side duties: ACK generation for addressed data frames, duplicate
suppression (retransmissions after a lost ACK), and upward delivery through
a pluggable callback.

Two interchangeable engines drive the send path:

``flat`` (default)
    A callback state machine: every continuation is a plain bound-method
    callback on the event that resumes it, backoff/ack timers come from the
    kernel's :class:`Timeout` free-list, and ack-completion events are
    pooled per MAC.  No generator resume, no ``Event | Timeout`` condition
    allocation per ack wait.

``generator``
    The historical one-worker-process-per-MAC engine.  It is kept as the
    byte-identity reference: the flat engine schedules *exactly* the same
    agenda entries — same timeout values, same priorities, same rng draw
    order from the same ``{name}.backoff`` stream, and the same
    intermediate delay-0 hop events the generator's wakeup/``AnyOf``
    plumbing produces — so both engines yield identical event traces and
    golden digests.  ``tests/test_mac_flat.py`` pins that equivalence with
    a hypothesis property.
"""

from __future__ import annotations

import collections
import typing

from repro.mac.frames import BROADCAST, Frame, FrameKind, make_ack
from repro.mac.timing import MacParams
from repro.radio.radio import RadioPort
from repro.sim.events import NORMAL, PENDING, URGENT, Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

#: How many recent sequence numbers to remember per peer for dedup.
_DEDUP_WINDOW = 64

#: Upper bound on pooled ack-completion events retained per MAC.
_ACK_POOL_MAX = 4

#: Valid values for the ``engine`` constructor argument (and the
#: ``ScenarioConfig.mac_engine`` axis).  ``flat`` is the default; the
#: generator engine is the byte-identity reference.
MAC_ENGINES = ("flat", "generator")
ENGINE_FLAT, ENGINE_GENERATOR = MAC_ENGINES


class ContentionMac:
    """Carrier-sense MAC with stop-and-wait ACKs.

    Parameters
    ----------
    sim / radio / params:
        Kernel, the radio port to drive, timing constants.
    name:
        RNG stream / trace label; defaults to ``mac.<node>.<radio>``.
    engine:
        ``"flat"`` (callback state machine, default) or ``"generator"``
        (historical worker process).  Both produce byte-identical event
        traces; flat is substantially faster on retry-heavy cells.

    Notes
    -----
    Use :meth:`send` to enqueue a frame; the returned event's value is
    ``True`` on MAC-level success (ACK received, or frame sent for
    broadcast / no-ACK frames) and ``False`` when the retry budget is
    exhausted or the queue overflowed.
    """

    def __init__(
        self,
        sim: "Simulator",
        radio: RadioPort,
        params: MacParams,
        name: str | None = None,
        engine: str = ENGINE_FLAT,
    ):
        if engine not in MAC_ENGINES:
            raise ValueError(
                f"unknown MAC engine {engine!r}; valid engines: {MAC_ENGINES}"
            )
        self.sim = sim
        self.radio = radio
        self.params = params
        self.engine = engine
        self.name = name or f"mac.{radio.node_id}.{radio.spec.name}"
        # The backoff stream materializes on first contention: its seed is
        # a pure function of the stream *name*, so deferring creation is
        # trace-identical — and a 10k-node fleet skips 20k sha256 seed
        # derivations for MACs that never transmit.
        self._rng: typing.Any = None
        radio.set_receiver(self._on_frame)
        radio.preamble_s = params.preamble_s
        self._queue: collections.deque[tuple[Frame, Event]] = collections.deque()
        self._ack_queue: collections.deque[Frame] = collections.deque()
        self._pending_ack: dict[tuple[int, int], Event] = {}
        # Dedup windows: per-peer (deque, set) pairs — the deque keeps
        # FIFO insertion order for eviction, the set answers membership in
        # O(1) on the hot receive path.
        self._seen: dict[int, tuple[collections.deque, set]] = {}
        self._seq = 0
        self._wakeup = sim.event()
        self._ack_in_progress = False
        self._on_data: typing.Callable[[Frame], None] | None = None
        #: Statistics: drops by cause.
        self.sent_ok = 0
        self.sent_failed = 0
        self.queue_drops = 0
        self.retransmissions = 0
        #: ACKs abandoned because the radio was not ready after SIFS (the
        #: half-duplex race documented on :meth:`_transmit_ack`).
        self.acks_dropped = 0
        #: Frames dropped (queued or in flight) because :meth:`power_down`
        #: killed the node; only fault injection moves this.
        self.power_down_drops = 0
        if engine == ENGINE_GENERATOR:
            sim.process(self._worker(), name=self.name)
        else:
            self._init_flat()

    # -- upper-layer wiring -------------------------------------------------

    def set_data_handler(self, callback: typing.Callable[[Frame], None]) -> None:
        """Install the network layer's delivery callback."""
        self._on_data = callback

    def next_seq(self) -> int:
        """Allocate the next MAC sequence number."""
        self._seq += 1
        return self._seq

    @property
    def queue_length(self) -> int:
        """Number of frames waiting for transmission."""
        return len(self._queue)

    @property
    def has_pending_ack(self) -> bool:
        """Whether a MAC-level ACK is queued or on the air.

        BCP consults this before sleeping the radio so that the final
        frame of a burst still gets acknowledged.
        """
        return bool(self._ack_queue) or self._ack_in_progress

    # -- send path ------------------------------------------------------------

    def send(self, frame: Frame) -> Event:
        """Enqueue ``frame``; the event resolves True/False on completion."""
        done = self.sim.event()
        if self._powered_down:
            self.power_down_drops += 1
            done.succeed(False)
            return done
        if len(self._queue) >= self.params.queue_capacity:
            self.queue_drops += 1
            done.succeed(False)
            return done
        if frame.seq == 0:
            frame.seq = self.next_seq()
        self._queue.append((frame, done))
        self._kick()
        return done

    def _kick(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def medium_busy(self) -> bool:
        """Carrier-sense result at this node.

        O(1): the medium keeps a per-node busy refcount incrementally, so
        backoff loops can sense as often as they like without scanning the
        active-transmission list.
        """
        return self.radio.medium.is_busy_for(self.radio.node_id)

    def _ack_wait_s(self) -> float:
        ack_airtime = (
            self.params.preamble_s + self.params.ack_bits / self.radio.rate_bps
        )
        return self.params.sifs_s + ack_airtime + self.params.ack_timeout_margin_s

    def _radio_ready(self) -> bool:
        """Whether the radio can transmit right now (subclass hook)."""
        return not self._powered_down and not self.radio.is_transmitting

    # -- generator engine ------------------------------------------------------

    def _worker(self) -> typing.Generator:
        while True:
            while not self._queue and not self._ack_queue:
                yield self._wakeup
                self._wakeup = self.sim.event()
            if self._ack_queue:
                ack = self._ack_queue.popleft()
                yield from self._transmit_ack(ack)
                continue
            frame, done = self._queue.popleft()
            success = yield from self._send_with_retries(frame)
            if success:
                self.sent_ok += 1
            else:
                self.sent_failed += 1
            if not done.triggered:
                done.succeed(success)

    def _transmit_ack(self, ack: Frame) -> typing.Generator:
        """SIFS, then send the ACK without contending for the channel.

        Half-duplex race: the radio can stop being ready *during* SIFS —
        a DCF radio may have been put to sleep or powered down by the
        node's duty-cycle logic between queueing the ACK and the SIFS
        expiry.  Real hardware drops the ACK on the floor in that state
        (there is no retry path for ACKs; the data sender's retry timer
        covers the loss), so the MAC does the same — but counts it in
        ``acks_dropped`` instead of dropping silently.
        """
        self._ack_in_progress = True
        try:
            yield self.sim.timeout(self.params.sifs_s)
            if not self._radio_ready():
                self.acks_dropped += 1
                return
            yield self.radio.transmit(ack)
        finally:
            self._ack_in_progress = False

    def _send_with_retries(self, frame: Frame) -> typing.Generator:
        needs_ack = frame.require_ack and not frame.is_broadcast
        attempts = 1 + (self.params.max_retries if needs_ack else 0)
        # The ack wait depends only on MAC params and the radio rate —
        # compute it once per frame, not once per retry attempt.
        ack_wait_s = self._ack_wait_s() if needs_ack else 0.0
        for attempt in range(attempts):
            if attempt > 0:
                self.retransmissions += 1
            yield from self._contend(attempt)
            if not self._radio_ready():
                return False
            yield self.radio.transmit(frame)
            if not needs_ack:
                return True
            ack_event = self.sim.event()
            key = (frame.dst, frame.seq)
            self._pending_ack[key] = ack_event
            timeout = self.sim.timeout(ack_wait_s)
            outcome = yield ack_event | timeout
            self._pending_ack.pop(key, None)
            if ack_event in outcome:
                # The ack won the race: the timer is dead weight on the
                # agenda.  Cancel it so the kernel discards it at pop time
                # instead of dispatching a no-op callback — on retry-heavy
                # contention runs abandoned ack timers used to be a
                # noticeable slice of events_processed.
                timeout.cancel()
                return True
        return False

    def _contend(self, attempt: int) -> typing.Generator:
        """DIFS + random backoff; on a busy sense, re-draw with a doubled
        window (802.15.4's backoff-exponent increment)."""
        params = self.params
        busy_cap = params.busy_cap_slots or params.cw_max_slots
        window = params.contention_window(attempt)
        rng = self._rng
        if rng is None:
            rng = self._rng = self.sim.rng.stream(f"{self.name}.backoff")
        while True:
            slots = rng.randrange(window)
            yield self.sim.timeout(params.difs_s + slots * params.slot_s)
            if not self.medium_busy():
                return
            window = min(window * 2, max(busy_cap, window))

    # -- flat engine -----------------------------------------------------------
    #
    # The callback state machine below replays the generator engine's
    # agenda trace entry for entry.  The correspondence, per continuation:
    #
    # * worker start        → one URGENT delay-0 event at construction
    #                         (mirrors ``Process.__init__``);
    # * ``yield wakeup``    → ``_on_wakeup`` attached to the same pending
    #                         ``self._wakeup`` event ``_kick`` triggers; a
    #                         kick that lands while the machine is busy
    #                         dispatches the wakeup with no callbacks (the
    #                         generator's no-op resume of an unwaited
    #                         event) and is consumed inline when idle;
    # * ``yield timeout``   → a bound-method callback on the same pooled
    #                         ``Timeout`` (backoff, SIFS, ack wait);
    # * ``yield transmit``  → callback appended in the same third slot of
    #                         the medium's end event;
    # * ``yield ack|timer`` → whichever child fires first enqueues one
    #                         pooled delay-0 NORMAL "hop" event — exactly
    #                         where ``AnyOf.succeed`` enqueued the
    #                         condition — and the continuation runs from
    #                         the hop's dispatch.  The loser's agenda entry
    #                         (late ack / cancelled timer) is left to pop
    #                         exactly as the generator leaves it.
    #
    # Identical enqueue points ⇒ identical ``(time, priority, seq)``
    # ordering ⇒ identical rng draw order and golden digests.

    def _init_flat(self) -> None:
        # Construction stays light: a 10k-node fleet builds 20k MACs, most
        # of which never transmit, so the callback/constant wiring below
        # (`_wire_flat`) is deferred until the machine first has work.
        # Only the start event touches the agenda, and it is enqueued here
        # exactly where ``Process.__init__`` enqueued the generator's — the
        # machine enters its dispatch loop at the current time, ahead of
        # same-time NORMALs, so the trace is unchanged.
        self._flat_wired = False
        sim = self.sim
        start = Event(sim)
        start.callbacks.append(self._on_start)
        start._ok = True
        start._value = None
        sim._enqueue(start, delay=0.0, priority=URGENT)

    def _wire_flat(self) -> None:
        sim = self.sim
        self._flat_wired = True
        self._wakeup_cb = self._on_wakeup
        self._sifs_cb = self._on_sifs
        self._ack_tx_end_cb = self._on_ack_tx_end
        self._backoff_cb = self._on_backoff
        self._tx_end_cb = self._on_tx_end
        self._ack_event_cb = self._on_ack_event
        self._ack_timeout_cb = self._on_ack_timeout
        self._hop_cb = self._on_hop
        # Hot-path constants and bound methods, resolved once: the backoff
        # redraw loop runs tens of thousands of times on contention-heavy
        # cells, and every attribute hop it skips is measurable.  All of
        # these are immutable for the lifetime of the MAC (timing params
        # are frozen, the radio's medium and spec never change).
        params = self.params
        radio = self.radio
        self._timeout = sim.timeout
        self._difs_s = params.difs_s
        self._slot_s = params.slot_s
        self._sifs_s = params.sifs_s
        self._busy_cap = params.busy_cap_slots or params.cw_max_slots
        self._acked_attempts = 1 + params.max_retries
        # Contention windows depend only on the attempt number; tabulate
        # the ladder once instead of recomputing it per frame.
        self._cw_by_attempt = tuple(
            params.contention_window(a) for a in range(self._acked_attempts)
        )
        self._ack_wait = self._ack_wait_s()
        self._is_busy_for = radio.medium.is_busy_for
        self._node_id = radio.node_id
        self._randrange: typing.Any = None
        # In-flight item state (one item at a time: the machine is serial).
        self._cur_frame: Frame | None = None
        self._cur_done: Event | None = None
        self._cur_ack: Frame | None = None
        self._cur_needs_ack = False
        self._cur_attempt = 0
        self._cur_attempts = 0
        self._cur_window = 0
        self._cur_key: tuple[int, int] | None = None
        # Ack-wait plumbing: the outstanding completion event/timer and
        # which of them resolved the wait (None = unresolved, True = ack,
        # False = timeout).
        self._ack_event: Event | None = None
        self._ack_timer: Event | None = None
        self._resolved: bool | None = None
        self._ack_pool: list[Event] = []
        self._hop_event: Event | None = None
        self._hop_callbacks: list | None = None
        # Fault-injection handles on the in-flight continuation: the
        # pending SIFS/backoff timer and the radio end event our callback
        # rides on.  Both are cleared at the TOP of their callbacks — the
        # kernel recycles dispatched timeouts through a free-list gated on
        # refcount, so a ref held across the dispatch would block reuse
        # (and a stale one could cancel an innocent recycled timer).
        self._flat_timer: Event | None = None
        self._flat_tx_end: Event | None = None

    def _on_start(self, event: Event) -> None:
        if self._powered_down:
            # Killed before the construction-time start event popped.
            return
        if not self._queue and not self._ack_queue:
            # Nothing to do yet: park on the wakeup event without paying
            # for the full wiring (the overwhelmingly common case in a
            # large fleet — the generator engine parks the same way).
            self._wakeup.callbacks.append(self._on_wakeup)
            return
        self._wire_flat()
        self._resume_loop()

    def _resume_loop(self) -> None:
        """The worker loop's head: acks first, then data, then park."""
        while True:
            if self._ack_queue:
                self._cur_ack = self._ack_queue.popleft()
                self._ack_in_progress = True
                timer = self._timeout(self._sifs_s)
                timer.callbacks.append(self._sifs_cb)
                self._flat_timer = timer
                return
            if self._queue:
                frame, done = self._queue.popleft()
                self._cur_frame = frame
                self._cur_done = done
                needs_ack = frame.require_ack and frame.dst != BROADCAST
                self._cur_needs_ack = needs_ack
                self._cur_attempt = 0
                self._cur_attempts = self._acked_attempts if needs_ack else 1
                self._start_contend()
                return
            wakeup = self._wakeup
            if wakeup._processed:
                # A kick landed while the machine was busy: its wakeup
                # already dispatched as a no-op.  The generator consumes
                # such a stale wakeup inline (no agenda entry) and waits
                # on a fresh one; mirror that.
                self._wakeup = self.sim.event()
                continue
            wakeup.callbacks.append(self._wakeup_cb)
            return

    def _on_wakeup(self, event: Event) -> None:
        self._wakeup = self.sim.event()
        if not self._flat_wired:
            self._wire_flat()
        self._resume_loop()

    # ACK transmission (see _transmit_ack for the half-duplex race note).

    def _on_sifs(self, event: Event) -> None:
        self._flat_timer = None
        if not self._radio_ready():
            self.acks_dropped += 1
            self._cur_ack = None
            self._ack_in_progress = False
            self._resume_loop()
            return
        end = self.radio.transmit(self._cur_ack)
        self._cur_ack = None
        end.callbacks.append(self._ack_tx_end_cb)
        self._flat_tx_end = end

    def _on_ack_tx_end(self, event: Event) -> None:
        self._flat_tx_end = None
        self._ack_in_progress = False
        self._resume_loop()

    # Data transmission with contention and retries.

    def _start_contend(self) -> None:
        attempt = self._cur_attempt
        if attempt > 0:
            self.retransmissions += 1
        self._cur_window = self._cw_by_attempt[attempt]
        if self._randrange is None:
            self._rng = rng = self.sim.rng.stream(f"{self.name}.backoff")
            self._randrange = rng.randrange
        self._draw_backoff()

    def _draw_backoff(self) -> None:
        slots = self._randrange(self._cur_window)
        timer = self._timeout(self._difs_s + slots * self._slot_s)
        timer.callbacks.append(self._backoff_cb)
        self._flat_timer = timer

    def _on_backoff(self, event: Event) -> None:
        self._flat_timer = None
        if self._is_busy_for(self._node_id):
            window = self._cur_window
            self._cur_window = min(window * 2, max(self._busy_cap, window))
            self._draw_backoff()
            return
        if not self._radio_ready():
            self._finish_frame(False)
            return
        end = self.radio.transmit(self._cur_frame)
        end.callbacks.append(self._tx_end_cb)
        self._flat_tx_end = end

    def _on_tx_end(self, event: Event) -> None:
        self._flat_tx_end = None
        if not self._cur_needs_ack:
            self._finish_frame(True)
            return
        # Same creation order as the generator (ack event, pending-ack
        # registration, then the timer) so the timer's agenda seq is
        # identical.
        ack_event = self._take_ack_event()
        frame = self._cur_frame
        key = (frame.dst, frame.seq)
        self._cur_key = key
        self._pending_ack[key] = ack_event
        self._ack_event = ack_event
        timer = self._timeout(self._ack_wait)
        timer.callbacks.append(self._ack_timeout_cb)
        self._ack_timer = timer
        self._resolved = None

    def _take_ack_event(self) -> Event:
        pool = self._ack_pool
        if pool:
            event = pool.pop()
            event._value = PENDING
            event._processed = False
            event.callbacks = [self._ack_event_cb]
            return event
        event = Event(self.sim)
        event.callbacks.append(self._ack_event_cb)
        return event

    def _on_ack_event(self, event: Event) -> None:
        if event is not self._ack_event or self._resolved is not None:
            # A late ack: the wait already resolved (the timer fired first
            # at the same timestamp) and the machine may have moved on.
            # The generator's AnyOf dispatches this child as a no-op;
            # nothing references the event anymore, so recycle it.
            if len(self._ack_pool) < _ACK_POOL_MAX:
                self._ack_pool.append(event)
            return
        self._resolved = True
        self._enqueue_hop()

    def _on_ack_timeout(self, event: Event) -> None:
        # Drop our reference so the kernel free-list recycles the timer at
        # the end of this dispatch.
        self._ack_timer = None
        if self._resolved is None:
            self._resolved = False
            self._enqueue_hop()

    def _enqueue_hop(self) -> None:
        """Mirror ``AnyOf.succeed``: one pooled delay-0 NORMAL event whose
        dispatch runs the ack-wait continuation."""
        hop = self._hop_event
        if hop is None:
            hop = Event(self.sim)
            hop.callbacks.append(self._hop_cb)
            self._hop_event = hop
            self._hop_callbacks = hop.callbacks
            hop._value = None
        else:
            hop._processed = False
            hop._cancelled = False
            hop._value = None
            hop.callbacks = self._hop_callbacks
        self.sim._enqueue(hop, delay=0.0, priority=NORMAL)

    def _on_hop(self, event: Event) -> None:
        """The continuation after ``yield ack_event | timeout``."""
        self._pending_ack.pop(self._cur_key, None)
        ack_event = self._ack_event
        self._ack_event = None
        if self._resolved:
            timer = self._ack_timer
            self._ack_timer = None
            timer.cancel()
            if len(self._ack_pool) < _ACK_POOL_MAX:
                self._ack_pool.append(ack_event)
            self._finish_frame(True)
            return
        # Timeout.  The ack event is usually still pending (reusable); if
        # a late ack triggered it, its agenda entry is still due and
        # ``_on_ack_event`` recycles it at dispatch instead.
        if not ack_event.triggered and len(self._ack_pool) < _ACK_POOL_MAX:
            self._ack_pool.append(ack_event)
        self._cur_attempt += 1
        if self._cur_attempt < self._cur_attempts:
            self._start_contend()
        else:
            self._finish_frame(False)

    def _finish_frame(self, success: bool) -> None:
        if success:
            self.sent_ok += 1
        else:
            self.sent_failed += 1
        done = self._cur_done
        self._cur_frame = None
        self._cur_done = None
        if not done.triggered:
            done.succeed(success)
        self._resume_loop()

    # -- fault injection -------------------------------------------------------

    #: Class attribute (see ``RadioPort._powered_down``): the never-faulted
    #: MAC pays no per-instance slot for it.
    _powered_down = False

    def power_down(self) -> None:
        """Kill the MAC (fault injection): halt the engine and drop frames.

        Queued and in-flight frames resolve their completion events False
        (counted in ``power_down_drops``) so upper layers see drops
        instead of waiting forever.  The flat engine halts immediately:
        its pending SIFS/backoff timer and ack plumbing are cancelled via
        ``Event.cancel`` and its continuation is detached from any
        in-flight radio end event.  The generator engine cannot be
        cancelled mid-yield, so its current contention cycle runs to the
        ``_radio_ready`` gate (a handful of residual timer events, no
        transmissions) and the worker then parks on a wakeup that can no
        longer arrive.  Idempotent.
        """
        if self._powered_down:
            return
        self._powered_down = True
        drops = 0
        if self.engine == ENGINE_FLAT and self._flat_wired:
            timer = self._flat_timer
            if timer is not None:
                self._flat_timer = None
                timer.cancel()
            timer = self._ack_timer
            if timer is not None:
                self._ack_timer = None
                timer.cancel()
            end = self._flat_tx_end
            if end is not None:
                # The medium still finishes the (aborted) frame; only our
                # continuation must not run.  Cancelling the shared end
                # event would also kill the medium's record processing.
                self._flat_tx_end = None
                callbacks = end.callbacks
                if callbacks is not None:
                    if self._tx_end_cb in callbacks:
                        callbacks.remove(self._tx_end_cb)
                    elif self._ack_tx_end_cb in callbacks:
                        callbacks.remove(self._ack_tx_end_cb)
            hop = self._hop_event
            if hop is not None:
                # No-op unless an ack-wait continuation is mid-hop
                # (_enqueue_hop resets the mark on reuse).
                hop.cancel()
            done = self._cur_done
            if done is not None:
                self._cur_frame = None
                self._cur_done = None
                drops += 1
                if not done.triggered:
                    done.succeed(False)
            self._cur_ack = None
            self._cur_key = None
            self._ack_event = None
            self._resolved = None
            self._ack_in_progress = False
        for _frame, done in self._queue:
            drops += 1
            if not done.triggered:
                done.succeed(False)
        self._queue.clear()
        self._ack_queue.clear()
        self._pending_ack.clear()
        self.power_down_drops += drops
        if self.engine == ENGINE_FLAT:
            # Re-park on a fresh wakeup so power_up's kick restarts the
            # machine (it halted without reaching _resume_loop's park).
            # The generator worker owns its own parking and is left alone.
            self._wakeup = self.sim.event()
            self._wakeup.callbacks.append(self._on_wakeup)

    def power_up(self) -> None:
        """Undo :meth:`power_down`; the engine resumes on the next kick."""
        if not self._powered_down:
            return
        self._powered_down = False
        self._kick()

    # -- receive path ----------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        if frame.kind is FrameKind.ACK:
            waiter = self._pending_ack.get((frame.src, frame.seq))
            if waiter is not None and not waiter.triggered:
                waiter.succeed(frame)
            return
        addressed = frame.dst == self.radio.node_id
        if addressed and frame.require_ack:
            self._ack_queue.append(make_ack(frame, self.params.ack_bits))
            self._kick()
        if addressed or frame.dst == BROADCAST:
            if self._is_duplicate(frame):
                return
            if self._on_data is not None:
                self._on_data(frame)

    def _is_duplicate(self, frame: Frame) -> bool:
        entry = self._seen.get(frame.src)
        if entry is None:
            entry = self._seen[frame.src] = (collections.deque(), set())
        order, seen = entry
        seq = frame.seq
        if seq in seen:
            return True
        seen.add(seq)
        order.append(seq)
        if len(order) > _DEDUP_WINDOW:
            seen.discard(order.popleft())
        return False
