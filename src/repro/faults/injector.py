"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` per faulted run.  At construction it schedules
every scripted event, arms the random-churn Poisson clock and the
battery-drain poll, and from then on drives the whole kill/revive
machinery the engine layers expose:

* **Kill** — stop the node's traffic source, power down its MACs
  (cancelling in-flight contention timers and drop-counting queued
  frames), power down its radios, retire it from every
  :class:`~repro.channel.medium.Medium` (aborting its in-flight frames
  and repairing busy refcounts), then bump the topology epoch and
  invalidate every routing table's memoized trees against the full dead
  set.
* **Revive** — the exact inverse: restore on every medium, power the
  radios and MACs back up, and invalidate routing again.  Traffic
  sources are *not* restarted — a rebooted mote has an empty send queue
  and no application state, so a revived node relays but does not
  originate (documented, deliberate).

The ordering inside a kill matters: MACs are stopped while their radios
are still up (so timer teardown never observes a half-dead radio), radios
before the medium retire (so the port stops listening before the index
repair reads listening state), and routing last (so partition checks see
the post-repair topology).

Everything here is fault-path-only.  The zero plan never constructs an
injector, so no-fault runs execute none of this code and the pinned
golden digests cannot move.
"""

from __future__ import annotations

import typing

from repro.energy.battery import Battery
from repro.energy.residual import live_consumed_j
from repro.faults.lifetime import LifetimeMonitor
from repro.faults.plan import FaultPlan

if typing.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.models.scenario import ScenarioConfig, _BuiltNetwork
    from repro.sim.simulator import Simulator

#: Death causes recorded by the monitor.
CAUSE_SCRIPTED = "scripted"
CAUSE_CHURN = "churn"
CAUSE_BATTERY = "battery"


class FaultInjector:
    """Wires a :class:`FaultPlan` into a built network.

    Parameters
    ----------
    sim / config / built:
        The simulator, the scenario cell, and the network
        :func:`~repro.models.scenario.build_network` produced (the
        injector reads its radios, MACs, mediums, routing tables,
        senders, sources, meter bank and collector).
    plan:
        The non-trivial fault schedule (``plan.is_zero`` plans should
        never reach the injector — the scenario layer skips them).
    """

    def __init__(
        self,
        sim: "Simulator",
        config: "ScenarioConfig",
        built: "_BuiltNetwork",
        plan: FaultPlan,
    ):
        if plan.is_zero:
            raise ValueError(
                "a zero FaultPlan must not build an injector; the scenario "
                "layer skips inert plans to keep the no-fault path pristine"
            )
        self.sim = sim
        self.config = config
        self.built = built
        self.plan = plan
        self.monitor = LifetimeMonitor()
        #: Currently-dead node ids (battery deaths are permanent; churn
        #: deaths recover when the plan gives a mean downtime).
        self.dead: set[int] = set()
        #: Monotonic topology epoch, bumped on every kill/revive/link
        #: flip and handed to the routing tables' ``invalidate_epoch``.
        self.epoch = 0
        self._source_by_node = {
            source.node_id: source for source in built.sources
        }
        self._rng = sim.rng.stream("faults.schedule")
        self._schedule_scripted()
        self._arm_churn()
        self._arm_batteries()

    # -- scheduling ------------------------------------------------------

    def _schedule_scripted(self) -> None:
        for time_s, node in self.plan.crashes:
            self.sim.call_at(time_s, self._scripted_kill, node)
        for time_s, node in self.plan.recoveries:
            self.sim.call_at(time_s, self._scripted_revive, node)
        for time_s, a, b in self.plan.links_down:
            self.sim.call_at(time_s, self._set_link, a, b, False)
        for time_s, a, b in self.plan.links_up:
            self.sim.call_at(time_s, self._set_link, a, b, True)

    def _arm_churn(self) -> None:
        if self.plan.crash_rate_per_node_s > 0.0:
            self._schedule_next_crash()

    def _schedule_next_crash(self) -> None:
        # Fleet-level Poisson process: superposing n per-node processes
        # of rate λ is one process of rate nλ with a uniform victim.
        rate = self.plan.crash_rate_per_node_s * self.config.n_nodes
        self.sim.call_later(
            self._rng.expovariate(rate), self._churn_fire
        )

    def _churn_fire(self) -> None:
        candidates = [
            node
            for node in range(self.config.n_nodes)
            if node not in self.dead
            and not (self.plan.protect_sink and node == self.config.sink)
        ]
        if candidates:
            victim = self._rng.choice(candidates)
            self._kill(victim, CAUSE_CHURN)
            if self.plan.mean_downtime_s > 0.0:
                downtime = self._rng.expovariate(
                    1.0 / self.plan.mean_downtime_s
                )
                self.sim.call_later(downtime, self._churn_revive, victim)
        self._schedule_next_crash()

    def _churn_revive(self, node: int) -> None:
        # The node is still dead unless a scripted recovery got there
        # first; either way a second revival is a no-op, not an error —
        # churn schedules are advisory where scripts are exact.
        if node in self.dead:
            self._revive(node)

    def _arm_batteries(self) -> None:
        self._batteries: dict[int, Battery] = {}
        plan = self.plan
        if plan.battery_capacity_j is not None:
            for node in range(self.config.n_nodes):
                if plan.protect_sink and node == self.config.sink:
                    continue
                self._batteries[node] = Battery(plan.battery_capacity_j)
        for node, capacity in plan.battery_overrides:
            self._batteries[node] = Battery(capacity)
        #: Joules already billed against each battery (the meter bank's
        #: columns are cumulative; the poll drains only the delta).
        self._billed = {node: 0.0 for node in self._batteries}
        if self._batteries:
            self.sim.call_later(plan.battery_poll_s, self._poll_batteries)

    def _poll_batteries(self) -> None:
        bank = self.built.meter_bank
        assert bank is not None
        high_radios = self.built.high_radios
        pending = False
        for node in sorted(self._batteries):
            if node in self.dead:
                continue
            pending = True
            # live_consumed_j flushes the node's open idle/listen
            # integrator segment first, so a node that only listens still
            # spends its reservoir — the same flush-then-read the
            # residual-energy routing policy uses.
            total = live_consumed_j(bank, high_radios, node)
            delta = total - self._billed[node]
            self._billed[node] = total
            if delta > 0.0 and self._batteries[node].try_drain(delta):
                self._kill(node, CAUSE_BATTERY)
        if pending:
            # Every poll just refreshed the meters; fold the new residual
            # levels into any dynamic-cost routes so load migrates off
            # depleting relays *before* they die (no epoch bump — the
            # topology is unchanged).
            self._refresh_dynamic_costs()
            self.sim.call_later(self.plan.battery_poll_s, self._poll_batteries)

    def _refresh_dynamic_costs(self) -> None:
        for table in self.built.route_tables.values():
            refresh = getattr(table, "refresh_costs", None)
            if refresh is not None:
                refresh()

    # -- kill / revive ---------------------------------------------------

    def _scripted_kill(self, node: int) -> None:
        if node in self.dead:
            raise ValueError(
                f"scripted crash of node {node} at t={self.sim.now}: "
                "node is already dead"
            )
        self._kill(node, CAUSE_SCRIPTED)

    def _scripted_revive(self, node: int) -> None:
        if node not in self.dead:
            raise ValueError(
                f"scripted recovery of node {node} at t={self.sim.now}: "
                "node is not dead"
            )
        self._revive(node)

    def _kill(self, node: int, cause: str) -> None:
        built = self.built
        collector = built.collector
        delivered = float(collector.bits_delivered) if collector else 0.0
        self.monitor.note_death(self.sim.now, node, cause, delivered)
        self.dead.add(node)
        source = self._source_by_node.get(node)
        if source is not None:
            source.stop_s = self.sim.now
        if built.low_macs:
            built.low_macs[node].power_down()
        if built.high_macs:
            built.high_macs[node].power_down()
        if built.low_radios:
            built.low_radios[node].power_down()
        if built.high_radios:
            built.high_radios[node].power_down()
        for medium in built.mediums:
            medium.retire_node(node)
        self._invalidate_routing()

    def _revive(self, node: int) -> None:
        if node not in self.dead:
            raise ValueError(f"cannot revive node {node}: it is not dead")
        self.dead.discard(node)
        built = self.built
        for medium in built.mediums:
            medium.restore_node(node)
        if built.low_radios:
            built.low_radios[node].power_up()
        if built.high_radios:
            built.high_radios[node].power_up()
            if self.config.model == "wifi":
                # The wifi model's radios are woken once at build and
                # never managed again; a revived node must rejoin them.
                built.high_radios[node].wake()
        if built.low_macs:
            built.low_macs[node].power_up()
        if built.high_macs:
            built.high_macs[node].power_up()
        self.monitor.note_recovery()
        self._invalidate_routing()

    def _set_link(self, a: int, b: int, up: bool) -> None:
        for medium in self.built.mediums:
            medium.set_link(a, b, up=up)
        self.monitor.note_link_change()
        self._invalidate_routing()

    def _invalidate_routing(self) -> None:
        self.epoch += 1
        for table in self.built.route_tables.values():
            table.invalidate_epoch(self.epoch, self.dead)
        self.monitor.note_epoch(self._is_partitioned())

    def _is_partitioned(self) -> bool:
        """Whether some live sender cannot reach the sink on every tier.

        A dead sink partitions every live sender by definition (its
        routing rows read unreachable).  Dead senders are skipped — a
        node that cannot originate is not partitioned, just gone.
        """
        sink = self.config.sink
        for table in self.built.route_tables.values():
            for sender in self.built.senders:
                if sender in self.dead:
                    continue
                if not table.has_route(sender, sink):
                    return True
        return False

    # -- results ---------------------------------------------------------

    def counters(self) -> dict[str, float]:
        """The run's ``faults.*`` counters (monitor metrics plus the
        MAC-level drop tally the power-down path accumulates)."""
        out = self.monitor.counters()
        drops = 0
        for mac in self.built.low_macs + self.built.high_macs:
            drops += mac.power_down_drops
        out["faults.power_down_drops"] = float(drops)
        # Packets refused at ingestion because no route survived the
        # epoch (ForwardingAgent drops surface as ``fwd.unroutable``;
        # BCP's only exist on the fault path, so they live here).
        unroutable = 0
        for agent in self.built.agents:
            stats = getattr(agent, "stats", None)
            if stats is not None:
                unroutable += getattr(stats, "packets_unroutable", 0)
        out["faults.unroutable_drops"] = float(unroutable)
        out["faults.currently_dead"] = float(len(self.dead))
        return out
