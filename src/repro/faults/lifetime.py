"""Network-lifetime bookkeeping for faulted runs.

The paper motivates dual radios with node *lifetime*; once the fleet is
mortal, the scalar that matters is when the network stops being a
network.  :class:`LifetimeMonitor` records the classic lifetime metrics —
time of first node death, delivery at that instant, and how many
topology epochs left some live sender partitioned from the sink — as
plain floats that surface in ``RunResult.counters`` under ``faults.*``.

Sentinels are ``-1.0`` rather than ``inf`` (a run nobody died in has
``first_death_s == -1.0``) so the values stay JSON-round-trippable
through the result cache.
"""

from __future__ import annotations


class LifetimeMonitor:
    """Accumulates death/recovery/partition history during one run."""

    def __init__(self) -> None:
        #: Time of the first node death; -1.0 if every node survived.
        self.first_death_s = -1.0
        #: Sink-delivered bits at the moment of first death; -1.0 if none.
        self.delivered_bits_at_first_death = -1.0
        #: Node id of the first death; -1 if every node survived.
        self.first_death_node = -1
        self.deaths = 0
        self.battery_deaths = 0
        self.recoveries = 0
        self.link_changes = 0
        #: Topology epochs observed (every kill/revive/link flip is one).
        self.epochs = 0
        #: Epochs in which some live sender could not reach the sink.
        self.partitioned_epochs = 0

    def note_death(
        self, now_s: float, node: int, cause: str, delivered_bits: float
    ) -> None:
        """Record one node death (``cause`` is ``"scripted"``,
        ``"churn"`` or ``"battery"``)."""
        self.deaths += 1
        if cause == "battery":
            self.battery_deaths += 1
        if self.first_death_s < 0:
            self.first_death_s = now_s
            self.first_death_node = node
            self.delivered_bits_at_first_death = float(delivered_bits)

    def note_recovery(self) -> None:
        """Record one node revival."""
        self.recoveries += 1

    def note_link_change(self) -> None:
        """Record one scripted link transition."""
        self.link_changes += 1

    def note_epoch(self, partitioned: bool) -> None:
        """Record one topology epoch and its partition status."""
        self.epochs += 1
        if partitioned:
            self.partitioned_epochs += 1

    def counters(self) -> dict[str, float]:
        """The monitor's metrics as ``faults.*`` counter entries."""
        return {
            "faults.first_death_s": self.first_death_s,
            "faults.first_death_node": float(self.first_death_node),
            "faults.delivered_bits_at_first_death": (
                self.delivered_bits_at_first_death
            ),
            "faults.deaths": float(self.deaths),
            "faults.battery_deaths": float(self.battery_deaths),
            "faults.recoveries": float(self.recoveries),
            "faults.link_changes": float(self.link_changes),
            "faults.epochs": float(self.epochs),
            "faults.partitioned_epochs": float(self.partitioned_epochs),
        }
