"""Fault injection: node churn, battery deaths, and lifetime metrics.

See :mod:`repro.faults.plan` for the declarative schedule format,
:mod:`repro.faults.injector` for the runtime machinery, and
:mod:`repro.faults.lifetime` for the network-lifetime bookkeeping.
"""

from repro.faults.injector import FaultInjector
from repro.faults.lifetime import LifetimeMonitor
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan", "LifetimeMonitor"]
