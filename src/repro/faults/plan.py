"""Declarative fault schedules: what dies, when, and how.

A :class:`FaultPlan` is plain frozen data — hashable, canonicalizable by
the runner's config hashing, and round-trippable through JSON for the
CLI's ``--faults`` flag.  It describes three independent fault sources:

* **Scripted events** — exact ``(time, node)`` crash/recovery pairs and
  ``(time, a, b)`` link transitions.  Deterministic regardless of seed;
  the regression tests and the ``churn-1k`` bench case use these.
* **Random churn** — a Poisson process of node crashes at
  ``crash_rate_per_node_s`` per node, with exponentially distributed
  downtimes (``mean_downtime_s``; zero means crashed nodes stay dead).
  Drawn from the simulator's ``"faults.schedule"`` stream, so churn is a
  pure function of the scenario seed.
* **Battery depletion** — give every node (or listed nodes) a finite
  :class:`~repro.energy.battery.Battery` and poll the live
  :class:`~repro.energy.meter.MeterBank` columns every
  ``battery_poll_s``; a node whose cumulative radio draw exhausts its
  reservoir dies for good.

The zero plan (``FaultPlan()``) is inert by construction: scenario
execution only installs a :class:`~repro.faults.injector.FaultInjector`
for non-trivial plans, so the no-fault path — and every pinned golden
digest — is untouched byte for byte.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """One scenario's fault schedule.  All fields are plain data.

    Attributes
    ----------
    crashes:
        Scripted ``(time_s, node_id)`` node deaths.
    recoveries:
        Scripted ``(time_s, node_id)`` node revivals.  A recovery for a
        node that is alive at that time is an error at runtime — scripts
        are exact, not advisory.
    links_down / links_up:
        Scripted ``(time_s, a, b)`` link transitions, applied to every
        channel.  A downed link mutes both directions; routing tables are
        *not* rebuilt around it (static routing over a lossy link is the
        physically honest model — frames on the link simply never arrive).
    crash_rate_per_node_s:
        Poisson crash intensity per node per second (0 = no random churn).
    mean_downtime_s:
        Mean of the exponential downtime after a random crash; 0 means
        randomly crashed nodes never recover.
    battery_capacity_j:
        Give *every* node a battery of this capacity (None = no fleet
        batteries).
    battery_overrides:
        ``(node_id, capacity_j)`` pairs; listed nodes get their own
        capacity whether or not a fleet capacity is set.
    battery_poll_s:
        Period of the battery-drain poll.
    protect_sink:
        Exempt the sink from random churn and battery death (scripted
        events may still target it explicitly).
    """

    crashes: tuple[tuple[float, int], ...] = ()
    recoveries: tuple[tuple[float, int], ...] = ()
    links_down: tuple[tuple[float, int, int], ...] = ()
    links_up: tuple[tuple[float, int, int], ...] = ()
    crash_rate_per_node_s: float = 0.0
    mean_downtime_s: float = 0.0
    battery_capacity_j: float | None = None
    battery_overrides: tuple[tuple[int, float], ...] = ()
    battery_poll_s: float = 1.0
    protect_sink: bool = True

    @property
    def is_zero(self) -> bool:
        """True when the plan schedules nothing — no injector is built."""
        return (
            not self.crashes
            and not self.recoveries
            and not self.links_down
            and not self.links_up
            and self.crash_rate_per_node_s == 0.0
            and self.battery_capacity_j is None
            and not self.battery_overrides
        )

    def validate(self, n_nodes: int) -> None:
        """Check the plan against a deployment of ``n_nodes`` nodes.

        Raises
        ------
        ValueError
            On out-of-range nodes, negative times/rates, self-links, or a
            non-positive poll period / battery capacity.
        """
        for label, events in (("crashes", self.crashes),
                              ("recoveries", self.recoveries)):
            for time_s, node in events:
                if time_s < 0:
                    raise ValueError(f"{label}: negative time {time_s!r}")
                if not 0 <= node < n_nodes:
                    raise ValueError(
                        f"{label}: node {node} outside fleet of {n_nodes}"
                    )
        for label, events in (("links_down", self.links_down),
                              ("links_up", self.links_up)):
            for time_s, a, b in events:
                if time_s < 0:
                    raise ValueError(f"{label}: negative time {time_s!r}")
                if a == b:
                    raise ValueError(f"{label}: self-link {a}--{b}")
                for node in (a, b):
                    if not 0 <= node < n_nodes:
                        raise ValueError(
                            f"{label}: node {node} outside fleet of {n_nodes}"
                        )
        if self.crash_rate_per_node_s < 0:
            raise ValueError(
                f"negative crash rate {self.crash_rate_per_node_s!r}"
            )
        if self.mean_downtime_s < 0:
            raise ValueError(f"negative mean downtime {self.mean_downtime_s!r}")
        if self.battery_capacity_j is not None and self.battery_capacity_j <= 0:
            raise ValueError(
                f"battery capacity must be positive, "
                f"got {self.battery_capacity_j!r}"
            )
        seen: set[int] = set()
        for node, capacity in self.battery_overrides:
            if not 0 <= node < n_nodes:
                raise ValueError(
                    f"battery_overrides: node {node} outside fleet of {n_nodes}"
                )
            if node in seen:
                raise ValueError(
                    f"battery_overrides lists node {node} more than once"
                )
            seen.add(node)
            if capacity <= 0:
                raise ValueError(
                    f"battery_overrides: capacity must be positive for node "
                    f"{node}, got {capacity!r}"
                )
        if self.battery_poll_s <= 0:
            raise ValueError(
                f"battery_poll_s must be positive, got {self.battery_poll_s!r}"
            )

    def to_dict(self) -> dict[str, typing.Any]:
        """JSON-ready mapping (tuples become lists)."""
        out = dataclasses.asdict(self)
        for key, value in out.items():
            if isinstance(value, tuple):
                out[key] = [list(item) for item in value]
        return out

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, typing.Any]) -> "FaultPlan":
        """Build a plan from a JSON-decoded mapping (the CLI's format).

        Raises
        ------
        ValueError
            On unknown keys, so a typo in a fault file fails loudly
            instead of silently scheduling nothing.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultPlan keys {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        kwargs: dict[str, typing.Any] = {}
        for key, value in data.items():
            if isinstance(value, list):
                kwargs[key] = tuple(tuple(item) for item in value)
            else:
                kwargs[key] = value
        return cls(**kwargs)
