"""Burst-size diminishing returns (paper Section 2.2, Figure 4).

"Fig. 4 shows the energy savings from sending n packets in one shot in
comparison to waking up n times and sending 1 packet at each awake period.
...  The energy savings are greater when nodes idle 100 ms before turning
off (labeled as 'idle').  Since, in both cases, the majority of savings are
obtained when n = 10, this can be used as the rule of thumb to determine
the burst size."
"""

from __future__ import annotations

import typing

from repro.analysis.feasibility import Series
from repro.energy.radio_specs import CABLETRON, LUCENT_2, LUCENT_11, RadioSpec

#: The pre-sleep idle the paper's "idle" variant charges per awake period.
IDLE_BEFORE_OFF_S = 0.1

#: Packet size used in Fig. 4 ("10 packets (i.e., 10 KB)" → 1 KB packets).
FIG4_PACKET_BYTES = 1024


def packet_energy_j(spec: RadioSpec, packet_bytes: int = FIG4_PACKET_BYTES) -> float:
    """Link (tx+rx) energy of one data packet over ``spec``."""
    bits = packet_bytes * 8 + spec.header_bits
    return spec.link_power_w * bits / spec.rate_bps


def awake_overhead_j(spec: RadioSpec, idle_before_off_s: float = 0.0) -> float:
    """Fixed cost of one awake period: both ends wake (+ optional idling)."""
    overhead = 2.0 * spec.e_wakeup_j
    overhead += 2.0 * spec.p_idle_w * idle_before_off_s
    return overhead


def burst_savings_fraction(
    spec: RadioSpec,
    n_packets: int,
    idle_before_off_s: float = 0.0,
    packet_bytes: int = FIG4_PACKET_BYTES,
) -> float:
    """Savings of one n-packet burst vs n single-packet awake periods.

    ``1 - E_bulk / E_one_by_one`` — zero at n = 1 by construction, rising
    toward ``overhead / (overhead + packet)`` as n grows.
    """
    if n_packets < 1:
        raise ValueError("n_packets must be at least 1")
    packet = packet_energy_j(spec, packet_bytes)
    overhead = awake_overhead_j(spec, idle_before_off_s)
    one_by_one = n_packets * (overhead + packet)
    bulk = overhead + n_packets * packet
    return 1.0 - bulk / one_by_one


def fig4_savings_vs_burst(
    burst_sizes: typing.Sequence[int] | None = None,
) -> list[Series]:
    """Fig. 4: savings fraction vs burst size, with and without idling."""
    if burst_sizes is None:
        sizes: list[int] = []
        n = 1
        while n <= 1000:
            sizes.append(n)
            n = max(n + 1, int(n * 1.3))
        if sizes[-1] != 1000:
            sizes.append(1000)
    else:
        sizes = list(burst_sizes)
    series = []
    for spec in (CABLETRON, LUCENT_2, LUCENT_11):
        fractions = [burst_savings_fraction(spec, n) for n in sizes]
        series.append(
            Series(
                spec.name,
                tuple(float(n) for n in sizes),
                tuple(fractions),
            )
        )
    for spec in (CABLETRON, LUCENT_2, LUCENT_11):
        fractions = [
            burst_savings_fraction(spec, n, idle_before_off_s=IDLE_BEFORE_OFF_S)
            for n in sizes
        ]
        series.append(
            Series(
                f"{spec.name}-Idle",
                tuple(float(n) for n in sizes),
                tuple(fractions),
            )
        )
    return series


def knee_burst_size(
    spec: RadioSpec,
    idle_before_off_s: float = 0.0,
    capture_fraction: float = 0.9,
) -> int:
    """Smallest n capturing ``capture_fraction`` of the asymptotic savings.

    The paper's rule of thumb says this lands around n = 10.
    """
    if not 0 < capture_fraction < 1:
        raise ValueError("capture_fraction must be in (0, 1)")
    asymptote = burst_savings_fraction(spec, 10**9, idle_before_off_s)
    n = 1
    while burst_savings_fraction(spec, n, idle_before_off_s) < (
        capture_fraction * asymptote
    ):
        n += 1
    return n
