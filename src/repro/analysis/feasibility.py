"""Feasibility study series (paper Section 2.2, Figures 1–3).

These are closed-form sweeps over the Section 2.1 equations:

* :func:`fig1_energy_vs_size` — energy to move ``s`` bytes one hop, for
  each sensor radio alone and each 802.11+Micaz pairing (Fig. 1's log-log
  curves whose crossings are the break-even points).
* :func:`fig2_breakeven_vs_idle` — ``s*`` as the high-power radios idle
  longer before/after the transfer (Fig. 2).
* :func:`fig3_breakeven_vs_forward_progress` — ``s*`` as one high-power
  hop replaces 1–6 low-power hops (Fig. 3).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.energy.breakeven import (
    DualRadioLink,
    breakeven_bits,
    breakeven_bits_multihop,
    energy_high,
    energy_low,
)
from repro.energy.radio_specs import (
    CABLETRON,
    LUCENT_2,
    LUCENT_11,
    MICA,
    MICA2,
    MICAZ,
    RadioSpec,
)
from repro.units import bits_to_kb, kb_to_bits


@dataclasses.dataclass(frozen=True)
class Series:
    """One named curve: x values, y values, and axis labels."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal length")


def _log_space(start: float, stop: float, points: int) -> list[float]:
    return [float(v) for v in numpy.logspace(
        numpy.log10(start), numpy.log10(stop), points
    )]


def fig1_energy_vs_size(
    sizes_kb: typing.Sequence[float] | None = None,
) -> list[Series]:
    """Fig. 1: energy (mJ) vs data size (KB), single hop.

    Curves: Mica, Mica2, Micaz alone; Cabletron/Lucent-2/Lucent-11 paired
    with Micaz (the paper's dual-radio combinations).
    """
    sizes = list(sizes_kb) if sizes_kb is not None else _log_space(0.1, 10.0, 50)
    series: list[Series] = []
    for spec in (MICA, MICA2, MICAZ):
        energies = [
            energy_low(kb_to_bits(size), spec) * 1e3 for size in sizes
        ]
        series.append(Series(spec.name, tuple(sizes), tuple(energies)))
    for high in (CABLETRON, LUCENT_2, LUCENT_11):
        link = DualRadioLink(low=MICAZ, high=high)
        energies = [
            energy_high(kb_to_bits(size), link) * 1e3 for size in sizes
        ]
        series.append(
            Series(f"{high.name}-Micaz", tuple(sizes), tuple(energies))
        )
    return series


#: The radio pairings Fig. 2 plots.
FIG2_PAIRS: tuple[tuple[RadioSpec, RadioSpec], ...] = (
    (CABLETRON, MICA),
    (CABLETRON, MICA2),
    (LUCENT_2, MICA),
    (LUCENT_2, MICA2),
    (LUCENT_11, MICA),
    (LUCENT_11, MICA2),
    (LUCENT_11, MICAZ),
)


def fig2_breakeven_vs_idle(
    idle_times_s: typing.Sequence[float] | None = None,
) -> list[Series]:
    """Fig. 2: break-even size (KB) vs total high-radio idle time (s)."""
    idles = (
        list(idle_times_s)
        if idle_times_s is not None
        else _log_space(1e-3, 10.0, 50)
    )
    series = []
    for high, low in FIG2_PAIRS:
        points = []
        for idle in idles:
            link = DualRadioLink(low=low, high=high, idle_s=idle)
            points.append(bits_to_kb(breakeven_bits(link)))
        series.append(
            Series(f"{high.name}-{low.name}", tuple(idles), tuple(points))
        )
    return series


#: The radio pairings Fig. 3 plots (the 2 Mb/s radios, which have the range
#: advantage; Lucent 11 Mb/s has sensor-equal range, see Section 2.2).
FIG3_PAIRS: tuple[tuple[RadioSpec, RadioSpec], ...] = (
    (CABLETRON, MICA),
    (CABLETRON, MICA2),
    (CABLETRON, MICAZ),
    (LUCENT_2, MICA),
    (LUCENT_2, MICA2),
    (LUCENT_2, MICAZ),
)


def fig3_breakeven_vs_forward_progress(
    max_hops: int = 6,
) -> list[Series]:
    """Fig. 3: break-even size (KB) vs forward progress (hops).

    Infinite break-even points (infeasible configurations) are reported as
    ``float('inf')`` — the paper's curves simply start at the first
    feasible hop count.
    """
    hops = list(range(1, max_hops + 1))
    series = []
    for high, low in FIG3_PAIRS:
        link = DualRadioLink(low=low, high=high)
        points = [
            bits_to_kb(breakeven_bits_multihop(link, fp)) for fp in hops
        ]
        series.append(
            Series(
                f"{high.name}-{low.name}",
                tuple(float(fp) for fp in hops),
                tuple(points),
            )
        )
    return series


def crossover_table() -> dict[str, float]:
    """Break-even sizes (KB) for the Fig. 1 pairings (inf = infeasible)."""
    out = {}
    for high in (CABLETRON, LUCENT_2, LUCENT_11):
        link = DualRadioLink(low=MICAZ, high=high)
        out[f"{high.name}-Micaz"] = bits_to_kb(breakeven_bits(link))
    return out
