"""Closed-form analysis sweeps behind Figures 1–4."""

from repro.analysis.burst_savings import (
    FIG4_PACKET_BYTES,
    IDLE_BEFORE_OFF_S,
    awake_overhead_j,
    burst_savings_fraction,
    fig4_savings_vs_burst,
    knee_burst_size,
    packet_energy_j,
)
from repro.analysis.feasibility import (
    FIG2_PAIRS,
    FIG3_PAIRS,
    Series,
    crossover_table,
    fig1_energy_vs_size,
    fig2_breakeven_vs_idle,
    fig3_breakeven_vs_forward_progress,
)

__all__ = [
    "FIG2_PAIRS",
    "FIG3_PAIRS",
    "FIG4_PACKET_BYTES",
    "IDLE_BEFORE_OFF_S",
    "Series",
    "awake_overhead_j",
    "burst_savings_fraction",
    "crossover_table",
    "fig1_energy_vs_size",
    "fig2_breakeven_vs_idle",
    "fig3_breakeven_vs_forward_progress",
    "fig4_savings_vs_burst",
    "knee_burst_size",
    "packet_energy_j",
]
