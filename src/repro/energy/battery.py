"""A simple battery model for lifetime extrapolation.

The paper motivates dual radios with node *lifetime* (weeks to months).
:class:`Battery` converts a measured average power draw into a projected
lifetime and supports draining against a capacity, which the examples use to
translate normalized-energy wins into "days of deployment" terms.
"""

from __future__ import annotations

#: Energy content of a pair of AA alkaline cells (~2 × 2850 mAh × 1.5 V),
#: the standard mote power source.
AA_PAIR_CAPACITY_J = 2 * 2.850 * 1.5 * 3600.0


class BatteryDepleted(Exception):
    """Raised when a drain request exceeds the remaining charge."""


class Battery:
    """Finite energy reservoir.

    Parameters
    ----------
    capacity_j:
        Total energy in joules (defaults to a pair of AA cells).
    """

    def __init__(self, capacity_j: float = AA_PAIR_CAPACITY_J):
        if capacity_j <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_j!r}")
        self.capacity_j = capacity_j
        self.remaining_j = capacity_j

    @property
    def fraction_remaining(self) -> float:
        """Remaining charge as a fraction of capacity in [0, 1]."""
        return self.remaining_j / self.capacity_j

    @property
    def is_depleted(self) -> bool:
        """Whether the battery has no usable charge left."""
        return self.remaining_j <= 0.0

    def drain(self, joules: float) -> None:
        """Remove ``joules`` from the battery.

        Raises
        ------
        BatteryDepleted
            If less than ``joules`` remain; the battery is left untouched so
            callers can decide how to handle node death.
        ValueError
            If ``joules`` is negative.
        """
        if joules < 0:
            raise ValueError(f"cannot drain negative energy {joules!r}")
        if joules > self.remaining_j:
            raise BatteryDepleted(
                f"requested {joules:.3f} J with {self.remaining_j:.3f} J left"
            )
        self.remaining_j -= joules

    def try_drain(self, joules: float) -> bool:
        """Remove up to ``joules``, clamping at empty; True when depleted.

        The non-throwing counterpart of :meth:`drain` for the fault
        injector's death path: an overdraw consumes whatever charge was
        left (the final partial joule is accounted, not lost to an
        exception) and leaves the battery exactly at zero.

        Raises
        ------
        ValueError
            If ``joules`` is negative.
        """
        if joules < 0:
            raise ValueError(f"cannot drain negative energy {joules!r}")
        remaining = self.remaining_j - joules
        self.remaining_j = remaining if remaining > 0.0 else 0.0
        return self.remaining_j <= 0.0

    def lifetime_s(self, average_power_w: float) -> float:
        """Projected lifetime of the *remaining* charge at a constant draw."""
        if average_power_w <= 0:
            return float("inf")
        return self.remaining_j / average_power_w

    def lifetime_days(self, average_power_w: float) -> float:
        """Projected lifetime in days at a constant draw."""
        return self.lifetime_s(average_power_w) / 86400.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Battery {self.remaining_j:.0f}/{self.capacity_j:.0f} J "
            f"({self.fraction_remaining:.1%})>"
        )
