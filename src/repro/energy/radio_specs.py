"""Radio energy characteristics (the paper's Table 1) and derived quantities.

The paper evaluates three IEEE 802.11 NICs (Cabletron, Lucent 2 Mb/s,
Lucent 11 Mb/s) and three sensor radios (Mica, Mica2, Micaz).  Table 1 lists,
per radio: bit rate, transmit power, receive power, idle power and wake-up
energy (mW / mJ).  This module encodes those numbers in SI units, fills the
few gaps the table leaves (documented per-field below) and derives the
per-bit costs the break-even analysis needs.

Gaps filled relative to Table 1:

* ``Pi`` (idle power) is "N/A" for Mica2 and Micaz — for these
  receive-while-idle radios we use the receive power, the standard
  assumption for CC1000/CC2420-class transceivers (idle listening costs the
  same as receiving).
* Sensor radios have no ``Ewakeup`` entry; their wake-up cost is negligible
  and modelled as zero (they are the always-on control plane).
* Wake-up *latency* is not in the table.  We derive it as
  ``e_wakeup / p_idle`` (the time the radio would take to burn the wake-up
  energy at idle power), giving ~0.7–1.6 ms for the 802.11 NICs, and allow
  overriding.
* Transmission ranges come from Section 2.2: ~250 m for the 2 Mb/s 802.11
  radios, ~40 m for sensor radios, and the paper assumes Lucent 11 Mb/s has
  the *same* range as the sensor radios (rate–range trade-off).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.units import (
    BITS_PER_BYTE,
    kbps_to_bps,
    mbps_to_bps,
    mj_to_j,
    mw_to_w,
)


@dataclasses.dataclass(frozen=True)
class RadioEnergyModel:
    """First-order radio model: ``E_ELEC + E_AMP * d^alpha`` per bit.

    The standard sensor-network abstraction (Heinzelman et al.; the
    LASensorNetwork lineage): transmitting one bit over distance ``d``
    costs a fixed electronics term plus an amplifier term growing with
    the path-loss exponent, while receiving costs the electronics term
    alone.  It is the distance-*dependent* cost the Table 1 specs cannot
    express (they bill one nominal power at one nominal range), and it is
    what makes energy-aware route selection meaningful: a long hop is
    superlinearly more expensive than two short ones.

    Attributes
    ----------
    e_elec_j_per_bit:
        Transceiver electronics energy per bit (tx and rx sides alike).
    e_amp_j_per_bit:
        Amplifier energy per bit per ``m^alpha``.
    path_loss_exponent:
        ``alpha``; 2 for free space, up to ~4 for lossy ground-level
        channels.
    """

    e_elec_j_per_bit: float = 50e-9
    e_amp_j_per_bit: float = 100e-12
    path_loss_exponent: float = 2.0

    def tx_cost_j(self, bits: float, distance_m: float) -> float:
        """Energy to transmit ``bits`` over ``distance_m`` meters.

        ``distance_m <= 0`` (self-delivery, co-located nodes) degenerates
        to the electronics term alone.
        """
        if distance_m <= 0.0:
            return self.e_elec_j_per_bit * bits
        return bits * (
            self.e_elec_j_per_bit
            + self.e_amp_j_per_bit * distance_m**self.path_loss_exponent
        )

    def rx_cost_j(self, bits: float) -> float:
        """Energy to receive ``bits`` (distance-independent)."""
        return self.e_elec_j_per_bit * bits


#: The literature-standard parameterization (50 nJ/bit electronics,
#: 100 pJ/bit/m² amplifier, free-space exponent) — the shared flyweight
#: every energy-aware routing policy uses unless a scenario overrides it.
FIRST_ORDER_RADIO_MODEL = RadioEnergyModel()


@dataclasses.dataclass(frozen=True)
class TxPowerLevel:
    """One discrete transmit power setting: draw plus nominal reach."""

    p_tx_w: float
    range_m: float


#: EE662-style discrete transmit-power ladder for the CC2420-class sensor
#: radio: output-power register steps (datasheet draw at 3 V: 8.5 mA at
#: -25 dBm up to 17.4 mA at 0 dBm) mapped onto the paper's 40 m nominal
#: range.  Assign via ``RadioSpec.replace(tx_power_levels=TX_POWER_LEVELS)``;
#: the default specs keep an empty ladder, so nothing changes unless a
#: scenario opts in.
TX_POWER_LEVELS: tuple[TxPowerLevel, ...] = (
    TxPowerLevel(p_tx_w=mw_to_w(25.5), range_m=10.0),
    TxPowerLevel(p_tx_w=mw_to_w(33.0), range_m=20.0),
    TxPowerLevel(p_tx_w=mw_to_w(42.0), range_m=30.0),
    TxPowerLevel(p_tx_w=mw_to_w(52.2), range_m=40.0),
)


@dataclasses.dataclass(frozen=True)
class RadioSpec:
    """Static energy/timing characteristics of one radio model.

    All fields are SI: watts, joules, seconds, bits/s, meters.

    Attributes
    ----------
    name:
        Human-readable radio name as used in the paper's figures.
    kind:
        ``"low"`` for sensor radios, ``"high"`` for IEEE 802.11 radios.
    rate_bps:
        Nominal bit rate.
    p_tx_w / p_rx_w / p_idle_w:
        Power draw while transmitting / receiving / idle-listening.
    p_sleep_w:
        Power draw asleep (0 for the radios Table 1 covers; kept for
        completeness and the testbed's CC2420 model).
    e_wakeup_j:
        Energy to transition this radio from off to idle.
    t_wakeup_s:
        Latency of that transition.
    range_m:
        Nominal transmission range (Section 2.2).
    payload_bytes / header_bytes:
        Default data-packet payload and header sizes used with this radio
        class (Section 4.1: 32 B sensor packets, 1024 B 802.11 packets).
    tx_power_levels:
        Optional discrete transmit-power ladder (EE662-style).  Empty —
        the default for every Table 1 spec — means the radio always
        transmits at ``p_tx_w``; non-empty lets the port pick the
        cheapest level whose reach covers the next hop.
    """

    name: str
    kind: str
    rate_bps: float
    p_tx_w: float
    p_rx_w: float
    p_idle_w: float
    p_sleep_w: float = 0.0
    e_wakeup_j: float = 0.0
    t_wakeup_s: float = 0.0
    range_m: float = 0.0
    payload_bytes: int = 32
    header_bytes: int = 8
    tx_power_levels: tuple[TxPowerLevel, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("low", "high"):
            raise ValueError(f"kind must be 'low' or 'high', got {self.kind!r}")
        if self.rate_bps <= 0:
            raise ValueError(f"{self.name}: rate must be positive")
        for field in ("p_tx_w", "p_rx_w", "p_idle_w", "p_sleep_w", "e_wakeup_j"):
            if getattr(self, field) < 0:
                raise ValueError(f"{self.name}: {field} must be non-negative")
        for level in self.tx_power_levels:
            if level.p_tx_w <= 0 or level.range_m <= 0:
                raise ValueError(
                    f"{self.name}: tx power levels need positive power and "
                    f"range, got {level!r}"
                )

    # -- derived quantities ------------------------------------------------

    @property
    def payload_bits(self) -> int:
        """Default payload size in bits."""
        return self.payload_bytes * BITS_PER_BYTE

    @property
    def header_bits(self) -> int:
        """Default header size in bits."""
        return self.header_bytes * BITS_PER_BYTE

    @property
    def packet_bits(self) -> int:
        """Default on-air packet size (payload + header) in bits."""
        return self.payload_bits + self.header_bits

    @property
    def link_power_w(self) -> float:
        """Combined sender+receiver power while a frame is on the air.

        This is the ``Ptx + Prx`` term of Equations 1 and 2.
        """
        return self.p_tx_w + self.p_rx_w

    def energy_per_payload_bit(self) -> float:
        """Link energy (tx+rx) per *payload* bit with default packet sizes.

        This is ``(Ptx+Prx)/R * (1 + hs/ps)`` — the per-bit slope used by
        the break-even denominator in Equation 3.
        """
        overhead = 1.0 + self.header_bits / self.payload_bits
        return self.link_power_w / self.rate_bps * overhead

    def airtime(self, size_bits: float) -> float:
        """Time to clock ``size_bits`` onto the air at this radio's rate."""
        return size_bits / self.rate_bps

    def packet_airtime(self, payload_bits: float | None = None) -> float:
        """Airtime of one packet (header included)."""
        payload = self.payload_bits if payload_bits is None else payload_bits
        return (payload + self.header_bits) / self.rate_bps

    def tx_power_for_range(self, distance_m: float) -> float:
        """Cheapest discrete transmit power whose reach covers ``distance_m``.

        Falls back to the nominal ``p_tx_w`` when the ladder is empty or
        no level reaches far enough (transmitting at full power is the
        only way to even *attempt* an out-of-ladder hop).
        """
        best = None
        for level in self.tx_power_levels:
            if level.range_m >= distance_m:
                if best is None or level.p_tx_w < best:
                    best = level.p_tx_w
        return self.p_tx_w if best is None else best

    def replace(self, **changes: typing.Any) -> "RadioSpec":
        """Return a copy with ``changes`` applied (delegates to dataclasses)."""
        return dataclasses.replace(self, **changes)


def _derived_wakeup_latency(e_wakeup_j: float, p_idle_w: float) -> float:
    return e_wakeup_j / p_idle_w if p_idle_w > 0 else 0.0


# --------------------------------------------------------------------------
# Table 1 — IEEE 802.11 radios (high-power).
# --------------------------------------------------------------------------

CABLETRON = RadioSpec(
    name="Cabletron",
    kind="high",
    rate_bps=mbps_to_bps(2),
    p_tx_w=mw_to_w(1400.0),
    p_rx_w=mw_to_w(1000.0),
    p_idle_w=mw_to_w(830.0),
    e_wakeup_j=mj_to_j(1.328),
    t_wakeup_s=_derived_wakeup_latency(mj_to_j(1.328), mw_to_w(830.0)),
    range_m=250.0,
    payload_bytes=1024,
    header_bytes=34,
)

LUCENT_2 = RadioSpec(
    name="Lucent (2Mbps)",
    kind="high",
    rate_bps=mbps_to_bps(2),
    p_tx_w=mw_to_w(1327.2),
    p_rx_w=mw_to_w(966.9),
    p_idle_w=mw_to_w(843.7),
    e_wakeup_j=mj_to_j(0.6),
    t_wakeup_s=_derived_wakeup_latency(mj_to_j(0.6), mw_to_w(843.7)),
    range_m=250.0,
    payload_bytes=1024,
    header_bytes=34,
)

LUCENT_11 = RadioSpec(
    name="Lucent (11Mbps)",
    kind="high",
    rate_bps=mbps_to_bps(11),
    p_tx_w=mw_to_w(1346.1),
    p_rx_w=mw_to_w(900.6),
    p_idle_w=mw_to_w(739.4),
    e_wakeup_j=mj_to_j(0.6),
    t_wakeup_s=_derived_wakeup_latency(mj_to_j(0.6), mw_to_w(739.4)),
    # Section 2.2: at 11 Mb/s the range is assumed equal to the sensor radio.
    range_m=40.0,
    payload_bytes=1024,
    header_bytes=34,
)

# --------------------------------------------------------------------------
# Table 1 — sensor radios (low-power).
# --------------------------------------------------------------------------

MICA = RadioSpec(
    name="Mica",
    kind="low",
    rate_bps=kbps_to_bps(40),
    p_tx_w=mw_to_w(81.0),
    p_rx_w=mw_to_w(30.0),
    p_idle_w=mw_to_w(30.0),
    range_m=40.0,
    payload_bytes=32,
    header_bytes=8,
)

MICA2 = RadioSpec(
    name="Mica2",
    kind="low",
    rate_bps=kbps_to_bps(38.4),
    p_tx_w=mw_to_w(42.0),
    p_rx_w=mw_to_w(29.0),
    # Table 1 lists Pi as N/A; idle listening costs receive power on CC1000.
    p_idle_w=mw_to_w(29.0),
    range_m=40.0,
    payload_bytes=32,
    header_bytes=8,
)

MICAZ = RadioSpec(
    name="Micaz",
    kind="low",
    rate_bps=kbps_to_bps(250),
    p_tx_w=mw_to_w(51.0),
    p_rx_w=mw_to_w(59.1),
    # Table 1 lists Pi as N/A; idle listening costs receive power on CC2420.
    p_idle_w=mw_to_w(59.1),
    range_m=40.0,
    payload_bytes=32,
    header_bytes=8,
)

#: All Table 1 radios by paper name.
TABLE_1: dict[str, RadioSpec] = {
    spec.name: spec
    for spec in (CABLETRON, LUCENT_2, LUCENT_11, MICA, MICA2, MICAZ)
}

#: The high-power (IEEE 802.11) radios, in Table 1 order.
HIGH_POWER_RADIOS: tuple[RadioSpec, ...] = (CABLETRON, LUCENT_2, LUCENT_11)

#: The low-power (sensor) radios, in Table 1 order.
LOW_POWER_RADIOS: tuple[RadioSpec, ...] = (MICA, MICA2, MICAZ)


def get_spec(name: str) -> RadioSpec:
    """Look up a Table 1 radio by its paper name (case-insensitive).

    Raises
    ------
    KeyError
        If no radio of that name exists, listing the valid names.
    """
    for key, spec in TABLE_1.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(f"unknown radio {name!r}; expected one of {sorted(TABLE_1)}")
