"""Energy accounting: categorized meters and power-over-time integrators.

Every node owns an :class:`EnergyMeter`; radios, MACs and BCP charge energy
into named categories (``"tx"``, ``"rx"``, ``"idle"``, ``"wakeup"``,
``"overhear"``...).  The evaluation models differ *only* in which categories
they charge — e.g. the paper's "Sensor-ideal" baseline ignores idle and
overhearing — so keeping categories separate lets one simulation produce
both ideal and full accountings.

Two storage layouts implement the same charging interface:

* :class:`EnergyMeter` — one standalone dict-backed meter.  Right for unit
  tests and hand-built stacks of a few nodes.
* :class:`MeterBank` — struct-of-arrays accounting for a whole fleet:
  one ``(component, category) → per-node float column`` table instead of
  n per-node dicts.  :meth:`MeterBank.meter` hands out
  :class:`NodeMeter` views that radios charge exactly like an
  :class:`EnergyMeter`, while fleet-wide reductions
  (:meth:`MeterBank.fleet_total`) read whole columns without touching n
  objects.  This is what lets a 10k-node scenario allocate two float
  columns per charge category rather than ten thousand dictionaries.
"""

from __future__ import annotations

import collections
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

#: Canonical charge categories used across the library.
CATEGORY_TX = "tx"
CATEGORY_RX = "rx"
CATEGORY_IDLE = "idle"
CATEGORY_SLEEP = "sleep"
CATEGORY_WAKEUP = "wakeup"
CATEGORY_OVERHEAR = "overhear"


class EnergyMeter:
    """Accumulates joules per (component, category).

    Parameters
    ----------
    name:
        Identifies the owner (typically the node id) in reports.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._energy: dict[tuple[str, str], float] = collections.defaultdict(float)

    def charge(self, joules: float, component: str, category: str) -> None:
        """Add ``joules`` under ``(component, category)``.

        Raises
        ------
        ValueError
            If ``joules`` is negative — energy only flows out of batteries.
        """
        if joules < 0:
            raise ValueError(
                f"negative energy charge {joules!r} for {component}/{category}"
            )
        self._energy[(component, category)] += joules

    def total(
        self,
        component: str | None = None,
        categories: typing.Collection[str] | None = None,
    ) -> float:
        """Total joules, optionally filtered by component and/or categories."""
        total = 0.0
        for (comp, cat), joules in self._energy.items():
            if component is not None and comp != component:
                continue
            if categories is not None and cat not in categories:
                continue
            total += joules
        return total

    def breakdown(self) -> dict[tuple[str, str], float]:
        """A copy of the raw (component, category) → joules mapping."""
        return dict(self._energy)

    def by_category(self, component: str | None = None) -> dict[str, float]:
        """Joules per category (summed over components unless one is given)."""
        out: dict[str, float] = collections.defaultdict(float)
        for (comp, cat), joules in self._energy.items():
            if component is None or comp == component:
                out[cat] += joules
        return dict(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EnergyMeter {self.name!r} total={self.total():.6f} J>"


class MeterBank:
    """Struct-of-arrays energy accounting for a fleet of ``n_nodes`` nodes.

    Storage is one float column per ``(component, category)`` pair plus
    one int column recording when each node first charged that pair —
    columns materialize lazily on first charge — so the per-node cost is
    a couple of array cells per category actually used, not a dict per
    node.

    The first-charge sequence column exists for *bit-reproducibility*:
    a per-node :class:`EnergyMeter` sums a node's categories in that
    node's dict-insertion order, and float addition is not associative,
    so reads through :class:`NodeMeter` replay exactly that order.  The
    pinned golden digests depend on it.

    Parameters
    ----------
    n_nodes:
        Fleet size; nodes are indexed ``0..n_nodes - 1``.
    name_prefix:
        Per-node view names are ``f"{name_prefix}{index}"`` (matching the
        historical ``EnergyMeter(f"node{i}")`` naming in reports).
    """

    def __init__(self, n_nodes: int, name_prefix: str = "node"):
        if n_nodes < 1:
            raise ValueError("a meter bank needs at least one node")
        self.n_nodes = n_nodes
        self.name_prefix = name_prefix
        self._energy: dict[tuple[str, str], list[float]] = {}
        #: Per-key int column: global sequence number of the node's first
        #: charge of that key (-1 = never charged).  Sorting a node's
        #: keys by it reproduces the node's dict-insertion order.
        self._first_seq: dict[tuple[str, str], list[int]] = {}
        self._next_seq = 0
        #: Resolved fanout plans, keyed (component, charges tuple) — see
        #: :meth:`charge_reception_fanout`.
        self._fanout_plans: dict[
            tuple[str, tuple[tuple[float, str], ...]],
            list[tuple[float, list[float], list[int]]],
        ] = {}

    def charge(
        self, index: int, joules: float, component: str, category: str
    ) -> None:
        """Add ``joules`` for node ``index`` under ``(component, category)``.

        Raises
        ------
        ValueError
            If ``joules`` is negative — energy only flows out of batteries.
        """
        if joules < 0:
            raise ValueError(
                f"negative energy charge {joules!r} for {component}/{category}"
            )
        key = (component, category)
        column = self._energy.get(key)
        if column is None:
            column = self._energy[key] = [0.0] * self.n_nodes
            seq = self._first_seq[key] = [-1] * self.n_nodes
        else:
            seq = self._first_seq[key]
        if seq[index] < 0:
            seq[index] = self._next_seq
            self._next_seq += 1
        column[index] += joules

    def _column_pair(
        self, component: str, category: str
    ) -> tuple[list[float], list[int]]:
        """The (values, first-charge-seq) columns for one key, creating
        them on first use exactly like :meth:`charge` does."""
        key = (component, category)
        column = self._energy.get(key)
        if column is None:
            column = self._energy[key] = [0.0] * self.n_nodes
            seq = self._first_seq[key] = [-1] * self.n_nodes
        else:
            seq = self._first_seq[key]
        return column, seq

    def fanout_plan(
        self, component: str, charges: typing.Sequence[tuple[float, str]]
    ) -> list[tuple[float, list[float], list[int]]]:
        """Resolve (and cache) the column plan for one charge tuple.

        Charges are validated once, when the plan is first built; the
        returned list aliases the bank's live columns and stays valid for
        the bank's lifetime.  Pair with :meth:`apply_fanout` to skip the
        per-call key build and validation of
        :meth:`charge_reception_fanout` on paths that already memoize per
        frame shape (the medium's delivery loop).
        """
        key = (component, tuple(charges))
        plan = self._fanout_plans.get(key)
        if plan is None:
            for joules, category in charges:
                if joules < 0:
                    raise ValueError(
                        f"negative energy charge {joules!r} for "
                        f"{component}/{category}"
                    )
            plan = self._fanout_plans[key] = [
                (joules, *self._column_pair(component, category))
                for joules, category in charges
            ]
        return plan

    def apply_fanout(
        self,
        rows: typing.Sequence[int],
        plan: list[tuple[float, list[float], list[int]]],
        special_row: int = -1,
        special_plan: typing.Sequence[tuple[float, list[float], list[int]]] = (),
    ) -> None:
        """Charge pre-resolved :meth:`fanout_plan` plans to ``rows``.

        Charge-for-charge identical to :meth:`charge_reception_fanout`
        with the equivalent charge tuples — same per-node first-charge
        sequence stamps, same accumulation order.
        """
        next_seq = self._next_seq
        for row in rows:
            for joules, column, seq in (
                special_plan if row == special_row else plan
            ):
                if seq[row] < 0:
                    seq[row] = next_seq
                    next_seq += 1
                column[row] += joules
        self._next_seq = next_seq

    def charge_reception_fanout(
        self,
        rows: typing.Sequence[int],
        component: str,
        charges: typing.Sequence[tuple[float, str]],
        special_row: int = -1,
        special_charges: typing.Sequence[tuple[float, str]] = (),
    ) -> None:
        """Charge many nodes for one frame in a single batched pass.

        Every row in ``rows`` (in order — the medium passes receivers in
        registration order) is charged the ``(joules, category)`` pairs of
        ``charges``, except ``special_row`` which gets ``special_charges``
        instead (the addressed receiver of a unicast frame, whose charge
        categories differ from the overhearers').

        Equivalent, charge for charge and in the same order, to calling
        :meth:`charge` per node through a :class:`NodeMeter` — per-node
        first-charge sequences and float accumulation order are identical,
        so golden digests cannot move — but with the column lookups and
        the global sequence counter hoisted out of the per-receiver loop.
        This is the op that replaces 10k individual ``charge_reception``
        calls per frame at scale.

        Raises
        ------
        ValueError
            If any charge is negative (same contract as :meth:`charge`).
        """
        for joules, category in charges:
            if joules < 0:
                raise ValueError(
                    f"negative energy charge {joules!r} for "
                    f"{component}/{category}"
                )
        for joules, category in special_charges:
            if joules < 0:
                raise ValueError(
                    f"negative energy charge {joules!r} for "
                    f"{component}/{category}"
                )
        # Column/seq arrays materialize lazily: only when some row actually
        # takes the plan, matching the per-call behaviour of charge().
        # Resolved plans are cached: the columns behind a (component,
        # category) key never change identity once created, and charge
        # tuples repeat (frames come in a handful of shapes per run), so
        # the per-frame plan build collapses to one dict hit.
        plans = self._fanout_plans
        main: list[tuple[float, list[float], list[int]]] | None = None
        special: list[tuple[float, list[float], list[int]]] | None = None
        next_seq = self._next_seq
        for row in rows:
            if row == special_row:
                if special is None:
                    key = (component, tuple(special_charges))
                    special = plans.get(key)
                    if special is None:
                        special = plans[key] = [
                            (joules, *self._column_pair(component, category))
                            for joules, category in special_charges
                        ]
                plan = special
            else:
                if main is None:
                    key = (component, tuple(charges))
                    main = plans.get(key)
                    if main is None:
                        main = plans[key] = [
                            (joules, *self._column_pair(component, category))
                            for joules, category in charges
                        ]
                plan = main
            for joules, column, seq in plan:
                if seq[row] < 0:
                    seq[row] = next_seq
                    next_seq += 1
                column[row] += joules
        self._next_seq = next_seq

    def meter(self, index: int) -> "NodeMeter":
        """An :class:`EnergyMeter`-compatible view of node ``index``."""
        if not 0 <= index < self.n_nodes:
            raise IndexError(
                f"node index {index} outside fleet of {self.n_nodes}"
            )
        return NodeMeter(self, index)

    def node_items(
        self, index: int
    ) -> list[tuple[tuple[str, str], float]]:
        """One node's ``((component, category), joules)`` pairs.

        Ordered by the node's first-charge sequence — exactly the
        iteration order of the equivalent per-node :class:`EnergyMeter`'s
        dict, including keys whose accumulated charge is 0.0.
        """
        items = [
            (seq[index], key)
            for key, seq in self._first_seq.items()
            if seq[index] >= 0
        ]
        items.sort()
        return [(key, self._energy[key][index]) for _seq, key in items]

    def total_for(
        self,
        index: int,
        component: str | None = None,
        categories: typing.Collection[str] | None = None,
    ) -> float:
        """One node's total joules, with :meth:`EnergyMeter.total` filters.

        Terms accumulate in the node's first-charge order, so the float
        result is bit-identical to the per-node meter it replaces.
        """
        total = 0.0
        for (comp, cat), joules in self.node_items(index):
            if component is not None and comp != component:
                continue
            if categories is not None and cat not in categories:
                continue
            total += joules
        return total

    def fleet_total(
        self,
        component: str | None = None,
        categories: typing.Collection[str] | None = None,
    ) -> float:
        """Joules summed over the whole fleet.

        Column-major (fast whole-array reads); use per-node
        :meth:`total_for` accumulation where bit-compatibility with a
        node-by-node sum matters.
        """
        total = 0.0
        for (comp, cat), column in self._energy.items():
            if component is not None and comp != component:
                continue
            if categories is not None and cat not in categories:
                continue
            total += sum(column)
        return total

    def components(self) -> set[str]:
        """Every component name the bank has charges for."""
        return {comp for comp, _cat in self._energy}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MeterBank nodes={self.n_nodes} "
            f"columns={len(self._energy)} total={self.fleet_total():.6f} J>"
        )


class NodeMeter:
    """One node's view of a :class:`MeterBank` (EnergyMeter-compatible).

    Implements the charging/reading duck type radios and integrators use
    (``charge``/``total``/``breakdown``/``by_category``/``name``) while
    storing nothing per node beyond the bank reference and the index.
    """

    __slots__ = ("bank", "index")

    def __init__(self, bank: MeterBank, index: int):
        self.bank = bank
        self.index = index

    @property
    def name(self) -> str:
        """Report label, e.g. ``node14``."""
        return f"{self.bank.name_prefix}{self.index}"

    def charge(self, joules: float, component: str, category: str) -> None:
        """Add ``joules`` under ``(component, category)`` for this node."""
        self.bank.charge(self.index, joules, component, category)

    def total(
        self,
        component: str | None = None,
        categories: typing.Collection[str] | None = None,
    ) -> float:
        """Total joules for this node, optionally filtered."""
        return self.bank.total_for(self.index, component, categories)

    def breakdown(self) -> dict[tuple[str, str], float]:
        """This node's raw (component, category) → joules mapping.

        Key order matches the equivalent per-node meter's dict-insertion
        order (see :meth:`MeterBank.node_items`).
        """
        return dict(self.bank.node_items(self.index))

    def by_category(self, component: str | None = None) -> dict[str, float]:
        """Joules per category (summed over components unless one given)."""
        out: dict[str, float] = collections.defaultdict(float)
        for (comp, cat), joules in self.bank.node_items(self.index):
            if component is None or comp == component:
                out[cat] += joules
        return dict(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NodeMeter {self.name!r} total={self.total():.6f} J>"


class PowerIntegrator:
    """Integrates a piecewise-constant power draw into an :class:`EnergyMeter`.

    A radio sets its draw with :meth:`set_power` at every state change; the
    integrator charges ``power × elapsed`` for the segment just ended.  Call
    :meth:`flush` (for example at the end of a run) to account for the final
    open segment.

    Parameters
    ----------
    sim:
        Supplies the clock.
    meter:
        Destination for charges.
    component:
        Component label for all charges from this integrator.
    """

    def __init__(self, sim: "Simulator", meter: EnergyMeter, component: str):
        self.sim = sim
        self.meter = meter
        self.component = component
        self._since = sim.now
        self._power_w = 0.0
        self._category = CATEGORY_IDLE

    @property
    def power_w(self) -> float:
        """Current power draw in watts."""
        return self._power_w

    def set_power(self, watts: float, category: str) -> None:
        """Close the current segment and start drawing ``watts`` under ``category``."""
        if watts < 0:
            raise ValueError(f"negative power {watts!r}")
        self.flush()
        self._power_w = watts
        self._category = category

    def flush(self) -> None:
        """Charge the energy of the open segment up to the current time."""
        elapsed = self.sim.now - self._since
        if elapsed > 0 and self._power_w > 0:
            self.meter.charge(
                self._power_w * elapsed, self.component, self._category
            )
        self._since = self.sim.now
