"""Energy accounting: categorized meters and power-over-time integrators.

Every node owns an :class:`EnergyMeter`; radios, MACs and BCP charge energy
into named categories (``"tx"``, ``"rx"``, ``"idle"``, ``"wakeup"``,
``"overhear"``...).  The evaluation models differ *only* in which categories
they charge — e.g. the paper's "Sensor-ideal" baseline ignores idle and
overhearing — so keeping categories separate lets one simulation produce
both ideal and full accountings.
"""

from __future__ import annotations

import collections
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

#: Canonical charge categories used across the library.
CATEGORY_TX = "tx"
CATEGORY_RX = "rx"
CATEGORY_IDLE = "idle"
CATEGORY_SLEEP = "sleep"
CATEGORY_WAKEUP = "wakeup"
CATEGORY_OVERHEAR = "overhear"


class EnergyMeter:
    """Accumulates joules per (component, category).

    Parameters
    ----------
    name:
        Identifies the owner (typically the node id) in reports.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._energy: dict[tuple[str, str], float] = collections.defaultdict(float)

    def charge(self, joules: float, component: str, category: str) -> None:
        """Add ``joules`` under ``(component, category)``.

        Raises
        ------
        ValueError
            If ``joules`` is negative — energy only flows out of batteries.
        """
        if joules < 0:
            raise ValueError(
                f"negative energy charge {joules!r} for {component}/{category}"
            )
        self._energy[(component, category)] += joules

    def total(
        self,
        component: str | None = None,
        categories: typing.Collection[str] | None = None,
    ) -> float:
        """Total joules, optionally filtered by component and/or categories."""
        total = 0.0
        for (comp, cat), joules in self._energy.items():
            if component is not None and comp != component:
                continue
            if categories is not None and cat not in categories:
                continue
            total += joules
        return total

    def breakdown(self) -> dict[tuple[str, str], float]:
        """A copy of the raw (component, category) → joules mapping."""
        return dict(self._energy)

    def by_category(self, component: str | None = None) -> dict[str, float]:
        """Joules per category (summed over components unless one is given)."""
        out: dict[str, float] = collections.defaultdict(float)
        for (comp, cat), joules in self._energy.items():
            if component is None or comp == component:
                out[cat] += joules
        return dict(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EnergyMeter {self.name!r} total={self.total():.6f} J>"


class PowerIntegrator:
    """Integrates a piecewise-constant power draw into an :class:`EnergyMeter`.

    A radio sets its draw with :meth:`set_power` at every state change; the
    integrator charges ``power × elapsed`` for the segment just ended.  Call
    :meth:`flush` (for example at the end of a run) to account for the final
    open segment.

    Parameters
    ----------
    sim:
        Supplies the clock.
    meter:
        Destination for charges.
    component:
        Component label for all charges from this integrator.
    """

    def __init__(self, sim: "Simulator", meter: EnergyMeter, component: str):
        self.sim = sim
        self.meter = meter
        self.component = component
        self._since = sim.now
        self._power_w = 0.0
        self._category = CATEGORY_IDLE

    @property
    def power_w(self) -> float:
        """Current power draw in watts."""
        return self._power_w

    def set_power(self, watts: float, category: str) -> None:
        """Close the current segment and start drawing ``watts`` under ``category``."""
        if watts < 0:
            raise ValueError(f"negative power {watts!r}")
        self.flush()
        self._power_w = watts
        self._category = category

    def flush(self) -> None:
        """Charge the energy of the open segment up to the current time."""
        elapsed = self.sim.now - self._since
        if elapsed > 0 and self._power_w > 0:
            self.meter.charge(
                self._power_w * elapsed, self.component, self._category
            )
        self._since = self.sim.now
