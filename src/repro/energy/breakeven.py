"""Break-even analysis of dual-radio transmission (paper Section 2.1).

Implements Equations 1–5 of the paper:

* :func:`energy_low` — Eq. 1: energy to move ``s`` bits one hop over the
  low-power radio (sender tx + receiver rx; overhearing optional).
* :func:`energy_high` — Eq. 2: energy to move ``s`` bits over the
  high-power radio, including both radios' wake-up energy, the low-power
  wake-up handshake, and idle time while awake.
* :func:`breakeven_bits` — Eq. 3: the break-even size ``s*`` above which
  the high-power radio wins.
* :func:`energy_low_multihop` / :func:`energy_high_multihop` — Eqs. 4–5:
  the multi-hop case where one high-power transmission covers ``fp``
  low-power hops ("forward progress").
* :func:`breakeven_bits_multihop` — the corresponding ``s*``.

Conventions: sizes in bits, energies in joules.  Equation 3 uses the smooth
(non-packetized) per-bit costs, exactly as the paper does; the packetized
forms (Eqs. 1–2 with their ceilings) are used for energy-vs-size curves, and
:func:`crossover_bits` finds the empirical crossing of those packetized
curves for comparison.
"""

from __future__ import annotations

import dataclasses
import math

from repro.energy.radio_specs import RadioSpec

#: Default application-level wake-up message payload (bytes).  The paper
#: treats the wake-up cost as a given constant; a WAKEUP carries the burst
#: size and addresses, comfortably fitting one small sensor packet.
DEFAULT_WAKEUP_MESSAGE_BYTES = 16


@dataclasses.dataclass(frozen=True)
class DualRadioLink:
    """A (low-power, high-power) radio pair plus handshake parameters.

    Attributes
    ----------
    low / high:
        The sensor radio and the IEEE 802.11 radio of the platform.
    idle_s:
        Total idle time of the two high-power radios per bulk transfer
        (``Eidle`` in Eq. 2 is ``p_idle × idle_s``); models imperfect
        power management (Fig. 2 sweeps this).
    wakeup_messages:
        Number of low-power control messages in the wake-up handshake
        (WAKEUP + WAKEUP-ACK by default).
    wakeup_message_bytes:
        Payload of each handshake message.
    retransmissions:
        The per-packet transmission count ``n_i`` of Eqs. 1–2 (the analysis
        sets it to 1; Section 4 explores losses empirically).
    """

    low: RadioSpec
    high: RadioSpec
    idle_s: float = 0.0
    wakeup_messages: int = 2
    wakeup_message_bytes: int = DEFAULT_WAKEUP_MESSAGE_BYTES
    retransmissions: float = 1.0

    def __post_init__(self) -> None:
        if self.low.kind != "low":
            raise ValueError(f"{self.low.name} is not a low-power radio")
        if self.high.kind != "high":
            raise ValueError(f"{self.high.name} is not a high-power radio")
        if self.idle_s < 0:
            raise ValueError("idle_s must be non-negative")
        if self.retransmissions < 1:
            raise ValueError("retransmissions (n_i) must be >= 1")

    # -- Eq. 2 cost components -------------------------------------------

    @property
    def e_wakeup_high_j(self) -> float:
        """``E^H_wakeup``: switching both ends' high-power radios on."""
        return 2.0 * self.high.e_wakeup_j

    @property
    def e_wakeup_low_j(self) -> float:
        """``E^L_wakeup``: the low-power handshake carrying the wake-up."""
        message_bits = (
            self.wakeup_message_bytes * 8 + self.low.header_bits
        )
        per_message = self.low.link_power_w * message_bits / self.low.rate_bps
        return self.wakeup_messages * per_message

    @property
    def e_idle_j(self) -> float:
        """``E_idle``: idling energy of the two high-power radios."""
        return self.high.p_idle_w * self.idle_s

    @property
    def fixed_overhead_j(self) -> float:
        """Numerator of Eq. 3: all size-independent high-radio costs."""
        return self.e_wakeup_high_j + self.e_wakeup_low_j + self.e_idle_j


def energy_low(
    s_bits: float,
    low: RadioSpec,
    retransmissions: float = 1.0,
    e_overhear_j: float = 0.0,
) -> float:
    """Eq. 1 — energy to send/receive ``s_bits`` over the low-power radio.

    The payload is split into ``ceil(s / ps_L)`` packets; a trailing partial
    packet costs a full packet (header included), exactly as the ceiling in
    Eq. 1 prescribes.
    """
    if s_bits < 0:
        raise ValueError("data size must be non-negative")
    if s_bits == 0:
        return e_overhear_j
    packets = math.ceil(s_bits / low.payload_bits)
    on_air_bits = packets * low.packet_bits * retransmissions
    return low.link_power_w * on_air_bits / low.rate_bps + e_overhear_j


def energy_high(
    s_bits: float,
    link: DualRadioLink,
    e_overhear_j: float = 0.0,
) -> float:
    """Eq. 2 — energy to transfer ``s_bits`` over the high-power radio.

    Includes both high radios' wake-up energy, the low-power wake-up
    handshake, idle time while awake, and the packetized transmission cost.
    """
    if s_bits < 0:
        raise ValueError("data size must be non-negative")
    high = link.high
    packets = math.ceil(s_bits / high.payload_bits) if s_bits else 0
    on_air_bits = packets * high.packet_bits * link.retransmissions
    transfer = high.link_power_w * on_air_bits / high.rate_bps
    return link.fixed_overhead_j + transfer + e_overhear_j


def breakeven_bits(link: DualRadioLink) -> float:
    """Eq. 3 — the break-even size ``s*`` in bits.

    Returns ``float('inf')`` when the high-power radio's per-bit cost is not
    lower than the low-power radio's, i.e. no amount of batching ever pays
    off (the paper's Cabletron/Micaz and Lucent-2/Micaz single-hop cases).
    """
    slope_low = link.low.energy_per_payload_bit() * link.retransmissions
    slope_high = link.high.energy_per_payload_bit() * link.retransmissions
    denominator = slope_low - slope_high
    if denominator <= 0:
        return float("inf")
    return link.fixed_overhead_j / denominator


# --------------------------------------------------------------------------
# Multi-hop case (Eqs. 4 and 5).
# --------------------------------------------------------------------------


def energy_low_multihop(
    s_bits: float,
    link: DualRadioLink,
    forward_progress: int,
    e_overhear_j: float = 0.0,
) -> float:
    """Eq. 4 — low-power cost over ``forward_progress`` hops: ``fp · E_L(s)``."""
    if forward_progress < 1:
        raise ValueError("forward progress must be at least one hop")
    return forward_progress * energy_low(
        s_bits, link.low, link.retransmissions, e_overhear_j
    )


def energy_high_multihop(
    s_bits: float,
    link: DualRadioLink,
    forward_progress: int,
    e_overhear_j: float = 0.0,
) -> float:
    """Eq. 5 — high-power cost with a multi-hop wake-up message.

    The single high-power transmission covers the whole distance, but the
    wake-up must still be relayed hop-by-hop over the low-power network:
    ``E_H(s) + (fp − 1) · E^L_wakeup``.
    """
    if forward_progress < 1:
        raise ValueError("forward progress must be at least one hop")
    return (
        energy_high(s_bits, link, e_overhear_j)
        + (forward_progress - 1) * link.e_wakeup_low_j
    )


def breakeven_bits_multihop(link: DualRadioLink, forward_progress: int) -> float:
    """``s*`` for the multi-hop case (Eqs. 3–5 combined).

    Solves ``E_H(s) + (fp−1)·E^L_wakeup = fp · E_L(s)`` with the smooth
    per-bit slopes of Eq. 3.
    """
    if forward_progress < 1:
        raise ValueError("forward progress must be at least one hop")
    slope_low = link.low.energy_per_payload_bit() * link.retransmissions
    slope_high = link.high.energy_per_payload_bit() * link.retransmissions
    denominator = forward_progress * slope_low - slope_high
    if denominator <= 0:
        return float("inf")
    numerator = (
        link.e_wakeup_high_j
        + forward_progress * link.e_wakeup_low_j
        + link.e_idle_j
    )
    return numerator / denominator


# --------------------------------------------------------------------------
# Empirical crossover of the packetized curves.
# --------------------------------------------------------------------------


def crossover_bits(
    link: DualRadioLink,
    forward_progress: int = 1,
    max_bits: float = 8e9,
) -> float:
    """Smallest size (bits) at which the packetized high-radio curve wins.

    Unlike :func:`breakeven_bits` this honours the packet ceilings of
    Eqs. 1–2, so it is the quantity an experiment actually observes.  Uses
    bisection over whole low-radio packets.  Returns ``float('inf')`` if no
    crossover exists below ``max_bits``.
    """

    def advantage(bits: float) -> float:
        return energy_low_multihop(bits, link, forward_progress) - (
            energy_high_multihop(bits, link, forward_progress)
        )

    step = link.low.payload_bits
    if advantage(max_bits) < 0:
        return float("inf")
    low_n, high_n = 1, int(max_bits // step) + 1
    if advantage(low_n * step) >= 0:
        return float(low_n * step)
    while high_n - low_n > 1:
        mid = (low_n + high_n) // 2
        if advantage(mid * step) >= 0:
            high_n = mid
        else:
            low_n = mid
    return float(high_n * step)
