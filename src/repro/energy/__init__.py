"""Energy substrate: radio characteristics, accounting, break-even analysis.

* :mod:`repro.energy.radio_specs` — Table 1 of the paper in SI units.
* :mod:`repro.energy.meter` — per-category energy accounting.
* :mod:`repro.energy.breakeven` — Equations 1–5 (the paper's Section 2.1).
* :mod:`repro.energy.battery` — lifetime extrapolation.
* :mod:`repro.energy.residual` — flush-then-read live residual queries.
"""

from repro.energy.battery import AA_PAIR_CAPACITY_J, Battery, BatteryDepleted
from repro.energy.breakeven import (
    DEFAULT_WAKEUP_MESSAGE_BYTES,
    DualRadioLink,
    breakeven_bits,
    breakeven_bits_multihop,
    crossover_bits,
    energy_high,
    energy_high_multihop,
    energy_low,
    energy_low_multihop,
)
from repro.energy.meter import (
    CATEGORY_IDLE,
    CATEGORY_OVERHEAR,
    CATEGORY_RX,
    CATEGORY_SLEEP,
    CATEGORY_TX,
    CATEGORY_WAKEUP,
    EnergyMeter,
    MeterBank,
    NodeMeter,
    PowerIntegrator,
)
from repro.energy.radio_specs import (
    CABLETRON,
    FIRST_ORDER_RADIO_MODEL,
    HIGH_POWER_RADIOS,
    LOW_POWER_RADIOS,
    LUCENT_2,
    LUCENT_11,
    MICA,
    MICA2,
    MICAZ,
    TABLE_1,
    TX_POWER_LEVELS,
    RadioEnergyModel,
    RadioSpec,
    TxPowerLevel,
    get_spec,
)
from repro.energy.residual import live_consumed_j, live_residual_fraction

__all__ = [
    "AA_PAIR_CAPACITY_J",
    "Battery",
    "BatteryDepleted",
    "CABLETRON",
    "CATEGORY_IDLE",
    "CATEGORY_OVERHEAR",
    "CATEGORY_RX",
    "CATEGORY_SLEEP",
    "CATEGORY_TX",
    "CATEGORY_WAKEUP",
    "DEFAULT_WAKEUP_MESSAGE_BYTES",
    "DualRadioLink",
    "EnergyMeter",
    "FIRST_ORDER_RADIO_MODEL",
    "HIGH_POWER_RADIOS",
    "LOW_POWER_RADIOS",
    "LUCENT_11",
    "LUCENT_2",
    "MICA",
    "MICA2",
    "MICAZ",
    "MeterBank",
    "NodeMeter",
    "PowerIntegrator",
    "RadioEnergyModel",
    "RadioSpec",
    "TABLE_1",
    "TX_POWER_LEVELS",
    "TxPowerLevel",
    "breakeven_bits",
    "breakeven_bits_multihop",
    "crossover_bits",
    "energy_high",
    "energy_high_multihop",
    "energy_low",
    "energy_low_multihop",
    "get_spec",
    "live_consumed_j",
    "live_residual_fraction",
]
