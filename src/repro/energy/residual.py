"""Live residual-energy reads shared by battery polling and routing.

The one subtlety in reading "how much has node ``n`` consumed so far" is
that high-power radios account through a :class:`~repro.energy.meter.
PowerIntegrator`, which bills lazily: energy accrued since the last state
change sits in the integrator until something flushes it.  Reading the
:class:`~repro.energy.meter.MeterBank` without flushing first undercounts
by up to one whole radio-state dwell time.

That flush-then-read sequence used to live only inside the fault
injector's battery poll.  It is factored out here so battery-death
detection and the residual-energy routing policy observe *identical*
values — a node the injector is about to kill looks exactly as depleted
to the route builder as it does to the battery.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.energy.meter import MeterBank


def live_consumed_j(
    bank: "MeterBank",
    high_radios: typing.Sequence[typing.Any],
    node: int,
) -> float:
    """Cumulative energy drawn by ``node``, integrators flushed first.

    ``high_radios`` is the built network's node-indexed high-radio list —
    empty when the scenario has no high tier, in which case there is
    nothing lazy to flush (low-power radios bill eagerly per event).
    """
    if high_radios:
        high_radios[node].flush_accounting()
    return bank.total_for(node)


def live_residual_fraction(
    bank: "MeterBank",
    high_radios: typing.Sequence[typing.Any],
    node: int,
    capacity_j: float,
    floor: float = 1e-6,
) -> float:
    """Remaining battery fraction in ``(floor, 1.0]``.

    Clamped below by ``floor`` so cost models dividing by the residual
    never blow up on an effectively dead node, and above by 1.0 so a
    node that somehow over-reports capacity cannot look *better* than
    fresh.
    """
    if capacity_j <= 0.0:
        return floor
    remaining = capacity_j - live_consumed_j(bank, high_radios, node)
    return min(1.0, max(remaining / capacity_j, floor))
