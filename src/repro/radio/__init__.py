"""Radio state machines and their energy accounting."""

from repro.radio.radio import (
    CATEGORY_OVERHEAR_BODY,
    CATEGORY_OVERHEAR_HEADER,
    HighPowerRadio,
    LowPowerRadio,
    RadioPort,
)
from repro.radio.states import RadioState

__all__ = [
    "CATEGORY_OVERHEAR_BODY",
    "CATEGORY_OVERHEAR_HEADER",
    "HighPowerRadio",
    "LowPowerRadio",
    "RadioPort",
    "RadioState",
]
