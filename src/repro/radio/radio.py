"""Radio ports: the per-node attachment points to a shared medium.

Two concrete radios mirror the paper's platform:

* :class:`LowPowerRadio` — the sensor radio (Mica/Mica2/Micaz class).  It is
  always on.  Following Section 2.1, its idle/power-management draw is a
  *base cost* excluded from the accounting; it charges event-based energy:
  full transmit and receive power for the frames it sends/receives, and
  split header/body overhearing charges so the evaluation can reproduce both
  the "Sensor-ideal" and "Sensor-header" baselines.

* :class:`HighPowerRadio` — the IEEE 802.11 radio.  It is off by default and
  *fully* charged when awake: a wake-up energy lump, integrated idle power
  for every awake second, transmit power while sending, and incremental
  receive power (``Prx − Pidle``) for frames it hears, whether addressed to
  it or not.

The energy-model asymmetry is deliberate and mirrors the paper's Section 4:
"the sensor model is shown in the best possible light, while the dual-radio
model pays for the cost of the IEEE 802.11 radios fully."

Ports on one medium need not share a :class:`~repro.energy.radio_specs.RadioSpec`:
heterogeneous deployments (scenario ``high_radios`` assignments) register
radios of different models — and therefore ranges and meter components —
side by side.  The medium's neighbor index reads each port's ``range_m``
once, after the last registration; port registration order also fixes the
order of the medium's neighbor tuples, so construction loops should
register nodes in a deterministic order (the scenario builder uses
ascending node id).
"""

from __future__ import annotations

import typing

from repro.energy.meter import (
    CATEGORY_IDLE,
    CATEGORY_RX,
    CATEGORY_TX,
    CATEGORY_WAKEUP,
    EnergyMeter,
    NodeMeter,
    PowerIntegrator,
)
from repro.energy.radio_specs import RadioSpec
from repro.mac.frames import Frame
from repro.radio.states import RadioState
from repro.sim.errors import SimulationError
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.channel.medium import Medium
    from repro.sim.simulator import Simulator

#: Category for the header portion of overheard frames (charged by the
#: paper's "Sensor-header" baseline).
CATEGORY_OVERHEAR_HEADER = "overhear_header"

#: Category for the rest of an overheard frame (charged only by fully
#: truthful accountings).
CATEGORY_OVERHEAR_BODY = "overhear_body"


class RadioPort:
    """Base class wiring a radio to a medium, a meter and a MAC.

    Parameters
    ----------
    sim / node_id / spec / medium / meter:
        Kernel, owning node, energy characteristics, channel, accounting.
    component:
        Meter component label; defaults to ``"radio.<spec name>"``.
    """

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        spec: RadioSpec,
        medium: "Medium",
        meter: EnergyMeter,
        component: str | None = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.medium = medium
        self.meter = meter
        self.component = component or f"radio.{spec.name}"
        if spec.tx_power_levels:
            # Instance attribute only for ports that opted into a discrete
            # power ladder; the common case stays on the class-level None
            # and its transmit path is unchanged.
            self._tx_levels = spec.tx_power_levels
        #: Extra fixed on-air time per frame (e.g. the 802.11b PLCP
        #: preamble); MAC presets may set this.
        self.preamble_s = 0.0
        #: When set, decodable frames addressed to other nodes are also
        #: handed to :meth:`deliver_overheard` (used by BCP's shortcut
        #: learning, which listens for its own packets being forwarded).
        self.promiscuous = False
        self._receiver: typing.Callable[[Frame], None] | None = None
        self._overhear_handler: typing.Callable[[Frame], None] | None = None
        self._transmitting = False
        self.frames_tx = 0
        self.frames_rx = 0
        #: Registration-order position on the medium (assigned by
        #: :meth:`Medium.register`); indexes the medium's per-port arrays
        #: (busy refcounts, listening flags, meter rows).
        self._medium_rank = -1
        medium.register(self)

    # -- identity shortcuts used by the medium ---------------------------

    @property
    def range_m(self) -> float:
        """Nominal transmit range in meters."""
        return self.spec.range_m

    @property
    def rate_bps(self) -> float:
        """Bit rate used to compute frame airtime."""
        return self.spec.rate_bps

    @property
    def is_transmitting(self) -> bool:
        """Whether a transmission of ours is currently on the air."""
        return self._transmitting

    @property
    def is_listening(self) -> bool:
        """Whether the radio could currently decode an incoming frame."""
        raise NotImplementedError

    # -- MAC wiring -------------------------------------------------------

    def set_receiver(self, callback: typing.Callable[[Frame], None]) -> None:
        """Install the MAC's frame-delivery callback."""
        self._receiver = callback

    def set_overhear_handler(
        self, callback: typing.Callable[[Frame], None]
    ) -> None:
        """Install the promiscuous-mode callback and enable the mode.

        Handlers must not charge energy or draw randomness: the medium's
        batched delivery runs them after the frame's energy fanout, so a
        side-effecting handler would reorder accounting relative to the
        historical per-receiver loop.  (BCP's shortcut learning, the one
        production handler, only mutates routing dictionaries.)
        """
        self._overhear_handler = callback
        self.promiscuous = True
        self.medium.note_promiscuous(self)

    def deliver(self, frame: Frame) -> None:
        """Called by the medium when a frame decodes successfully here."""
        self.frames_rx += 1
        if self._receiver is not None:
            self._receiver(frame)

    def deliver_overheard(self, frame: Frame) -> None:
        """Called by the medium for decodable frames addressed elsewhere."""
        if self._overhear_handler is not None:
            self._overhear_handler(frame)

    # -- transmission ------------------------------------------------------

    def airtime(self, frame: Frame) -> float:
        """On-air duration for ``frame`` including any preamble."""
        return self.preamble_s + (
            frame.payload_bits + frame.header_bits
        ) / self.spec.rate_bps

    def transmit(self, frame: Frame) -> Event:
        """Put ``frame`` on the air; the returned event fires at end-of-frame.

        Raises
        ------
        SimulationError
            If a transmission is already in progress (MACs serialize).
        """
        if self._transmitting:
            raise SimulationError(
                f"node {self.node_id} {self.component}: transmit while busy"
            )
        if self._checks_tx_state:
            self._check_can_transmit()
        self._transmitting = True
        self.frames_tx += 1
        duration = self.airtime(frame)
        if self._tx_levels is not None:
            self._tx_power_w = self._select_tx_power(frame)
        self._begin_tx_accounting(duration)
        self.medium.note_state(self)
        end_event = self.medium.transmit(self, frame, duration)
        # The end event is the medium's Timeout for exactly ``duration``
        # (``Timeout.delay``), so the bound method needs no closure — one
        # less allocation per frame.
        end_event.callbacks.append(self._end_transmit)
        return end_event

    def _end_transmit(self, end_event: "Event") -> None:
        self._transmitting = False
        self._end_tx_accounting(end_event.delay)
        self.medium.note_state(self)

    # -- discrete transmit-power selection ---------------------------------

    #: Class attributes: ports without a power ladder (every Table 1 spec)
    #: pay neither a per-instance slot nor a per-frame selection.
    _tx_levels: tuple | None = None
    _tx_power_w = 0.0

    def _select_tx_power(self, frame: Frame) -> float:
        """Cheapest ladder level whose reach covers the next hop.

        Broadcasts and unknown destinations transmit at full nominal
        power (everything in nominal range must hear them).  Power
        selection is an *accounting* refinement: the medium's neighbor
        index reads the nominal ``range_m``, so audibility — who hears,
        collides with, or overhears the frame — is unchanged; only the
        transmit-side energy bill shrinks for short hops.
        """
        dst = frame.dst
        layout = self.medium.layout
        if dst < 0 or dst not in layout:
            return self.spec.p_tx_w
        return self.spec.tx_power_for_range(
            layout.distance(self.node_id, dst)
        )

    # -- fault injection ---------------------------------------------------

    #: Class attribute: the overwhelmingly common never-faulted port pays
    #: no per-instance slot for it.
    _powered_down = False

    def power_down(self) -> None:
        """Kill the radio (fault injection): deaf and mute until
        :meth:`power_up`.

        Idempotent.  The medium separately aborts any in-flight frame of
        ours via :meth:`Medium.retire_node`; its end event still pops and
        :meth:`_end_transmit` then runs against the cleared state, which
        subclass accounting hooks must tolerate.
        """
        if self._powered_down:
            return
        self._powered_down = True
        self._transmitting = False
        self.medium.note_state(self)

    def power_up(self) -> None:
        """Undo :meth:`power_down` (a recovering node rejoins deaf-idle;
        the high-power radio additionally needs a fresh :meth:`wake`)."""
        if not self._powered_down:
            return
        self._powered_down = False
        self.medium.note_state(self)

    # -- hooks for subclasses ----------------------------------------------

    #: Whether ``transmit`` consults :meth:`_check_can_transmit`; radio
    #: classes that override the hook must set this True.  Gating on a
    #: class attribute spares the always-on radio a no-op method call on
    #: every frame.
    _checks_tx_state = False

    def _check_can_transmit(self) -> None:
        """Raise if the radio is in a state that cannot transmit."""

    def _begin_tx_accounting(self, duration: float) -> None:
        raise NotImplementedError

    def _end_tx_accounting(self, duration: float) -> None:
        raise NotImplementedError

    def reception_charges(
        self, frame: Frame, duration: float, addressed: bool
    ) -> tuple[tuple[float, str], ...]:
        """The ``(joules, category)`` charges for hearing ``frame``.

        Must be a pure function of the radio's spec and the frame — every
        port sharing a spec returns the same plan, which is what lets the
        medium compute it once per frame and charge a whole fleet of
        receivers through :meth:`MeterBank.charge_reception_fanout`.
        """
        raise NotImplementedError

    def charge_reception(
        self, frame: Frame, duration: float, addressed: bool
    ) -> None:
        """Charge energy for hearing ``frame`` (called by the medium)."""
        for joules, category in self.reception_charges(frame, duration, addressed):
            self.meter.charge(joules, self.component, category)


class LowPowerRadio(RadioPort):
    """The always-on sensor radio (event-based energy accounting)."""

    #: Cached ``(row, column)`` into the meter bank's TX column, filled
    #: after the first charge (see ``_begin_tx_accounting``).
    _tx_fast: tuple[int, list[float]] | None = None

    @property
    def is_listening(self) -> bool:
        return not self._transmitting and not self._powered_down

    def _begin_tx_accounting(self, duration: float) -> None:
        # Charged up front; the amount is fixed once the frame is committed.
        if self._tx_levels is not None:
            # Power varies per frame, so the cached-column fast path (which
            # bakes in the nominal p_tx) does not apply.
            self.meter.charge(
                self._tx_power_w * duration, self.component, CATEGORY_TX
            )
            return
        fast = self._tx_fast
        if fast is not None:
            # The first charge below stamped this node's first-seq for the
            # TX column and fixed the column's identity, so every later
            # charge is a single in-place add.  The charge is p_tx * dt
            # with both factors non-negative, so the bank's sign check is
            # vacuous here.
            row, column = fast
            column[row] += self.spec.p_tx_w * duration
            return
        meter = self.meter
        meter.charge(self.spec.p_tx_w * duration, self.component, CATEGORY_TX)
        if type(meter) is NodeMeter:
            self._tx_fast = (
                meter.index,
                meter.bank._energy[(self.component, CATEGORY_TX)],
            )

    def _end_tx_accounting(self, duration: float) -> None:
        return None

    def reception_charges(
        self, frame: Frame, duration: float, addressed: bool
    ) -> tuple[tuple[float, str], ...]:
        if addressed:
            return ((self.spec.p_rx_w * duration, CATEGORY_RX),)
        header_s = min(duration, frame.header_bits / self.rate_bps)
        return (
            (self.spec.p_rx_w * header_s, CATEGORY_OVERHEAR_HEADER),
            (
                self.spec.p_rx_w * (duration - header_s),
                CATEGORY_OVERHEAR_BODY,
            ),
        )


class HighPowerRadio(RadioPort):
    """The off-by-default IEEE 802.11 radio (full state accounting)."""

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        spec: RadioSpec,
        medium: "Medium",
        meter: EnergyMeter,
        component: str | None = None,
    ):
        super().__init__(sim, node_id, spec, medium, meter, component)
        self.state = RadioState.OFF
        self._integrator = PowerIntegrator(sim, meter, self.component)
        self._wake_waiters: list[Event] = []
        self.wakeup_count = 0

    # -- state -------------------------------------------------------------

    @property
    def is_on(self) -> bool:
        """Whether the radio is awake (idle or transmitting)."""
        return self.state in (RadioState.IDLE, RadioState.TX)

    @property
    def is_listening(self) -> bool:
        return self.state == RadioState.IDLE

    def wake(self) -> Event:
        """Turn the radio on; the event fires when it reaches IDLE.

        Waking costs ``e_wakeup_j`` and takes ``t_wakeup_s`` (Table 1 /
        derived).  Concurrent wake requests share one transition.
        """
        done = Event(self.sim)
        if self._powered_down:
            # A dead radio never reaches IDLE: the event stays pending
            # forever, parking whatever process awaits it — harmless in
            # an event-driven kernel (``sim.run(until)`` still returns).
            return done
        if self.is_on:
            done.succeed()
            return done
        self._wake_waiters.append(done)
        if self.state == RadioState.WAKING:
            return done
        self.state = RadioState.WAKING
        self.wakeup_count += 1
        self.meter.charge(self.spec.e_wakeup_j, self.component, CATEGORY_WAKEUP)
        self.sim.call_later(self.spec.t_wakeup_s, self._finish_wake)
        return done

    def _finish_wake(self) -> None:
        if self.state != RadioState.WAKING:
            return  # sleep() raced the wake; waiters were already failed
        self.state = RadioState.IDLE
        self._integrator.set_power(self.spec.p_idle_w, CATEGORY_IDLE)
        self.medium.note_state(self)
        waiters, self._wake_waiters = self._wake_waiters, []
        for waiter in waiters:
            waiter.succeed()

    def sleep(self) -> None:
        """Turn the radio off immediately (switch-off cost is negligible).

        Raises
        ------
        SimulationError
            If called mid-transmission; callers must wait for frame end.
        """
        if self._transmitting:
            raise SimulationError(
                f"node {self.node_id}: cannot sleep while transmitting"
            )
        if self.state == RadioState.OFF:
            return
        waiters, self._wake_waiters = self._wake_waiters, []
        self.state = RadioState.OFF
        self._integrator.set_power(0.0, CATEGORY_IDLE)
        self.medium.note_state(self)
        for waiter in waiters:
            waiter.fail(SimulationError("radio was turned off while waking"))

    def power_down(self) -> None:
        """Fault-injection death: OFF, zero draw, wake waiters parked.

        Waiters are *dropped*, not failed: they belong to the dying
        node's own processes (BCP yields on its local radio's wake), and
        failing them would throw into generators that are being killed —
        an unhandled crash instead of a graceful death.  The parked
        generators never resume, which is exactly what "dead" means.
        """
        if self._powered_down:
            return
        self._wake_waiters = []
        self.state = RadioState.OFF
        self._integrator.set_power(0.0, CATEGORY_IDLE)
        super().power_down()

    def flush_accounting(self) -> None:
        """Close the open integration segment (call at end of run)."""
        self._integrator.flush()

    # -- energy hooks --------------------------------------------------------

    _checks_tx_state = True

    def _check_can_transmit(self) -> None:
        if not self.is_on:
            raise SimulationError(
                f"node {self.node_id}: high-power radio is {self.state}, "
                "cannot transmit"
            )

    def _begin_tx_accounting(self, duration: float) -> None:
        self.state = RadioState.TX
        power = (
            self.spec.p_tx_w
            if self._tx_levels is None
            else self._tx_power_w
        )
        self._integrator.set_power(power, CATEGORY_TX)

    def _end_tx_accounting(self, duration: float) -> None:
        if self._powered_down:
            # The aborted frame's end event popped after a mid-frame
            # death; the radio must stay OFF at zero draw.
            return
        # sleep() is forbidden mid-transmission, so we are still awake here.
        self.state = RadioState.IDLE
        self._integrator.set_power(self.spec.p_idle_w, CATEGORY_IDLE)

    def reception_charges(
        self, frame: Frame, duration: float, addressed: bool
    ) -> tuple[tuple[float, str], ...]:
        # The idle baseline is already integrated; receptions cost the
        # increment above idle.
        increment = max(0.0, self.spec.p_rx_w - self.spec.p_idle_w) * duration
        return ((increment, CATEGORY_RX if addressed else "overhear"),)
