"""Radio operating states."""

from __future__ import annotations

import enum


class RadioState(enum.Enum):
    """Operating state of a radio.

    Low-power radios only ever alternate between ``IDLE`` and ``TX`` (they
    are the always-on control plane; the paper treats their idle draw as a
    base cost).  High-power radios use the full cycle
    ``OFF → WAKING → IDLE ↔ TX → OFF``.
    """

    OFF = "off"
    WAKING = "waking"
    IDLE = "idle"
    TX = "tx"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
