"""Per-next-hop bulk buffers (paper Section 3, sender side).

"Data messages for different receivers are buffered separately, so messages
for the same next hop can be combined and sent to that next hop."

:class:`BulkBuffer` keeps one FIFO per next hop and tracks byte occupancy
against a node-wide capacity (the evaluation uses 5000 × 32 B).  When the
node-wide capacity is exceeded the *arriving* packet is dropped (drop-tail),
which is what a full receiver advertising ``allowed = 0`` degenerates to.
"""

from __future__ import annotations

import collections

from repro.net.packets import DataPacket


class BulkBuffer:
    """FIFO packet buffers keyed by next-hop node id.

    Parameters
    ----------
    capacity_bytes:
        Node-wide byte budget across all next hops (``float('inf')`` to
        disable, e.g. for the sink).
    """

    def __init__(self, capacity_bytes: float = float("inf")):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._queues: dict[int, collections.deque[DataPacket]] = {}
        self._bytes: dict[int, float] = collections.defaultdict(float)
        self._total_bytes = 0.0
        self.drops = 0
        self.peak_bytes = 0.0

    # -- occupancy ---------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        """Bytes buffered across all next hops."""
        return self._total_bytes

    @property
    def free_bytes(self) -> float:
        """Remaining node-wide capacity."""
        return max(0.0, self.capacity_bytes - self._total_bytes)

    def bytes_for(self, next_hop: int) -> float:
        """Bytes buffered toward ``next_hop``."""
        return self._bytes.get(next_hop, 0.0)

    def packets_for(self, next_hop: int) -> int:
        """Packet count buffered toward ``next_hop``."""
        queue = self._queues.get(next_hop)
        return len(queue) if queue else 0

    def next_hops(self) -> list[int]:
        """Next hops with at least one buffered packet."""
        return [hop for hop, queue in self._queues.items() if queue]

    def has_packet(self, next_hop: int, packet_id: int) -> bool:
        """Whether the packet is still buffered toward ``next_hop``."""
        queue = self._queues.get(next_hop)
        if not queue:
            return False
        return any(packet.packet_id == packet_id for packet in queue)

    # -- mutation ------------------------------------------------------------

    def push(self, next_hop: int, packet: DataPacket) -> bool:
        """Buffer ``packet`` toward ``next_hop``; False if dropped (full)."""
        size = packet.payload_bits / 8
        if self._total_bytes + size > self.capacity_bytes:
            self.drops += 1
            return False
        queue = self._queues.get(next_hop)
        if queue is None:
            queue = collections.deque()
            self._queues[next_hop] = queue
        queue.append(packet)
        self._bytes[next_hop] += size
        self._total_bytes += size
        self.peak_bytes = max(self.peak_bytes, self._total_bytes)
        return True

    def pop_up_to(self, next_hop: int, budget_bytes: float) -> list[DataPacket]:
        """Dequeue whole packets toward ``next_hop`` totalling ≤ ``budget_bytes``.

        Packets are never split; a packet that does not fit the remaining
        budget stays buffered (and ends the pop — FIFO order is preserved).
        """
        if budget_bytes < 0:
            raise ValueError("budget must be non-negative")
        queue = self._queues.get(next_hop)
        popped: list[DataPacket] = []
        if not queue:
            return popped
        remaining = budget_bytes
        while queue:
            size = queue[0].payload_bits / 8
            if size > remaining:
                break
            packet = queue.popleft()
            popped.append(packet)
            remaining -= size
            self._bytes[next_hop] -= size
            self._total_bytes -= size
        return popped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        per_hop = {hop: len(q) for hop, q in self._queues.items() if q}
        return f"<BulkBuffer {self._total_bytes:.0f}B {per_hop}>"
