"""BCP control messages and the low-radio control envelope.

The wake-up handshake (paper Section 3) is carried entirely over the
low-power radio: the sender transmits a :class:`Wakeup` naming the burst it
wants to send; the receiver answers with a :class:`WakeupAck` naming the
burst it will accept (flow control).  Control messages "may travel multiple
hops to reach the receiver", so they ride inside a :class:`ControlEnvelope`
that the BCP agent at each intermediate node relays along the low-power
route.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.units import BITS_PER_BYTE

_session_ids = itertools.count(1)


def new_session_id() -> int:
    """Allocate a globally unique bulk-transfer session id."""
    return next(_session_ids)


@dataclasses.dataclass(frozen=True)
class Wakeup:
    """WAKEUP: "I have ``burst_bytes`` buffered for you — wake your radio."

    Attributes
    ----------
    origin / target:
        Bulk sender and bulk receiver node ids.
    session_id:
        Identifies the handshake (retries reuse it; acks echo it).
    burst_bytes:
        Amount of buffered data the sender wants to transfer.
    """

    origin: int
    target: int
    session_id: int
    burst_bytes: int


@dataclasses.dataclass(frozen=True)
class WakeupAck:
    """WAKEUP-ACK: "send up to ``allowed_bytes``" (0 never happens — a full
    receiver simply stays silent, per Section 3)."""

    origin: int
    target: int
    session_id: int
    allowed_bytes: int


@dataclasses.dataclass
class ControlEnvelope:
    """Hop-by-hop wrapper for control messages on the low-power radio.

    Attributes
    ----------
    message:
        The :class:`Wakeup` or :class:`WakeupAck` being carried.
    src / dst:
        End-to-end endpoints (not the per-hop MAC addresses).
    ttl:
        Remaining hop budget; relays decrement it and drop at zero.
    """

    message: object
    src: int
    dst: int
    ttl: int = 32

    def forwarded(self) -> "ControlEnvelope":
        """A copy with one hop consumed."""
        return ControlEnvelope(self.message, self.src, self.dst, self.ttl - 1)


#: On-air payload size of a control message (bytes).  A WAKEUP carries two
#: addresses, a session id and a burst size — 16 bytes is generous and is
#: the same constant the break-even analysis uses by default.
CONTROL_PAYLOAD_BYTES = 16

#: Control payload in bits.
CONTROL_PAYLOAD_BITS = CONTROL_PAYLOAD_BYTES * BITS_PER_BYTE
