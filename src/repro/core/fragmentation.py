"""Burst assembly and reassembly (paper Section 3).

Sender side: "The allowed amount of data is assembled into packets for the
high-power radio and forwarded to the corresponding MAC layer."  Receiver
side: "Data messages are received as an assembly of multiple packets from
the MAC layer of the high-power radio and are fragmented into the original
packets by BCP."

The unit of assembly is a :class:`BurstFragment` — one 802.11 frame payload
carrying as many whole sensor packets as fit the frame's payload budget (32
of the paper's 32 B packets per 1024 B frame).  Sensor packets are never
split across fragments; the trailing fragment may be short.  This whole-
packet packing is the source of the per-frame quantization visible in the
prototype's Fig. 11 sawtooth.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.packets import DataPacket


@dataclasses.dataclass
class BurstFragment:
    """One high-power frame's worth of a bulk transfer.

    Attributes
    ----------
    session_id:
        The handshake this burst belongs to.
    origin:
        The bulk sender (used by shortcut learning to recognize its own
        packets being forwarded).
    index / total:
        Position of this fragment in the burst and the burst's fragment
        count (the receiver uses ``total`` to know when it may sleep).
    packets:
        The whole sensor packets carried.
    """

    session_id: int
    origin: int
    index: int
    total: int
    packets: list[DataPacket]

    @property
    def payload_bits(self) -> int:
        """On-air payload size: the sum of the carried packets."""
        return sum(packet.payload_bits for packet in self.packets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BurstFragment s{self.session_id} {self.index + 1}/{self.total} "
            f"{len(self.packets)}pkts>"
        )


def assemble_burst(
    packets: typing.Sequence[DataPacket],
    session_id: int,
    origin: int,
    frame_payload_bytes: int,
) -> list[BurstFragment]:
    """Pack ``packets`` into fragments of at most ``frame_payload_bytes``.

    Packets are kept whole and in order.  Raises if any single packet
    exceeds the frame payload (the paper's 32 B packets are far below the
    1024 B frames, but the invariant is enforced for general use).
    """
    if frame_payload_bytes <= 0:
        raise ValueError("frame payload must be positive")
    budget_bits = frame_payload_bytes * 8
    groups: list[list[DataPacket]] = []
    current: list[DataPacket] = []
    used = 0
    for packet in packets:
        if packet.payload_bits > budget_bits:
            raise ValueError(
                f"packet of {packet.payload_bits} bits exceeds the "
                f"{budget_bits}-bit frame payload"
            )
        if used + packet.payload_bits > budget_bits:
            groups.append(current)
            current, used = [], 0
        current.append(packet)
        used += packet.payload_bits
    if current:
        groups.append(current)
    total = len(groups)
    return [
        BurstFragment(
            session_id=session_id,
            origin=origin,
            index=index,
            total=total,
            packets=group,
        )
        for index, group in enumerate(groups)
    ]


def reassemble(fragments: typing.Iterable[BurstFragment]) -> list[DataPacket]:
    """Recover the original packet sequence from (possibly unordered) fragments.

    Missing fragments simply leave gaps — BCP tolerates partial bursts (the
    receiver times out and forwards what arrived).
    """
    ordered = sorted(fragments, key=lambda fragment: fragment.index)
    packets: list[DataPacket] = []
    for fragment in ordered:
        packets.extend(fragment.packets)
    return packets
