"""BCP protocol configuration.

The single protocol parameter the paper exposes is the buffering threshold
``α·s*`` (Section 3): data is buffered until it reaches α times the
break-even point, α > 1 (though the evaluation also runs α < 1 bursts to
show they waste energy).  The remaining knobs — handshake timeouts and
retries, receiver flow control, the optional post-burst idle linger — are
protocol mechanics the paper describes without constants; defaults are
chosen to be safely above the worst-case control-path latency of the
evaluation scenarios and are swept by the sensitivity benchmarks.
"""

from __future__ import annotations

import dataclasses

from repro.energy.breakeven import DualRadioLink, breakeven_bits

#: Fallback threshold when radio characteristics are unknown: "If these are
#: not known, α·s* can be set, for instance, 10 K based on our analysis in
#: Section 2.2."
RULE_OF_THUMB_THRESHOLD_BYTES = 10 * 1024


@dataclasses.dataclass
class BcpConfig:
    """Tunable parameters of one node's BCP agent.

    Attributes
    ----------
    threshold_bytes:
        Buffered bytes per next hop that trigger the wake-up handshake
        (the paper's α·s*).
    buffer_capacity_bytes:
        Node-wide buffer budget (evaluation: 5000 × 32 B).
    frame_payload_bytes:
        High-power frame payload for burst assembly (evaluation: 1024 B).
    wakeup_timeout_s / wakeup_retries:
        Stop-and-wait parameters of the WAKEUP handshake.  The timeout
        must exceed the *loaded* round-trip of the multi-hop control path
        (seconds, not milliseconds, when dozens of flows converge on a
        congested CSMA mesh); retrying early duplicates multi-hop traffic
        and collapses the control plane.
    handshake_backoff_s:
        Base pause before re-attempting a handshake whose retries were
        exhausted (the receiver may be congested or its buffer full).
        The agent doubles it per consecutive failure (capped at 32x) so
        wake-up retries cannot amplify control-network congestion.
    receiver_idle_timeout_s:
        "To avoid waiting for the sender data indefinitely, the receiver
        times out and turns its high-power radio off if it does not
        receive any data packets" — also applied between data frames.
    idle_linger_s:
        How long a radio stays on after its last session ends (0 = turn
        off immediately; Fig. 4's "idle" variant corresponds to 100 ms).
    flow_control:
        Whether the receiver clamps bursts to its free buffer space (the
        paper's behaviour; ablation benches turn it off).
    shortcut_learning:
        Whether the high-power data path starts from the *low-power*
        routes ("use the existing routes over the low-power radios
        initially", Section 3) instead of a precomputed high-power table.
    shortcut_observation:
        With ``shortcut_learning``, whether senders actually listen for
        their packets being forwarded and adopt shortcuts (off = the
        static low-route baseline the optimization is measured against).
    max_delay_s:
        Optional per-packet delay budget — the paper's *future work*
        (Section 5): "Based on delay constraints, the low-power radio can
        also be allowed to send data."  When a buffered packet's age
        reaches this budget before the threshold fills, the buffer is
        flushed over the low-power radio instead of waiting for a bulk
        session.  ``None`` (default) is the paper's pure BCP.
    """

    threshold_bytes: float = float(RULE_OF_THUMB_THRESHOLD_BYTES)
    buffer_capacity_bytes: float = 5000 * 32.0
    frame_payload_bytes: int = 1024
    wakeup_timeout_s: float = 3.0
    wakeup_retries: int = 3
    handshake_backoff_s: float = 1.0
    receiver_idle_timeout_s: float = 3.0
    idle_linger_s: float = 0.0
    flow_control: bool = True
    shortcut_learning: bool = False
    shortcut_observation: bool = True
    max_delay_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_delay_s is not None and self.max_delay_s <= 0:
            raise ValueError("max_delay_s must be positive (or None)")
        if self.threshold_bytes <= 0:
            raise ValueError("threshold must be positive")
        if self.buffer_capacity_bytes < self.threshold_bytes:
            raise ValueError(
                "buffer capacity must be at least the threshold "
                f"({self.buffer_capacity_bytes} < {self.threshold_bytes})"
            )
        if self.frame_payload_bytes <= 0:
            raise ValueError("frame payload must be positive")
        if self.wakeup_retries < 0:
            raise ValueError("wakeup_retries must be non-negative")

    @classmethod
    def from_breakeven(
        cls, link: DualRadioLink, alpha: float = 2.0, **overrides: object
    ) -> "BcpConfig":
        """Build a config with ``threshold = α · s*`` for ``link``.

        Falls back to the 10 KB rule of thumb when the link has no finite
        break-even point (Section 3's guidance).
        """
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        s_star_bits = breakeven_bits(link)
        if s_star_bits == float("inf"):
            threshold = float(RULE_OF_THUMB_THRESHOLD_BYTES)
        else:
            threshold = alpha * s_star_bits / 8.0
        return cls(threshold_bytes=threshold, **overrides)  # type: ignore[arg-type]

    @classmethod
    def for_burst_packets(
        cls, burst_packets: int, packet_payload_bytes: int = 32, **overrides: object
    ) -> "BcpConfig":
        """Build a config from the evaluation's burst-size parameter.

        Section 4.1 sweeps the threshold in sensor packets (10, 100, 500,
        1000, 2500 × 32 B); this constructor mirrors that parameterization.
        """
        if burst_packets <= 0:
            raise ValueError("burst size must be positive")
        return cls(
            threshold_bytes=float(burst_packets * packet_payload_bytes),
            **overrides,  # type: ignore[arg-type]
        )
