"""BCP — the Bulk Communication Protocol (the paper's core contribution).

* :class:`BcpAgent` — the per-node protocol engine.
* :class:`BcpConfig` — thresholds, timeouts, flow control, shortcuts.
* :class:`BulkBuffer` — per-next-hop data buffering.
* :mod:`~repro.core.fragmentation` — burst assembly/reassembly.
* :mod:`~repro.core.messages` — WAKEUP / WAKEUP-ACK and their envelope.
"""

from repro.core.bcp import BcpAgent, BcpNodeSpec, BcpStats
from repro.core.buffer import BulkBuffer
from repro.core.config import RULE_OF_THUMB_THRESHOLD_BYTES, BcpConfig
from repro.core.fragmentation import BurstFragment, assemble_burst, reassemble
from repro.core.messages import (
    CONTROL_PAYLOAD_BITS,
    CONTROL_PAYLOAD_BYTES,
    ControlEnvelope,
    Wakeup,
    WakeupAck,
    new_session_id,
)

__all__ = [
    "BcpAgent",
    "BcpConfig",
    "BcpNodeSpec",
    "BcpStats",
    "BulkBuffer",
    "BurstFragment",
    "CONTROL_PAYLOAD_BITS",
    "CONTROL_PAYLOAD_BYTES",
    "ControlEnvelope",
    "RULE_OF_THUMB_THRESHOLD_BYTES",
    "Wakeup",
    "WakeupAck",
    "assemble_burst",
    "new_session_id",
    "reassemble",
]
